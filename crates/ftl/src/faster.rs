//! FASTer — hybrid (log-block) mapping FTL (Lim, Lee, Moon, SNAPI 2010).
//!
//! The device is split into a **data area** mapped at *block* granularity and
//! a small **log area** mapped at *page* granularity.  Every host write is
//! appended to the log area; when the log runs out of space the oldest log
//! block is reclaimed:
//!
//! * **switch merge** — the log block contains a complete, in-order image of
//!   one logical block: it simply *becomes* the data block (no copies);
//! * **full merge** — otherwise each logical block with valid pages in the
//!   victim is rebuilt into a fresh data block by collecting the newest
//!   version of every page (from the log area or the old data block);
//! * **second chance (FASTer)** — valid pages that have not been given a
//!   second chance yet are instead copied forward to the current log block,
//!   postponing their merge; pages already given a chance are merged.
//!
//! Merges are the FTL-internal copy/erase traffic that Figure 3 of the NoFTL
//! paper measures: under TPC-B/C/E, FASTer performs roughly **2× more
//! copybacks and erases** than the DBMS-integrated NoFTL scheme.

use std::collections::VecDeque;

use nand_flash::{
    BlockAddr, DeviceConfig, FlashError, FlashGeometry, FlashResult, FlashStats, NandDevice,
    NativeFlashInterface, Oob, OpCompletion, PageState, Ppa,
};
use serde::{Deserialize, Serialize};
use sim_utils::flatmap::{FlatBitSet, FlatMap};
use sim_utils::time::SimInstant;

use crate::stats::FtlStats;
use crate::traits::Ftl;

/// Configuration of the FASTer FTL.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FasterConfig {
    /// Device geometry.
    pub geometry: FlashGeometry,
    /// Fraction of all blocks dedicated to the log area (FAST uses a few
    /// percent; larger logs postpone merges).
    pub log_fraction: f64,
    /// Blocks kept in reserve as merge destinations.
    pub spare_blocks: usize,
    /// Enable the FASTer second-chance (isolation) pass.
    pub second_chance: bool,
    /// Whether the device stores page contents.
    pub store_data: bool,
}

impl FasterConfig {
    /// Defaults: 8 % log area, 8 spare blocks, second chance enabled.
    pub fn new(geometry: FlashGeometry) -> Self {
        Self {
            geometry,
            log_fraction: 0.08,
            spare_blocks: 8,
            second_chance: true,
            store_data: true,
        }
    }
}

/// FASTer hybrid-mapping FTL.
pub struct FasterFtl {
    device: NandDevice,
    /// Logical block → physical data block.
    block_map: Vec<Option<BlockAddr>>,
    /// Page-level map of the log area, indexed directly by LPN.
    log_map: FlatMap,
    /// Reverse map of the log area, indexed directly by flat PPA.
    log_reverse: FlatMap,
    /// Sealed log blocks, oldest first.
    sealed_logs: VecDeque<BlockAddr>,
    /// Currently filling log block and its next page offset.
    active_log: Option<(BlockAddr, u32)>,
    /// Erased blocks reserved for the log area.
    free_logs: VecDeque<BlockAddr>,
    /// Erased blocks available as data blocks / merge destinations.
    free_data: VecDeque<BlockAddr>,
    /// LPNs that already received their second chance (dense bitmap).
    chanced: FlatBitSet,
    second_chance: bool,
    stats: FtlStats,
    logical_pages: u64,
    pages_per_block: u64,
    page_size: usize,
    scratch: Vec<u8>,
}

impl FasterFtl {
    /// Build FASTer and its backing device from `config`.
    pub fn new(config: FasterConfig) -> Self {
        let geometry = config.geometry;
        let mut dev_cfg = DeviceConfig::new(geometry);
        dev_cfg.store_data = config.store_data;
        // Block-mapped data blocks are written at arbitrary page offsets
        // during merges — allowed on SLC NAND.
        dev_cfg.strict_sequential_program = false;
        let device = NandDevice::new(dev_cfg);

        let total_blocks = geometry.total_blocks();
        let log_blocks = ((total_blocks as f64 * config.log_fraction).ceil() as u64)
            .clamp(2, total_blocks / 2);
        let spare = config.spare_blocks.max(2) as u64;
        let data_blocks = total_blocks - log_blocks - spare;
        assert!(data_blocks > 0, "geometry too small for FASTer layout");

        let mut free_logs = VecDeque::new();
        let mut free_data = VecDeque::new();
        for flat in 0..total_blocks {
            let addr = BlockAddr::from_flat(&geometry, flat);
            if flat < log_blocks {
                free_logs.push_back(addr);
            } else {
                free_data.push_back(addr);
            }
        }

        let logical_pages = data_blocks * geometry.pages_per_block as u64;
        Self {
            device,
            block_map: vec![None; data_blocks as usize],
            log_map: FlatMap::with_index_capacity(logical_pages as usize),
            log_reverse: FlatMap::with_index_capacity(geometry.total_pages() as usize),
            sealed_logs: VecDeque::new(),
            active_log: None,
            free_logs,
            free_data,
            chanced: FlatBitSet::with_index_capacity(logical_pages as usize),
            second_chance: config.second_chance,
            stats: FtlStats::new(),
            logical_pages,
            pages_per_block: geometry.pages_per_block as u64,
            page_size: geometry.page_size as usize,
            scratch: vec![0u8; geometry.page_size as usize],
        }
    }

    /// Build with default configuration.
    pub fn with_geometry(geometry: FlashGeometry) -> Self {
        Self::new(FasterConfig::new(geometry))
    }

    /// Number of blocks currently dedicated to the log area (sealed + active
    /// + free).
    pub fn log_area_blocks(&self) -> usize {
        self.sealed_logs.len() + self.free_logs.len() + usize::from(self.active_log.is_some())
    }

    fn check_lpn(&self, lpn: u64) -> FlashResult<()> {
        if lpn < self.logical_pages {
            Ok(())
        } else {
            Err(FlashError::InvalidAddress {
                what: format!("logical page {lpn} out of range (capacity {})", self.logical_pages),
            })
        }
    }

    fn check_buf(&self, len: usize) -> FlashResult<()> {
        if len == self.page_size {
            Ok(())
        } else {
            Err(FlashError::BufferSizeMismatch {
                expected: self.page_size,
                actual: len,
            })
        }
    }

    fn lbn_of(&self, lpn: u64) -> u64 {
        lpn / self.pages_per_block
    }

    fn offset_of(&self, lpn: u64) -> u32 {
        (lpn % self.pages_per_block) as u32
    }

    /// Invalidate whatever version of `lpn` is currently live.
    fn invalidate_current(&mut self, lpn: u64) -> FlashResult<()> {
        let g = *self.device.geometry();
        if let Some(old) = self.log_map.remove(lpn) {
            self.log_reverse.remove(old);
            self.device.invalidate_page(Ppa::from_flat(&g, old))?;
            return Ok(());
        }
        let lbn = self.lbn_of(lpn) as usize;
        if let Some(data_block) = self.block_map[lbn] {
            let ppa = data_block.page(self.offset_of(lpn));
            if self.device.page_state(ppa)? == PageState::Valid {
                self.device.invalidate_page(ppa)?;
            }
        }
        Ok(())
    }

    /// Move one page (`src` → `dst`), preferring COPYBACK when both ends sit
    /// on the same plane. Returns the completion time.
    fn relocate(
        &mut self,
        now: SimInstant,
        src: Ppa,
        dst: Ppa,
        oob: Oob,
    ) -> FlashResult<SimInstant> {
        let completion = if src.channel == dst.channel && src.die == dst.die && src.plane == dst.plane
        {
            self.device.copyback(now, src, dst, Some(oob))?
        } else {
            let mut buf = std::mem::take(&mut self.scratch);
            self.device.read_page(now, src, &mut buf)?;
            let c = self.device.program_page(now, dst, &buf, oob)?;
            self.scratch = buf;
            c
        };
        self.stats.gc_page_copies += 1;
        Ok(completion.completed_at)
    }

    /// Append a page to the log area on behalf of the host or of the
    /// second-chance pass. The caller must have ensured space exists.
    fn append_to_log(
        &mut self,
        now: SimInstant,
        lpn: u64,
        data: Option<&[u8]>,
        src_for_copy: Option<Ppa>,
    ) -> FlashResult<(Ppa, SimInstant)> {
        let g = *self.device.geometry();
        // Open a log block if needed.
        if self
            .active_log
            .is_none_or(|(_, next)| next >= g.pages_per_block)
        {
            if let Some((full, _)) = self.active_log.take() {
                self.sealed_logs.push_back(full);
            }
            let fresh = self
                .free_logs
                .pop_front()
                .ok_or(FlashError::OutOfSpareBlocks)?;
            self.active_log = Some((fresh, 0));
        }
        let (block, next) = self.active_log.unwrap();
        let dst = block.page(next);
        self.active_log = Some((block, next + 1));

        let t = match (data, src_for_copy) {
            (Some(bytes), _) => {
                let c = self.device.program_page(now, dst, bytes, Oob::log(lpn, 0))?;
                c.completed_at
            }
            (None, Some(src)) => self.relocate(now, src, dst, Oob::log(lpn, 0))?,
            (None, None) => unreachable!("append_to_log needs data or a source page"),
        };

        let flat = dst.flat(&g);
        self.log_map.insert(lpn, flat);
        self.log_reverse.insert(flat, lpn);
        Ok((dst, t))
    }

    /// Whether the log area can absorb one more page without a merge.
    fn log_has_room(&self) -> bool {
        let g = self.device.geometry();
        match self.active_log {
            Some((_, next)) if next < g.pages_per_block => true,
            _ => !self.free_logs.is_empty(),
        }
    }

    /// Full merge of logical block `lbn`: rebuild it into a fresh data block
    /// from the newest version of every page. Returns the completion time.
    fn full_merge(&mut self, now: SimInstant, lbn: u64) -> FlashResult<SimInstant> {
        let g = *self.device.geometry();
        let mut t = now;
        let dest = self
            .free_data
            .pop_front()
            .ok_or(FlashError::OutOfSpareBlocks)?;
        let old_data = self.block_map[lbn as usize];

        for offset in 0..g.pages_per_block {
            let lpn = lbn * self.pages_per_block + offset as u64;
            let dst = dest.page(offset);
            // Newest version: log area first, then the old data block.
            if let Some(log_flat) = self.log_map.get(lpn) {
                let src = Ppa::from_flat(&g, log_flat);
                t = self.relocate(t, src, dst, Oob::data(lpn, 0))?.max(t);
                self.device.invalidate_page(src)?;
                self.log_map.remove(lpn);
                self.log_reverse.remove(log_flat);
                self.chanced.remove(lpn);
            } else if let Some(old_block) = old_data {
                let src = old_block.page(offset);
                if self.device.page_state(src)? == PageState::Valid {
                    t = self.relocate(t, src, dst, Oob::data(lpn, 0))?.max(t);
                    self.device.invalidate_page(src)?;
                }
            }
        }

        // Retire the old data block.
        if let Some(old_block) = old_data {
            let c = self.device.erase_block(t, old_block)?;
            t = t.max(c.completed_at);
            self.stats.gc_erases += 1;
            self.free_data.push_back(old_block);
        }
        self.block_map[lbn as usize] = Some(dest);
        self.stats.full_merges += 1;
        Ok(t)
    }

    /// Reclaim the oldest sealed log block (switch merge, second chance or
    /// full merges as appropriate). Returns the completion time.
    fn reclaim_log_block(&mut self, now: SimInstant) -> FlashResult<SimInstant> {
        let g = *self.device.geometry();
        let mut t = now;
        let victim = match self.sealed_logs.pop_front() {
            Some(b) => b,
            None => {
                // All log blocks are free or active; seal the active block.
                let (b, _) = self
                    .active_log
                    .take()
                    .ok_or(FlashError::OutOfSpareBlocks)?;
                b
            }
        };

        // Switch-merge check: does the victim hold a complete in-order image
        // of exactly one logical block?
        if let Some(lbn) = self.switch_merge_candidate(victim)? {
            let old = self.block_map[lbn as usize];
            self.block_map[lbn as usize] = Some(victim);
            for offset in 0..g.pages_per_block {
                let lpn = lbn * self.pages_per_block + offset as u64;
                if let Some(flat) = self.log_map.remove(lpn) {
                    self.log_reverse.remove(flat);
                }
                self.chanced.remove(lpn);
            }
            if let Some(old_block) = old {
                let c = self.device.erase_block(t, old_block)?;
                t = t.max(c.completed_at);
                self.stats.gc_erases += 1;
                self.free_data.push_back(old_block);
            }
            // The victim left the log area; take a replacement from the data
            // pool so the log area keeps its size.
            if let Some(replacement) = self.free_data.pop_front() {
                self.free_logs.push_back(replacement);
            }
            self.stats.switch_merges += 1;
            return Ok(t);
        }

        // General case: walk the victim's pages.  Valid pages that have not
        // had their second chance yet are *survivors*: FASTer copies them
        // forward to the head of the log (the isolation area) instead of
        // merging their logical block immediately.  Pages that already had
        // their chance force a full merge of their logical block.
        let mut survivors: Vec<(u64, Vec<u8>)> = Vec::new();
        for page_idx in 0..g.pages_per_block {
            let src = victim.page(page_idx);
            let flat = src.flat(&g);
            let Some(lpn) = self.log_reverse.get(flat) else {
                continue; // stale or never-written page
            };
            if self.device.page_state(src)? != PageState::Valid {
                continue;
            }
            let give_chance = self.second_chance && !self.chanced.contains(lpn);
            if give_chance {
                // Read the survivor out of the victim; it is re-appended to
                // the log once the victim has been erased (circular log).
                let mut buf = vec![0u8; self.page_size];
                let (_, c) = self.device.read_page(t, src, &mut buf)?;
                t = t.max(c.completed_at);
                self.log_map.remove(lpn);
                self.log_reverse.remove(flat);
                survivors.push((lpn, buf));
                self.chanced.insert(lpn);
            } else {
                let lbn = self.lbn_of(lpn);
                t = self.full_merge(t, lbn)?.max(t);
            }
        }

        // The victim now holds no live pages the log still references: erase
        // and recycle it, then re-append the survivors.
        let c = self.device.erase_block(t, victim)?;
        t = t.max(c.completed_at);
        self.stats.gc_erases += 1;
        self.free_logs.push_back(victim);
        for (lpn, data) in survivors {
            let (_, end) = self.append_to_log(t, lpn, Some(&data), None)?;
            t = t.max(end);
            self.stats.gc_page_copies += 1;
        }
        Ok(t)
    }

    /// Detect a switch-merge opportunity: the victim contains a full,
    /// in-order, still-valid image of exactly one logical block.
    fn switch_merge_candidate(&self, victim: BlockAddr) -> FlashResult<Option<u64>> {
        let g = *self.device.geometry();
        let mut lbn: Option<u64> = None;
        for page_idx in 0..g.pages_per_block {
            let src = victim.page(page_idx);
            if self.device.page_state(src)? != PageState::Valid {
                return Ok(None);
            }
            let flat = src.flat(&g);
            let Some(lpn) = self.log_reverse.get(flat) else {
                return Ok(None);
            };
            if self.offset_of(lpn) != page_idx {
                return Ok(None);
            }
            let this_lbn = self.lbn_of(lpn);
            match lbn {
                None => lbn = Some(this_lbn),
                Some(l) if l != this_lbn => return Ok(None),
                _ => {}
            }
        }
        Ok(lbn)
    }

    /// Make sure the log area can take one more page, merging if necessary.
    fn ensure_log_space(&mut self, now: SimInstant) -> FlashResult<SimInstant> {
        let mut t = now;
        if self.log_has_room() {
            return Ok(t);
        }
        self.stats.gc_stalls += 1;
        while !self.log_has_room() {
            t = self.reclaim_log_block(t)?;
        }
        Ok(t)
    }
}

impl Ftl for FasterFtl {
    fn name(&self) -> &'static str {
        "faster"
    }

    fn logical_pages(&self) -> u64 {
        self.logical_pages
    }

    fn read(&mut self, now: SimInstant, lpn: u64, buf: &mut [u8]) -> FlashResult<OpCompletion> {
        self.check_lpn(lpn)?;
        self.check_buf(buf.len())?;
        let g = *self.device.geometry();
        let ppa = if let Some(flat) = self.log_map.get(lpn) {
            Ppa::from_flat(&g, flat)
        } else {
            let lbn = self.lbn_of(lpn) as usize;
            let Some(block) = self.block_map[lbn] else {
                return Err(FlashError::ReadOfUnwrittenPage(Ppa::from_flat(&g, 0)));
            };
            let p = block.page(self.offset_of(lpn));
            if self.device.page_state(p)? != PageState::Valid {
                return Err(FlashError::ReadOfUnwrittenPage(p));
            }
            p
        };
        let (_, completion) = self.device.read_page(now, ppa, buf)?;
        self.stats.host_reads += 1;
        self.stats
            .read_latency
            .record(completion.completed_at.saturating_sub(now));
        Ok(completion)
    }

    fn write(&mut self, now: SimInstant, lpn: u64, data: &[u8]) -> FlashResult<OpCompletion> {
        self.check_lpn(lpn)?;
        self.check_buf(data.len())?;
        let start = now;
        let mut t = self.ensure_log_space(now)?;
        self.invalidate_current(lpn)?;
        self.chanced.remove(lpn);
        let (_, end) = self.append_to_log(t, lpn, Some(data), None)?;
        t = t.max(end);
        self.stats.host_writes += 1;
        self.stats.write_latency.record(t.saturating_sub(start));
        Ok(OpCompletion {
            started_at: start,
            completed_at: t,
        })
    }

    fn trim(&mut self, _now: SimInstant, lpn: u64) -> FlashResult<()> {
        self.check_lpn(lpn)?;
        self.invalidate_current(lpn)?;
        self.chanced.remove(lpn);
        self.stats.host_trims += 1;
        Ok(())
    }

    fn ftl_stats(&self) -> &FtlStats {
        &self.stats
    }

    fn flash_stats(&self) -> &FlashStats {
        self.device.stats()
    }

    fn device(&self) -> &NandDevice {
        &self.device
    }

    fn reset_stats(&mut self) {
        self.stats.clear();
        self.device.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nand_flash::FlashGeometry;

    fn small_faster() -> FasterFtl {
        FasterFtl::with_geometry(FlashGeometry::small())
    }

    fn page(ftl: &FasterFtl, byte: u8) -> Vec<u8> {
        vec![byte; ftl.device().geometry().page_size as usize]
    }

    #[test]
    fn read_your_writes() {
        let mut ftl = small_faster();
        let data = page(&ftl, 0x31);
        ftl.write(0, 100, &data).unwrap();
        let mut buf = page(&ftl, 0);
        ftl.read(0, 100, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn overwrite_returns_newest() {
        let mut ftl = small_faster();
        let v1 = page(&ftl, 1);
        let v2 = page(&ftl, 2);
        ftl.write(0, 100, &v1).unwrap();
        ftl.write(0, 100, &v2).unwrap();
        let mut buf = page(&ftl, 0);
        ftl.read(0, 100, &mut buf).unwrap();
        assert_eq!(buf, v2);
    }

    #[test]
    fn unwritten_read_fails() {
        let mut ftl = small_faster();
        let mut buf = page(&ftl, 0);
        assert!(ftl.read(0, 42, &mut buf).is_err());
    }

    #[test]
    fn random_overwrites_force_full_merges() {
        let mut ftl = small_faster();
        let mut rng = sim_utils::rng::SimRng::new(3);
        let span = 512u64.min(ftl.logical_pages());
        let mut now = 0;
        // Fill then keep overwriting random pages until merges happen.
        for i in 0..span {
            let data = page(&ftl, i as u8);
            now = ftl.write(now, i, &data).unwrap().completed_at;
        }
        for _ in 0..3000 {
            let lpn = rng.range(0, span);
            let data = page(&ftl, lpn as u8);
            now = ftl.write(now, lpn, &data).unwrap().completed_at;
        }
        let s = ftl.ftl_stats();
        assert!(s.full_merges > 0, "expected full merges under random writes");
        assert!(s.gc_erases > 0);
        assert!(s.gc_page_copies > 0);
        assert!(s.write_amplification() > 1.0);
        // Data must still be correct after merges.
        for lpn in 0..span {
            let mut buf = page(&ftl, 0);
            ftl.read(now, lpn, &mut buf).unwrap();
            assert_eq!(buf[0], lpn as u8, "lpn {lpn} corrupted by merges");
        }
    }

    #[test]
    fn sequential_writes_enable_switch_merges() {
        let mut ftl = small_faster();
        let ppb = ftl.pages_per_block;
        // Sequentially write more logical blocks than the log area can hold,
        // so log blocks are reclaimed while they still contain a complete,
        // in-order, fully valid image of one logical block — the switch-merge
        // case (no page copies, one erase at most).
        let log_pages = ftl.log_area_blocks() as u64 * ppb;
        let lbns = (log_pages / ppb) * 3;
        let mut now = 0;
        for lbn in 0..lbns {
            for off in 0..ppb {
                let lpn = lbn * ppb + off;
                let data = page(&ftl, lbn as u8);
                now = ftl.write(now, lpn, &data).unwrap().completed_at;
            }
        }
        assert!(
            ftl.ftl_stats().switch_merges > 0,
            "sequential writes should produce switch merges"
        );
        // Switch merges are cheap: far fewer page copies than host writes.
        assert!(ftl.ftl_stats().gc_page_copies < ftl.ftl_stats().host_writes / 2);
        // All data still readable and correct.
        for lbn in 0..lbns {
            let mut buf = page(&ftl, 0);
            ftl.read(now, lbn * ppb, &mut buf).unwrap();
            assert_eq!(buf[0], lbn as u8);
        }
    }

    #[test]
    fn second_chance_reduces_merges_for_skewed_workload() {
        let run = |second_chance: bool| -> (u64, u64) {
            let mut cfg = FasterConfig::new(FlashGeometry::small());
            cfg.second_chance = second_chance;
            let mut ftl = FasterFtl::new(cfg);
            let mut rng = sim_utils::rng::SimRng::new(11);
            let zipf = sim_utils::dist::Zipf::new(1024, 0.99);
            let mut now = 0;
            for _ in 0..4000 {
                let lpn = zipf.sample(&mut rng);
                let data = vec![7u8; ftl.page_size];
                now = ftl.write(now, lpn, &data).unwrap().completed_at;
            }
            (ftl.ftl_stats().full_merges, ftl.ftl_stats().gc_page_copies)
        };
        let (merges_with, _) = run(true);
        let (merges_without, _) = run(false);
        assert!(
            merges_with <= merges_without,
            "second chance should not increase full merges ({merges_with} vs {merges_without})"
        );
    }

    #[test]
    fn trim_invalidates_latest_version() {
        let mut ftl = small_faster();
        let data = page(&ftl, 4);
        ftl.write(0, 9, &data).unwrap();
        ftl.trim(0, 9).unwrap();
        let mut buf = page(&ftl, 0);
        assert!(ftl.read(0, 9, &mut buf).is_err());
    }

    #[test]
    fn out_of_range_lpn_rejected() {
        let mut ftl = small_faster();
        let cap = ftl.logical_pages();
        let data = page(&ftl, 0);
        assert!(ftl.write(0, cap, &data).is_err());
    }

    #[test]
    fn log_area_size_is_preserved_across_merges() {
        let mut ftl = small_faster();
        let initial = ftl.log_area_blocks();
        let mut rng = sim_utils::rng::SimRng::new(5);
        let span = 512u64.min(ftl.logical_pages());
        let mut now = 0;
        for _ in 0..4000 {
            let lpn = rng.range(0, span);
            let data = page(&ftl, 1);
            now = ftl.write(now, lpn, &data).unwrap().completed_at;
        }
        let after = ftl.log_area_blocks();
        // Switch merges may hand a log block to the data area and take a
        // replacement; tolerate a small drift but not collapse.
        assert!(
            after + 2 >= initial && after <= initial + 2,
            "log area drifted: {initial} -> {after}"
        );
    }

    #[test]
    fn write_latency_shows_merge_outliers() {
        let mut ftl = small_faster();
        let mut rng = sim_utils::rng::SimRng::new(17);
        let span = 512u64.min(ftl.logical_pages());
        let mut now = 0;
        for _ in 0..4000 {
            let lpn = rng.range(0, span);
            let data = page(&ftl, 1);
            now = ftl.write(now, lpn, &data).unwrap().completed_at;
        }
        let h = &ftl.ftl_stats().write_latency;
        // The paper's motivation: median writes are sub-millisecond, but FTL
        // maintenance produces orders-of-magnitude outliers.
        assert!(h.max() > h.percentile(0.5) * 10);
    }
}
