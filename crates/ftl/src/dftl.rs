//! DFTL — Demand-based Flash Translation Layer (Gupta et al., ASPLOS 2009).
//!
//! DFTL keeps the logical→physical mapping at page granularity, but only a
//! small *Cached Mapping Table* (CMT) resides in device RAM; the full table
//! lives in *translation pages* on Flash, located through the Global
//! Translation Directory (GTD).  Cache misses cost extra Flash reads, dirty
//! evictions cost read-modify-write cycles of translation pages — the
//! overhead behind the paper's observation that DFTL can be up to **3.7×
//! slower** than pure page-level mapping under TPC-C/-B (§3.1).

use nand_flash::{
    BlockAddr, DeviceConfig, FlashError, FlashGeometry, FlashResult, FlashStats, NandDevice,
    NativeFlashInterface, Oob, OpCompletion, PageKind, PageState, Ppa,
};
use serde::{Deserialize, Serialize};
use sim_utils::flatmap::FlatMap;
use sim_utils::time::SimInstant;

use crate::alloc::BlockPools;
use crate::mapping::{CmtEntry, LruCache, PageMap};
use crate::stats::FtlStats;
use crate::traits::Ftl;

/// Configuration of DFTL.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DftlConfig {
    /// Device geometry.
    pub geometry: FlashGeometry,
    /// Over-provisioning fraction.
    pub op_ratio: f64,
    /// Capacity of the Cached Mapping Table, in entries.  Real devices cache
    /// a tiny fraction of the full table (the paper cites ≤512 MB device RAM
    /// for multi-hundred-GB drives).
    pub cmt_entries: usize,
    /// GC low watermark (free blocks).
    pub gc_low_watermark: usize,
    /// GC high watermark (free blocks).
    pub gc_high_watermark: usize,
    /// Whether the device stores page contents.
    pub store_data: bool,
}

impl DftlConfig {
    /// Defaults: 10 % OP, CMT covering ~2 % of the logical pages.
    pub fn new(geometry: FlashGeometry) -> Self {
        let planes = geometry.total_planes() as usize;
        let logical = (geometry.total_pages() as f64 * 0.9) as usize;
        Self {
            geometry,
            op_ratio: 0.10,
            cmt_entries: (logical / 50).max(64),
            gc_low_watermark: 2 * planes,
            gc_high_watermark: 4 * planes,
            store_data: true,
        }
    }
}

/// DFTL: demand-cached page-level mapping.
pub struct Dftl {
    device: NandDevice,
    /// Authoritative logical→physical map (models the union of all
    /// translation pages plus the dirty CMT entries).
    global_map: PageMap,
    /// GTD: translation-virtual-page → flat PPA of the translation page.
    gtd: Vec<Option<u64>>,
    /// Dense reverse table for translation pages (flat PPA → tvpn) used by
    /// GC — directly indexed by physical page, like the data-page maps.
    translation_reverse: FlatMap,
    cmt: LruCache,
    pools: BlockPools,
    stats: FtlStats,
    logical_pages: u64,
    entries_per_tp: u64,
    gc_low: usize,
    gc_high: usize,
    page_size: usize,
    scratch: Vec<u8>,
}

impl Dftl {
    /// Build DFTL and its backing device from `config`.
    pub fn new(config: DftlConfig) -> Self {
        let geometry = config.geometry;
        let mut dev_cfg = DeviceConfig::new(geometry);
        dev_cfg.store_data = config.store_data;
        let device = NandDevice::new(dev_cfg);
        let logical_pages =
            ((geometry.total_pages() as f64) * (1.0 - config.op_ratio)).floor() as u64;
        let entries_per_tp = (geometry.page_size as u64 / 8).max(1);
        let translation_pages = logical_pages.div_ceil(entries_per_tp);
        Self {
            device,
            global_map: PageMap::with_physical_pages(logical_pages, geometry.total_pages()),
            gtd: vec![None; translation_pages as usize],
            translation_reverse: FlatMap::with_index_capacity(geometry.total_pages() as usize),
            cmt: LruCache::new(config.cmt_entries.max(1)),
            pools: BlockPools::new_all_free(geometry),
            stats: FtlStats::new(),
            logical_pages,
            entries_per_tp,
            gc_low: config.gc_low_watermark.max(1),
            gc_high: config.gc_high_watermark.max(config.gc_low_watermark + 1),
            page_size: geometry.page_size as usize,
            scratch: vec![0u8; geometry.page_size as usize],
        }
    }

    /// Build with default configuration.
    pub fn with_geometry(geometry: FlashGeometry) -> Self {
        Self::new(DftlConfig::new(geometry))
    }

    /// Number of entries one translation page covers.
    pub fn entries_per_translation_page(&self) -> u64 {
        self.entries_per_tp
    }

    /// Current number of cached mapping entries.
    pub fn cmt_len(&self) -> usize {
        self.cmt.len()
    }

    fn tvpn_of(&self, lpn: u64) -> u64 {
        lpn / self.entries_per_tp
    }

    fn check_lpn(&self, lpn: u64) -> FlashResult<()> {
        if lpn < self.logical_pages {
            Ok(())
        } else {
            Err(FlashError::InvalidAddress {
                what: format!("logical page {lpn} out of range (capacity {})", self.logical_pages),
            })
        }
    }

    fn check_buf(&self, len: usize) -> FlashResult<()> {
        if len == self.page_size {
            Ok(())
        } else {
            Err(FlashError::BufferSizeMismatch {
                expected: self.page_size,
                actual: len,
            })
        }
    }

    /// Write a (new version of a) translation page for `tvpn`: invalidate the
    /// old copy, program a fresh page, update GTD.  Returns the completion
    /// time of the program.
    fn write_translation_page(&mut self, now: SimInstant, tvpn: u64) -> FlashResult<SimInstant> {
        let g = *self.device.geometry();
        let mut t = self.ensure_free_space_internal(now)?;
        // Read-modify-write: reading the old copy costs a Flash read.
        if let Some(old) = self.gtd[tvpn as usize] {
            let (_, c) = self
                .device
                .read_page(t, Ppa::from_flat(&g, old), &mut self.scratch)?;
            t = t.max(c.completed_at);
            self.stats.translation_reads += 1;
            self.device.invalidate_page(Ppa::from_flat(&g, old))?;
            self.translation_reverse.remove(old);
        }
        let dst = self
            .pools
            .allocate_page_round_robin()
            .ok_or(FlashError::OutOfSpareBlocks)?;
        let payload = vec![0u8; self.page_size];
        let c = self
            .device
            .program_page(t, dst, &payload, Oob::translation(tvpn, 0))?;
        t = t.max(c.completed_at);
        let flat = dst.flat(&g);
        self.gtd[tvpn as usize] = Some(flat);
        self.translation_reverse.insert(flat, tvpn);
        self.stats.translation_writes += 1;
        Ok(t)
    }

    /// Handle a dirty CMT eviction: write back the victim's translation page.
    /// DFTL's batching optimisation piggybacks every other dirty entry of the
    /// same translation page onto the same write-back.
    fn write_back_victim(&mut self, now: SimInstant, victim_lpn: u64) -> FlashResult<SimInstant> {
        let tvpn = self.tvpn_of(victim_lpn);
        let t = self.write_translation_page(now, tvpn)?;
        // Batch: clean all cached entries that belong to the same tvpn.
        let batch: Vec<u64> = self
            .cmt
            .iter()
            .filter(|(lpn, e)| e.dirty && self.tvpn_of(*lpn) == tvpn)
            .map(|(lpn, _)| lpn)
            .collect();
        for lpn in batch {
            if let Some(entry) = self.cmt.peek(lpn) {
                self.cmt.update_in_place(lpn, entry.ppa, false);
            }
        }
        Ok(t)
    }

    /// Insert `lpn → ppa` into the CMT, handling an eventual dirty eviction.
    /// Returns the time after any write-back I/O.
    fn cmt_insert(
        &mut self,
        now: SimInstant,
        lpn: u64,
        ppa: u64,
        dirty: bool,
    ) -> FlashResult<SimInstant> {
        let mut t = now;
        if let Some((victim_lpn, victim)) = self.cmt.insert(lpn, CmtEntry { ppa, dirty }) {
            if victim.dirty {
                t = self.write_back_victim(t, victim_lpn)?;
            }
        }
        Ok(t)
    }

    /// Translate `lpn`, charging translation-page reads on CMT misses.
    /// Returns `(physical_page, time_after_lookup)`.
    fn lookup(&mut self, now: SimInstant, lpn: u64) -> FlashResult<(Option<u64>, SimInstant)> {
        let mut t = now;
        if let Some(entry) = self.cmt.get(lpn) {
            return Ok((Some(entry.ppa), t));
        }
        let tvpn = self.tvpn_of(lpn);
        let Some(tp_flat) = self.gtd[tvpn as usize] else {
            // No translation page exists ⇒ the page was never written.
            return Ok((None, t));
        };
        // Cache miss: fetch the translation page from Flash.
        let g = *self.device.geometry();
        let mut buf = std::mem::take(&mut self.scratch);
        let (_, c) = self.device.read_page(t, Ppa::from_flat(&g, tp_flat), &mut buf)?;
        self.scratch = buf;
        t = t.max(c.completed_at);
        self.stats.translation_reads += 1;
        match self.global_map.get(lpn) {
            Some(ppa) => {
                t = self.cmt_insert(t, lpn, ppa, false)?;
                Ok((Some(ppa), t))
            }
            None => Ok((None, t)),
        }
    }

    fn select_victim(&self) -> Option<BlockAddr> {
        let g = *self.device.geometry();
        let mut best: Option<(BlockAddr, u32)> = None;
        for flat in 0..g.total_blocks() {
            let addr = BlockAddr::from_flat(&g, flat);
            if self.pools.is_active(addr) || self.pools.is_free(addr) {
                continue;
            }
            let info = match self.device.block_info(addr) {
                Ok(i) if i.usable => i,
                _ => continue,
            };
            if info.invalid_pages == 0 {
                continue;
            }
            if best.is_none_or(|(_, inv)| info.invalid_pages > inv) {
                best = Some((addr, info.invalid_pages));
            }
        }
        best.map(|(a, _)| a)
    }

    fn gc_once(&mut self, now: SimInstant) -> FlashResult<Option<SimInstant>> {
        let Some(victim) = self.select_victim() else {
            return Ok(None);
        };
        let g = *self.device.geometry();
        let victim_plane = self.pools.plane_of(victim);
        let mut t = now;
        let mut touched_tvpns: Vec<u64> = Vec::new();

        for page_idx in 0..g.pages_per_block {
            let src = victim.page(page_idx);
            if self.device.page_state(src)? != PageState::Valid {
                continue;
            }
            let oob = self.device.peek_oob(src)?;
            let src_flat = src.flat(&g);
            let (dst, same_plane) = match self.pools.allocate_page_on(victim_plane) {
                Some(p) => (p, true),
                None => match self.pools.allocate_page_round_robin() {
                    Some(p) => (
                        p,
                        p.channel == src.channel && p.die == src.die && p.plane == src.plane,
                    ),
                    None => return Err(FlashError::OutOfSpareBlocks),
                },
            };
            let completion = if same_plane {
                self.device.copyback(t, src, dst, None)?
            } else {
                let mut buf = std::mem::take(&mut self.scratch);
                let (moved_oob, _) = self.device.read_page(t, src, &mut buf)?;
                let c = self.device.program_page(t, dst, &buf, moved_oob)?;
                self.scratch = buf;
                c
            };
            t = t.max(completion.completed_at);
            let dst_flat = dst.flat(&g);
            self.stats.gc_page_copies += 1;

            match oob.kind {
                PageKind::Translation => {
                    let tvpn = oob.lpn;
                    self.gtd[tvpn as usize] = Some(dst_flat);
                    self.translation_reverse.remove(src_flat);
                    self.translation_reverse.insert(dst_flat, tvpn);
                }
                _ => {
                    let lpn = oob.lpn;
                    if lpn == Oob::NO_LPN {
                        continue;
                    }
                    // Only relocate if this physical page is still the current
                    // version of the logical page.
                    if self.global_map.get(lpn) == Some(src_flat) {
                        self.global_map.update(lpn, dst_flat);
                        if self.cmt.peek(lpn).is_some() {
                            self.cmt.update_in_place(lpn, dst_flat, true);
                        } else {
                            let tvpn = self.tvpn_of(lpn);
                            if !touched_tvpns.contains(&tvpn) {
                                touched_tvpns.push(tvpn);
                            }
                        }
                    }
                }
            }
        }

        let done = self.device.erase_block(t, victim)?;
        t = t.max(done.completed_at);
        self.stats.gc_erases += 1;
        self.pools.release_block(victim);

        // Data pages whose mapping is not cached require their translation
        // pages to be updated on Flash.
        for tvpn in touched_tvpns {
            t = self.write_translation_page(t, tvpn)?;
        }
        Ok(Some(t))
    }

    /// GC driver used from host paths (counts stalls).
    fn ensure_free_space(&mut self, now: SimInstant) -> FlashResult<SimInstant> {
        if self.pools.total_free_blocks() > self.gc_low {
            return Ok(now);
        }
        self.stats.gc_stalls += 1;
        self.ensure_free_space_internal(now)
    }

    /// GC driver used from internal paths (translation writes) — no stall
    /// accounting to avoid double counting.
    fn ensure_free_space_internal(&mut self, now: SimInstant) -> FlashResult<SimInstant> {
        let mut t = now;
        if self.pools.total_free_blocks() > self.gc_low {
            return Ok(t);
        }
        while self.pools.total_free_blocks() < self.gc_high {
            match self.gc_once(t)? {
                Some(end) => t = end,
                None => break,
            }
        }
        Ok(t)
    }
}

impl Ftl for Dftl {
    fn name(&self) -> &'static str {
        "dftl"
    }

    fn logical_pages(&self) -> u64 {
        self.logical_pages
    }

    fn read(&mut self, now: SimInstant, lpn: u64, buf: &mut [u8]) -> FlashResult<OpCompletion> {
        self.check_lpn(lpn)?;
        self.check_buf(buf.len())?;
        let g = *self.device.geometry();
        let (ppa, t) = self.lookup(now, lpn)?;
        let Some(flat) = ppa else {
            return Err(FlashError::ReadOfUnwrittenPage(Ppa::from_flat(&g, 0)));
        };
        let (_, completion) = self.device.read_page(t, Ppa::from_flat(&g, flat), buf)?;
        self.stats.host_reads += 1;
        self.stats
            .read_latency
            .record(completion.completed_at.saturating_sub(now));
        Ok(OpCompletion {
            started_at: completion.started_at,
            completed_at: completion.completed_at,
        })
    }

    fn write(&mut self, now: SimInstant, lpn: u64, data: &[u8]) -> FlashResult<OpCompletion> {
        self.check_lpn(lpn)?;
        self.check_buf(data.len())?;
        let g = *self.device.geometry();
        let mut t = self.ensure_free_space(now)?;
        let dst = self
            .pools
            .allocate_page_round_robin()
            .ok_or(FlashError::OutOfSpareBlocks)?;
        let completion = self.device.program_page(t, dst, data, Oob::data(lpn, 0))?;
        t = t.max(completion.completed_at);
        let flat = dst.flat(&g);
        // Invalidate the superseded version (bookkeeping only — real FTLs do
        // this lazily through OOB scans).
        if let Some(old) = self.global_map.update(lpn, flat) {
            self.device.invalidate_page(Ppa::from_flat(&g, old))?;
        }
        // Update the cached mapping; a dirty eviction may cost translation I/O.
        t = self.cmt_insert(t, lpn, flat, true)?;
        self.stats.host_writes += 1;
        self.stats.write_latency.record(t.saturating_sub(now));
        Ok(OpCompletion {
            started_at: completion.started_at,
            completed_at: t,
        })
    }

    fn trim(&mut self, _now: SimInstant, lpn: u64) -> FlashResult<()> {
        self.check_lpn(lpn)?;
        let g = *self.device.geometry();
        self.cmt.remove(lpn);
        if let Some(old) = self.global_map.unmap(lpn) {
            self.device.invalidate_page(Ppa::from_flat(&g, old))?;
        }
        self.stats.host_trims += 1;
        Ok(())
    }

    fn ftl_stats(&self) -> &FtlStats {
        &self.stats
    }

    fn flash_stats(&self) -> &FlashStats {
        self.device.stats()
    }

    fn device(&self) -> &NandDevice {
        &self.device
    }

    fn reset_stats(&mut self) {
        self.stats.clear();
        self.device.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nand_flash::FlashGeometry;

    fn small_dftl(cmt_entries: usize) -> Dftl {
        let mut cfg = DftlConfig::new(FlashGeometry::small());
        cfg.cmt_entries = cmt_entries;
        Dftl::new(cfg)
    }

    fn page(ftl: &Dftl, byte: u8) -> Vec<u8> {
        vec![byte; ftl.device().geometry().page_size as usize]
    }

    #[test]
    fn read_your_writes() {
        let mut ftl = small_dftl(64);
        let data = page(&ftl, 0x77);
        ftl.write(0, 13, &data).unwrap();
        let mut buf = page(&ftl, 0);
        ftl.read(0, 13, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn unwritten_page_read_fails_without_flash_io() {
        let mut ftl = small_dftl(64);
        let before = ftl.flash_stats().reads;
        let mut buf = page(&ftl, 0);
        assert!(ftl.read(0, 5, &mut buf).is_err());
        // GTD has no translation page yet, so the miss is resolved in RAM.
        assert_eq!(ftl.flash_stats().reads, before);
    }

    #[test]
    fn cmt_miss_costs_translation_read() {
        // CMT of 4 entries: writing 100 distinct pages evicts aggressively,
        // so later reads of early pages must fetch translation pages.
        let mut ftl = small_dftl(4);
        let mut now = 0;
        for lpn in 0..100u64 {
            let data = page(&ftl, lpn as u8);
            now = ftl.write(now, lpn, &data).unwrap().completed_at;
        }
        let tr_reads_before = ftl.ftl_stats().translation_reads;
        let mut buf = page(&ftl, 0);
        ftl.read(now, 0, &mut buf).unwrap();
        assert!(
            ftl.ftl_stats().translation_reads > tr_reads_before,
            "expected a translation-page read on CMT miss"
        );
        assert_eq!(buf, page(&ftl, 0));
    }

    #[test]
    fn dirty_evictions_cost_translation_writes() {
        let mut ftl = small_dftl(4);
        let mut now = 0;
        for lpn in 0..64u64 {
            let data = page(&ftl, 1);
            now = ftl.write(now, lpn, &data).unwrap().completed_at;
        }
        assert!(ftl.ftl_stats().translation_writes > 0);
        // Write amplification above 1 even without GC, because translation
        // pages consume programs.
        assert!(ftl.ftl_stats().write_amplification() > 1.0);
    }

    #[test]
    fn large_cmt_behaves_like_page_mapping() {
        // When the CMT covers the whole working set, no translation traffic
        // occurs after the initial writes.
        let mut ftl = small_dftl(10_000);
        let mut now = 0;
        for lpn in 0..100u64 {
            let data = page(&ftl, lpn as u8);
            now = ftl.write(now, lpn, &data).unwrap().completed_at;
        }
        let tr = ftl.ftl_stats().translation_reads + ftl.ftl_stats().translation_writes;
        assert_eq!(tr, 0, "no translation I/O expected with a huge CMT");
        for lpn in (0..100u64).rev() {
            let mut buf = page(&ftl, 0);
            ftl.read(now, lpn, &mut buf).unwrap();
            assert_eq!(buf[0], lpn as u8);
        }
    }

    #[test]
    fn small_cmt_is_slower_than_large_cmt() {
        // The mechanism behind the paper's "up to 3.7x slowdown": same
        // workload, the only difference is the CMT size.
        let run = |cmt: usize| -> u64 {
            let mut ftl = small_dftl(cmt);
            let mut rng = sim_utils::rng::SimRng::new(7);
            let mut now = 0;
            // Span the working set over many translation pages so a tiny CMT
            // misses (and writes back) constantly.
            let span = ftl.logical_pages().min(7000);
            for _ in 0..3000 {
                let lpn = rng.range(0, span);
                let data = vec![1u8; ftl.page_size];
                now = ftl.write(now, lpn, &data).unwrap().completed_at;
            }
            now
        };
        let slow = run(16);
        let fast = run(100_000);
        assert!(
            slow > fast * 3 / 2,
            "small CMT should be noticeably slower: {slow} vs {fast}"
        );
    }

    #[test]
    fn overwrites_and_gc_preserve_data() {
        let g = FlashGeometry::tiny();
        let mut cfg = DftlConfig::new(g);
        cfg.cmt_entries = 8;
        cfg.op_ratio = 0.4;
        cfg.gc_low_watermark = 2;
        cfg.gc_high_watermark = 3;
        let mut ftl = Dftl::new(cfg);
        let lpns = ftl.logical_pages().min(24);
        let mut now = 0;
        for round in 0u8..8 {
            for lpn in 0..lpns {
                let data = vec![round ^ lpn as u8; ftl.page_size];
                now = ftl.write(now, lpn, &data).unwrap().completed_at;
            }
        }
        assert!(ftl.ftl_stats().gc_erases > 0, "GC should have run");
        for lpn in 0..lpns {
            let mut buf = vec![0u8; ftl.page_size];
            ftl.read(now, lpn, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == 7 ^ lpn as u8));
        }
    }

    #[test]
    fn trim_removes_mapping() {
        let mut ftl = small_dftl(64);
        let data = page(&ftl, 5);
        ftl.write(0, 3, &data).unwrap();
        ftl.trim(0, 3).unwrap();
        let mut buf = page(&ftl, 0);
        assert!(ftl.read(0, 3, &mut buf).is_err());
    }

    #[test]
    fn entries_per_translation_page_matches_page_size() {
        let ftl = small_dftl(64);
        assert_eq!(ftl.entries_per_translation_page(), 4096 / 8);
    }
}
