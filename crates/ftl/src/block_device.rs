//! The legacy block-device interface (Figure 1.a / 1.b of the paper).
//!
//! A [`BlockDevice`] exposes only `READ(logical block)` / `WRITE(logical
//! block)` — exactly the interface that hides the native behaviour of Flash.
//! [`FtlBlockDevice`] puts any [`Ftl`] behind that interface; this is the
//! "conventional Flash SSD" the paper compares NoFTL against.
//! [`MemBlockDevice`] is a RAM-backed device with zero latency, used to run
//! benchmarks "in memory" when recording page-level traces (the methodology
//! of Figure 3).

use nand_flash::{FlashError, FlashResult, NativeFlashInterface, OpCompletion};
use sim_utils::time::SimInstant;

use crate::traits::Ftl;

/// A device addressed by logical block (= page-sized sector) numbers.
pub trait BlockDevice {
    /// Size of one logical block in bytes.
    fn block_size(&self) -> usize;

    /// Number of logical blocks exported.
    fn num_blocks(&self) -> u64;

    /// Read logical block `lba` into `buf`.
    fn read_block(
        &mut self,
        now: SimInstant,
        lba: u64,
        buf: &mut [u8],
    ) -> FlashResult<OpCompletion>;

    /// Write logical block `lba` from `data`.
    fn write_block(
        &mut self,
        now: SimInstant,
        lba: u64,
        data: &[u8],
    ) -> FlashResult<OpCompletion>;

    /// Discard logical block `lba` (TRIM); optional, default no-op.
    fn trim_block(&mut self, _now: SimInstant, _lba: u64) -> FlashResult<()> {
        Ok(())
    }
}

/// A block device backed by an FTL over NAND Flash — i.e. a conventional SSD.
pub struct FtlBlockDevice<F: Ftl> {
    ftl: F,
}

impl<F: Ftl> FtlBlockDevice<F> {
    /// Wrap an FTL behind the legacy block interface.
    pub fn new(ftl: F) -> Self {
        Self { ftl }
    }

    /// Borrow the wrapped FTL (for statistics inspection).
    pub fn ftl(&self) -> &F {
        &self.ftl
    }

    /// Mutably borrow the wrapped FTL.
    pub fn ftl_mut(&mut self) -> &mut F {
        &mut self.ftl
    }

    /// Unwrap into the FTL.
    pub fn into_ftl(self) -> F {
        self.ftl
    }
}

impl<F: Ftl> BlockDevice for FtlBlockDevice<F> {
    fn block_size(&self) -> usize {
        self.ftl.device().geometry().page_size as usize
    }

    fn num_blocks(&self) -> u64 {
        self.ftl.logical_pages()
    }

    fn read_block(
        &mut self,
        now: SimInstant,
        lba: u64,
        buf: &mut [u8],
    ) -> FlashResult<OpCompletion> {
        self.ftl.read(now, lba, buf)
    }

    fn write_block(
        &mut self,
        now: SimInstant,
        lba: u64,
        data: &[u8],
    ) -> FlashResult<OpCompletion> {
        self.ftl.write(now, lba, data)
    }

    fn trim_block(&mut self, now: SimInstant, lba: u64) -> FlashResult<()> {
        self.ftl.trim(now, lba)
    }
}

/// A purely in-memory block device with zero latency.
///
/// Used to run a benchmark "in memory" while recording its page-level I/O
/// trace (the methodology the paper uses for the off-line GC comparison of
/// Figure 3), and as a correctness oracle in differential tests.
pub struct MemBlockDevice {
    block_size: usize,
    blocks: Vec<Option<Box<[u8]>>>,
    reads: u64,
    writes: u64,
}

impl MemBlockDevice {
    /// Create a device with `num_blocks` blocks of `block_size` bytes.
    pub fn new(block_size: usize, num_blocks: u64) -> Self {
        Self {
            block_size,
            blocks: vec![None; num_blocks as usize],
            reads: 0,
            writes: 0,
        }
    }

    /// Number of reads served.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of writes absorbed.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    fn check(&self, lba: u64, len: usize) -> FlashResult<()> {
        if lba >= self.blocks.len() as u64 {
            return Err(FlashError::InvalidAddress {
                what: format!("lba {lba} out of range ({} blocks)", self.blocks.len()),
            });
        }
        if len != self.block_size {
            return Err(FlashError::BufferSizeMismatch {
                expected: self.block_size,
                actual: len,
            });
        }
        Ok(())
    }
}

impl BlockDevice for MemBlockDevice {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn num_blocks(&self) -> u64 {
        self.blocks.len() as u64
    }

    fn read_block(
        &mut self,
        now: SimInstant,
        lba: u64,
        buf: &mut [u8],
    ) -> FlashResult<OpCompletion> {
        self.check(lba, buf.len())?;
        match &self.blocks[lba as usize] {
            Some(data) => buf.copy_from_slice(data),
            None => buf.fill(0),
        }
        self.reads += 1;
        Ok(OpCompletion {
            started_at: now,
            completed_at: now,
        })
    }

    fn write_block(
        &mut self,
        now: SimInstant,
        lba: u64,
        data: &[u8],
    ) -> FlashResult<OpCompletion> {
        self.check(lba, data.len())?;
        self.blocks[lba as usize] = Some(data.to_vec().into_boxed_slice());
        self.writes += 1;
        Ok(OpCompletion {
            started_at: now,
            completed_at: now,
        })
    }

    fn trim_block(&mut self, _now: SimInstant, lba: u64) -> FlashResult<()> {
        self.check(lba, self.block_size)?;
        self.blocks[lba as usize] = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page_ftl::PageFtl;
    use nand_flash::FlashGeometry;

    #[test]
    fn mem_device_roundtrip() {
        let mut dev = MemBlockDevice::new(512, 16);
        let data = vec![0xAAu8; 512];
        dev.write_block(0, 3, &data).unwrap();
        let mut buf = vec![0u8; 512];
        dev.read_block(0, 3, &mut buf).unwrap();
        assert_eq!(buf, data);
        assert_eq!(dev.reads(), 1);
        assert_eq!(dev.writes(), 1);
    }

    #[test]
    fn mem_device_unwritten_reads_zero() {
        let mut dev = MemBlockDevice::new(512, 4);
        let mut buf = vec![0xFFu8; 512];
        dev.read_block(0, 0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn mem_device_bounds_and_sizes_checked() {
        let mut dev = MemBlockDevice::new(512, 4);
        let data = vec![0u8; 512];
        assert!(dev.write_block(0, 4, &data).is_err());
        assert!(dev.write_block(0, 0, &[0u8; 10]).is_err());
    }

    #[test]
    fn mem_device_trim_clears() {
        let mut dev = MemBlockDevice::new(512, 4);
        dev.write_block(0, 1, &vec![7u8; 512]).unwrap();
        dev.trim_block(0, 1).unwrap();
        let mut buf = vec![0xFFu8; 512];
        dev.read_block(0, 1, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn ftl_block_device_delegates() {
        let ftl = PageFtl::with_geometry(FlashGeometry::small());
        let mut dev = FtlBlockDevice::new(ftl);
        assert_eq!(dev.block_size(), 4096);
        assert!(dev.num_blocks() > 0);
        let data = vec![0x11u8; 4096];
        dev.write_block(0, 5, &data).unwrap();
        let mut buf = vec![0u8; 4096];
        dev.read_block(0, 5, &mut buf).unwrap();
        assert_eq!(buf, data);
        assert_eq!(dev.ftl().ftl_stats().host_writes, 1);
        dev.trim_block(0, 5).unwrap();
        assert!(dev.read_block(0, 5, &mut buf).is_err());
    }

    #[test]
    fn block_device_is_object_safe() {
        let ftl = PageFtl::with_geometry(FlashGeometry::tiny());
        let mut boxed: Box<dyn BlockDevice> = Box::new(FtlBlockDevice::new(ftl));
        let data = vec![1u8; boxed.block_size()];
        boxed.write_block(0, 0, &data).unwrap();
        let mut buf = vec![0u8; boxed.block_size()];
        boxed.read_block(0, 0, &mut buf).unwrap();
        assert_eq!(buf, data);
    }
}
