//! FTL-level statistics: host I/O, garbage-collection work, merges and
//! translation-table traffic.
//!
//! Together with [`nand_flash::FlashStats`] these counters produce the rows of
//! the paper's Figure 3 (copyback / erase overhead of GC) and the write
//! amplification behind the lifetime claim of §5.

use serde::{Deserialize, Serialize};
use sim_utils::histogram::Histogram;

/// Counters maintained by every FTL implementation.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FtlStats {
    /// Logical page reads requested by the host.
    pub host_reads: u64,
    /// Logical page writes requested by the host.
    pub host_writes: u64,
    /// TRIM/discard requests from the host.
    pub host_trims: u64,
    /// Pages relocated by garbage collection (copyback or read+program).
    pub gc_page_copies: u64,
    /// Blocks erased by garbage collection.
    pub gc_erases: u64,
    /// Synchronous GC invocations that stalled a host write.
    pub gc_stalls: u64,
    /// Full merges performed (log-block FTLs).
    pub full_merges: u64,
    /// Partial merges performed (log-block FTLs).
    pub partial_merges: u64,
    /// Switch merges performed (log-block FTLs).
    pub switch_merges: u64,
    /// Translation-page reads (DFTL cache misses).
    pub translation_reads: u64,
    /// Translation-page writes (DFTL dirty evictions / relocations).
    pub translation_writes: u64,
    /// Host-visible write latency histogram (ns).
    pub write_latency: Histogram,
    /// Host-visible read latency histogram (ns).
    pub read_latency: Histogram,
}

impl FtlStats {
    /// Create zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Write amplification: physical page programs (host + GC + translation)
    /// divided by host page writes. `1.0` when the host has written nothing.
    pub fn write_amplification(&self) -> f64 {
        if self.host_writes == 0 {
            return 1.0;
        }
        let physical = self.host_writes + self.gc_page_copies + self.translation_writes;
        physical as f64 / self.host_writes as f64
    }

    /// Total merges of any kind.
    pub fn total_merges(&self) -> u64 {
        self.full_merges + self.partial_merges + self.switch_merges
    }

    /// Reset all counters.
    pub fn clear(&mut self) {
        *self = FtlStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_amplification_baseline_is_one() {
        let s = FtlStats::new();
        assert_eq!(s.write_amplification(), 1.0);
    }

    #[test]
    fn write_amplification_counts_gc_and_translation() {
        let mut s = FtlStats::new();
        s.host_writes = 100;
        s.gc_page_copies = 40;
        s.translation_writes = 10;
        assert!((s.write_amplification() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn merge_total() {
        let mut s = FtlStats::new();
        s.full_merges = 2;
        s.partial_merges = 3;
        s.switch_merges = 5;
        assert_eq!(s.total_merges(), 10);
    }

    #[test]
    fn clear_resets() {
        let mut s = FtlStats::new();
        s.host_reads = 7;
        s.write_latency.record(100);
        s.clear();
        assert_eq!(s.host_reads, 0);
        assert_eq!(s.write_latency.count(), 0);
    }
}
