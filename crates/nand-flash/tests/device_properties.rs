//! Property-based tests of the NAND device model: address round-trips for
//! arbitrary geometries, state-machine invariants of program/erase/copyback,
//! and conservation of per-block page counts.

use proptest::prelude::*;

use nand_flash::{
    BlockAddr, DeviceConfig, FlashGeometry, NandDevice, NandType, NativeFlashInterface, Oob,
    PageState, Ppa,
};

fn geometry_strategy() -> impl Strategy<Value = FlashGeometry> {
    (1u32..4, 1u32..4, 1u32..3, 2u32..12, 2u32..12).prop_map(
        |(channels, dies, planes, blocks, pages)| FlashGeometry {
            channels,
            dies_per_channel: dies,
            planes_per_die: planes,
            blocks_per_plane: blocks,
            pages_per_block: pages,
            page_size: 512,
            oob_size: 16,
            nand_type: NandType::Slc,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn flat_addressing_roundtrips_for_any_geometry(g in geometry_strategy()) {
        for flat in 0..g.total_pages() {
            let ppa = Ppa::from_flat(&g, flat);
            prop_assert!(ppa.is_valid(&g));
            prop_assert_eq!(ppa.flat(&g), flat);
        }
        for flat in 0..g.total_blocks() {
            let b = BlockAddr::from_flat(&g, flat);
            prop_assert!(b.is_valid(&g));
            prop_assert_eq!(b.flat(&g), flat);
        }
    }

    #[test]
    fn page_counts_are_conserved(
        g in geometry_strategy(),
        ops in prop::collection::vec((0u64..64, 0u8..3), 1..200),
    ) {
        // Apply an arbitrary sequence of program/invalidate/erase operations
        // and check that valid + invalid + free always equals pages_per_block.
        let mut dev = NandDevice::new(DeviceConfig::metadata_only(g));
        let data = vec![0u8; g.page_size as usize];
        for (raw, op) in ops {
            let block_flat = raw % g.total_blocks();
            let addr = BlockAddr::from_flat(&g, block_flat);
            match op {
                0 => {
                    // Program the next free page, if any.
                    let info = dev.block_info(addr).unwrap();
                    if info.next_program_page < g.pages_per_block {
                        let ppa = addr.page(info.next_program_page);
                        dev.program_page(0, ppa, &data, Oob::data(raw, 0)).unwrap();
                    }
                }
                1 => {
                    // Invalidate the first valid page, if any.
                    for p in 0..g.pages_per_block {
                        if dev.page_state(addr.page(p)).unwrap() == PageState::Valid {
                            dev.invalidate_page(addr.page(p)).unwrap();
                            break;
                        }
                    }
                }
                _ => {
                    dev.erase_block(0, addr).unwrap();
                }
            }
            let info = dev.block_info(addr).unwrap();
            prop_assert_eq!(
                info.valid_pages + info.invalid_pages + info.free_pages,
                g.pages_per_block
            );
        }
    }

    #[test]
    fn programmed_data_survives_until_erase(
        writes in prop::collection::vec(any::<u8>(), 1..8),
    ) {
        let g = FlashGeometry::tiny();
        let mut dev = NandDevice::with_geometry(g);
        let block = BlockAddr::new(0, 0, 0, 0);
        let mut expected = Vec::new();
        for (i, byte) in writes.iter().enumerate() {
            let data = vec![*byte; g.page_size as usize];
            dev.program_page(0, block.page(i as u32), &data, Oob::data(i as u64, 0)).unwrap();
            expected.push(*byte);
        }
        let mut buf = vec![0u8; g.page_size as usize];
        for (i, byte) in expected.iter().enumerate() {
            dev.read_page(0, block.page(i as u32), &mut buf).unwrap();
            prop_assert!(buf.iter().all(|b| b == byte));
        }
        dev.erase_block(0, block).unwrap();
        for i in 0..expected.len() {
            prop_assert!(dev.read_page(0, block.page(i as u32), &mut buf).is_err());
        }
    }

    #[test]
    fn completion_times_never_precede_issue(
        issue_times in prop::collection::vec(0u64..1_000_000, 1..50),
    ) {
        let g = FlashGeometry::small();
        let mut dev = NandDevice::with_geometry(g);
        let data = vec![1u8; g.page_size as usize];
        let mut flat = 0u64;
        for now in issue_times {
            let ppa = Ppa::from_flat(&g, flat % g.total_pages());
            // Some programs fail (non-sequential) — only check timing on success.
            if let Ok(c) = dev.program_page(now, ppa, &data, Oob::data(flat, 0)) {
                prop_assert!(c.started_at >= now);
                prop_assert!(c.completed_at > c.started_at);
            }
            flat += g.pages_per_block as u64; // first page of successive blocks
        }
    }
}
