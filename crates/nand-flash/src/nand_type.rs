//! NAND cell types and their timing / endurance profiles.
//!
//! The emulator of the paper can be configured for SLC, MLC and TLC NAND
//! (§3.3); the cell type determines array operation latencies and the
//! program/erase endurance that the wear-leveling experiments build on.

use serde::{Deserialize, Serialize};
use sim_utils::time::{micros, millis, SimDuration};

/// NAND Flash cell technology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NandType {
    /// Single-level cell: fastest, most durable (≈100 k P/E cycles).
    Slc,
    /// Multi-level cell (2 bits/cell): ≈3 k–10 k P/E cycles.
    Mlc,
    /// Triple-level cell (3 bits/cell): slowest, ≈1 k P/E cycles.
    Tlc,
}

impl NandType {
    /// Typical array-operation timing for this cell type.
    pub fn timing(&self) -> TimingProfile {
        match self {
            // Numbers follow the commonly cited datasheet/literature values
            // also used by FlashSim-style simulators.
            NandType::Slc => TimingProfile {
                read_page: micros(25),
                program_page: micros(200),
                erase_block: millis(1) + micros(500),
                channel_ns_per_byte: 10, // ≈100 MB/s bus, ~40 µs per 4 KiB page
                command_overhead: micros(1),
            },
            NandType::Mlc => TimingProfile {
                read_page: micros(50),
                program_page: micros(660),
                erase_block: millis(3),
                channel_ns_per_byte: 10,
                command_overhead: micros(1),
            },
            NandType::Tlc => TimingProfile {
                read_page: micros(75),
                program_page: micros(1500),
                erase_block: millis(4) + micros(500),
                channel_ns_per_byte: 10,
                command_overhead: micros(1),
            },
        }
    }

    /// Nominal program/erase endurance (cycles per block) for this cell type.
    pub fn endurance(&self) -> u64 {
        match self {
            NandType::Slc => 100_000,
            NandType::Mlc => 5_000,
            NandType::Tlc => 1_500,
        }
    }

    /// Short human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            NandType::Slc => "SLC",
            NandType::Mlc => "MLC",
            NandType::Tlc => "TLC",
        }
    }
}

/// Latency parameters of the NAND array and the channel bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingProfile {
    /// Array read time (tR): cell array → page register.
    pub read_page: SimDuration,
    /// Array program time (tPROG): page register → cell array.
    pub program_page: SimDuration,
    /// Block erase time (tBERS).
    pub erase_block: SimDuration,
    /// Channel transfer cost in nanoseconds per byte (data in/out of the page
    /// register over the Flash bus).
    pub channel_ns_per_byte: u64,
    /// Fixed per-command overhead (command/address cycles, controller work).
    pub command_overhead: SimDuration,
}

impl TimingProfile {
    /// Time to move `bytes` over the channel bus.
    pub fn transfer(&self, bytes: u64) -> SimDuration {
        bytes * self.channel_ns_per_byte
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slc_is_fastest() {
        let slc = NandType::Slc.timing();
        let mlc = NandType::Mlc.timing();
        let tlc = NandType::Tlc.timing();
        assert!(slc.read_page < mlc.read_page && mlc.read_page < tlc.read_page);
        assert!(slc.program_page < mlc.program_page && mlc.program_page < tlc.program_page);
        assert!(slc.erase_block < mlc.erase_block && mlc.erase_block < tlc.erase_block);
    }

    #[test]
    fn endurance_ordering() {
        assert!(NandType::Slc.endurance() > NandType::Mlc.endurance());
        assert!(NandType::Mlc.endurance() > NandType::Tlc.endurance());
    }

    #[test]
    fn transfer_cost_scales_with_size() {
        let t = NandType::Slc.timing();
        assert_eq!(t.transfer(4096), 4096 * t.channel_ns_per_byte);
        assert!(t.transfer(8192) > t.transfer(4096));
    }

    #[test]
    fn slc_4k_write_latency_near_quarter_millisecond() {
        // Sanity: array program + channel transfer of a 4 KiB page on SLC
        // should land in the ~0.2–0.5 ms band the paper quotes for average
        // random writes (before FTL-induced outliers).
        let t = NandType::Slc.timing();
        let total = t.program_page + t.transfer(4096) + t.command_overhead;
        assert!(total > micros(150) && total < micros(500), "latency {total}");
    }

    #[test]
    fn names() {
        assert_eq!(NandType::Slc.name(), "SLC");
        assert_eq!(NandType::Mlc.name(), "MLC");
        assert_eq!(NandType::Tlc.name(), "TLC");
    }
}
