//! Occupancy timeline shared by dies and channels.
//!
//! The resource keeps its busy periods as a sorted list of disjoint
//! intervals.  In the default **ratchet** mode every reservation is placed
//! at `max(busy_until, earliest_start)` — commands occupy the resource in
//! submission *call* order, the model every historical trace and paper
//! figure in this repo was pinned against.
//!
//! With **backfill** enabled ([`Timeline::set_backfill`]) a reservation is
//! instead placed in the *earliest idle gap* that fits it.  For submissions
//! whose start times never decrease the two modes are identical: each
//! reservation lands at `max(busy_until, earliest_start)` because all
//! remaining gaps lie in the past (an earlier gap always ends at the start
//! of an operation that was itself placed at its own, earlier submission
//! time).  The difference appears only under concurrent clients, whose
//! virtual clocks drift apart so commands reach the device out of timestamp
//! order.  Under the ratchet a laggard's command would queue behind an
//! operation submitted *later in call order* but stamped *later in virtual
//! time* — charging a wait for a die that was provably idle at the
//! laggard's instant.  Backfill gives the schedule that time-ordered
//! submission would have produced, which is what makes multi-client
//! virtual-time measurements meaningful; the multi-client engine turns it
//! on, everything else keeps the pinned ratchet behaviour.

use sim_utils::time::{SimDuration, SimInstant};

/// Busy intervals kept per resource before the oldest two are coalesced.
/// Coalescing erases a long-past idle gap, which is conservative (an
/// operation can only be scheduled later because of it, never earlier) and
/// keeps memory and lookup cost bounded on arbitrarily long runs.
const MAX_INTERVALS: usize = 32;

/// A resource occupancy timeline: sorted, disjoint busy intervals, with
/// either tail-append ("ratchet", the default) or earliest-fit
/// ("backfill") reservation.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// Sorted by start, pairwise disjoint `(start, end)` half-open busy
    /// intervals; exactly-adjacent neighbours are merged on insert.
    intervals: Vec<(SimInstant, SimInstant)>,
    /// Whether reservations may fill idle gaps before the last interval.
    /// Off by default: the classic `busy_until` ratchet, bit-identical to
    /// every pinned trace.
    backfill: bool,
}

impl Timeline {
    /// An idle timeline in ratchet mode.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enable or disable gap backfilling (see the module docs).  Flipping
    /// the mode mid-run only affects subsequent reservations.
    pub fn set_backfill(&mut self, on: bool) {
        self.backfill = on;
    }

    /// The instant until which the resource is occupied (end of the last
    /// busy interval; 0 when never used).
    pub fn busy_until(&self) -> SimInstant {
        self.intervals.last().map_or(0, |&(_, end)| end)
    }

    /// Reserve a `duration`-long slot starting no earlier than
    /// `earliest_start`: at the tail in ratchet mode, in the earliest idle
    /// gap that fits with backfill on. Returns `(start, end)`.
    pub fn reserve(
        &mut self,
        earliest_start: SimInstant,
        duration: SimDuration,
    ) -> (SimInstant, SimInstant) {
        if duration == 0 {
            // Instantaneous operations occupy nothing; behave like the
            // ratchet for their reported start.
            let start = self.busy_until().max(earliest_start);
            return (start, start);
        }
        // Find the first gap that fits: before the first interval, between
        // two intervals, or after the last.
        let mut insert_at = self.intervals.len();
        let mut start = self.busy_until().max(earliest_start);
        if self.backfill {
            for i in 0..self.intervals.len() {
                let gap_start = if i == 0 { 0 } else { self.intervals[i - 1].1 };
                let gap_end = self.intervals[i].0;
                let candidate = gap_start.max(earliest_start);
                if candidate + duration <= gap_end {
                    insert_at = i;
                    start = candidate;
                    break;
                }
            }
        }
        let end = start + duration;
        self.insert(insert_at, start, end);
        (start, end)
    }

    fn insert(&mut self, at: usize, start: SimInstant, end: SimInstant) {
        // Merge with exactly-adjacent neighbours to keep the list short.
        let merges_prev = at > 0 && self.intervals[at - 1].1 == start;
        let merges_next = at < self.intervals.len() && self.intervals[at].0 == end;
        match (merges_prev, merges_next) {
            (true, true) => {
                self.intervals[at - 1].1 = self.intervals[at].1;
                self.intervals.remove(at);
            }
            (true, false) => self.intervals[at - 1].1 = end,
            (false, true) => self.intervals[at].0 = start,
            (false, false) => self.intervals.insert(at, (start, end)),
        }
        if self.intervals.len() > MAX_INTERVALS {
            // Coalesce the two oldest intervals, sacrificing the most
            // distant idle gap.
            let (s0, _) = self.intervals[0];
            let (_, e1) = self.intervals[1];
            self.intervals[1] = (s0, e1);
            self.intervals.remove(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_submissions_match_the_busy_until_ratchet() {
        // Backfill on: with non-decreasing submission times it is still
        // exactly the ratchet (no usable gap ever exists).
        let mut tl = Timeline::new();
        tl.set_backfill(true);
        assert_eq!(tl.reserve(100, 50), (100, 150));
        // "In the past" but no wide-enough gap: waits like the ratchet.
        assert_eq!(tl.reserve(120, 30), (150, 180));
        // After an idle period: starts immediately.
        assert_eq!(tl.reserve(500, 10), (500, 510));
        assert_eq!(tl.busy_until(), 510);
    }

    #[test]
    fn ratchet_mode_never_backfills() {
        let mut tl = Timeline::new();
        assert_eq!(tl.reserve(400, 70), (400, 470));
        // The [0, 400) gap is idle but ratchet mode queues at the tail —
        // submission call order, the pinned historical model.
        assert_eq!(tl.reserve(150, 70), (470, 540));
        assert_eq!(tl.reserve(100, 100), (540, 640));
    }

    #[test]
    fn out_of_order_submission_backfills_idle_gaps() {
        let mut tl = Timeline::new();
        tl.set_backfill(true);
        assert_eq!(tl.reserve(400, 70), (400, 470));
        // The resource is provably idle over [0, 400): a command stamped
        // earlier fits there instead of queueing behind the later one.
        assert_eq!(tl.reserve(150, 70), (150, 220));
        assert_eq!(tl.busy_until(), 470);
        // The remaining gap [220, 400) takes one more.
        assert_eq!(tl.reserve(100, 100), (220, 320));
        // Too wide for [320, 400): appends at the tail.
        assert_eq!(tl.reserve(100, 100), (470, 570));
    }

    #[test]
    fn adjacent_reservations_coalesce() {
        let mut tl = Timeline::new();
        tl.reserve(0, 10);
        tl.reserve(10, 10);
        tl.reserve(5, 10);
        assert_eq!(tl.intervals, vec![(0, 30)]);
    }

    #[test]
    fn zero_duration_reservations_occupy_nothing() {
        let mut tl = Timeline::new();
        tl.reserve(100, 50);
        assert_eq!(tl.reserve(10, 0), (150, 150));
        assert_eq!(tl.busy_until(), 150);
    }

    #[test]
    fn interval_count_stays_bounded() {
        let mut tl = Timeline::new();
        tl.set_backfill(true);
        for i in 0..10_000u64 {
            // Every reservation separated by an idle gap: worst case for
            // list growth.
            tl.reserve(i * 100, 10);
        }
        assert!(tl.intervals.len() <= MAX_INTERVALS);
        assert_eq!(tl.busy_until(), 9_999 * 100 + 10);
    }
}
