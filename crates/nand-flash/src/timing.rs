//! Channel occupancy model.
//!
//! Array operations occupy a *die*; data transfers occupy the *channel* the
//! die hangs off.  Modelling the two separately is what lets several dies on
//! the same channel overlap their array operations while serialising their
//! transfers — the behaviour that makes "commodity Flash SSDs with 8–10 chips
//! able to execute up to 160 concurrent I/Os" (paper §3.2).

use sim_utils::time::{SimDuration, SimInstant};

use crate::timeline::Timeline;

/// Tracks occupancy of one Flash channel (bus).
#[derive(Debug, Clone, Default)]
pub struct Channel {
    timeline: Timeline,
    busy_time: SimDuration,
    transfers: u64,
}

impl Channel {
    /// Create an idle channel.
    pub fn new() -> Self {
        Self::default()
    }

    /// The instant until which the channel is occupied.
    pub fn busy_until(&self) -> SimInstant {
        self.timeline.busy_until()
    }

    /// Enable or disable gap-backfilling occupancy (default off: the
    /// pinned `busy_until` ratchet; see [`crate::timeline`]).
    pub fn set_backfill_occupancy(&mut self, on: bool) {
        self.timeline.set_backfill(on);
    }

    /// Total accumulated transfer time.
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }

    /// Number of transfers performed.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Reserve the channel for a transfer of length `duration` starting no
    /// earlier than `earliest_start`: at the tail by default, in the
    /// earliest idle gap that fits with backfill on. Returns `(start, end)`.
    pub fn occupy(
        &mut self,
        earliest_start: SimInstant,
        duration: SimDuration,
    ) -> (SimInstant, SimInstant) {
        let (start, end) = self.timeline.reserve(earliest_start, duration);
        self.busy_time += duration;
        self.transfers += 1;
        (start, end)
    }

    /// Channel utilisation over `[0, horizon]`.
    pub fn utilisation(&self, horizon: SimInstant) -> f64 {
        if horizon == 0 {
            0.0
        } else {
            (self.busy_time as f64 / horizon as f64).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_serialises_transfers() {
        let mut ch = Channel::new();
        assert_eq!(ch.occupy(0, 10), (0, 10));
        assert_eq!(ch.occupy(5, 10), (10, 20));
        assert_eq!(ch.occupy(100, 10), (100, 110));
        assert_eq!(ch.transfers(), 3);
        assert_eq!(ch.busy_time(), 30);
    }

    #[test]
    fn utilisation_bounds() {
        let mut ch = Channel::new();
        ch.occupy(0, 50);
        assert!((ch.utilisation(100) - 0.5).abs() < 1e-12);
        assert_eq!(ch.utilisation(0), 0.0);
    }
}
