//! Command tracing.
//!
//! The paper's Figure 3 experiment is *off-line trace-driven*: page-level
//! traces recorded from in-memory benchmark runs are replayed against
//! different Flash-management schemes.  [`Tracer`] records the native Flash
//! commands a device executes so experiments can audit exactly what an FTL
//! did, and so traces can be replayed deterministically.

use serde::{Deserialize, Serialize};
use sim_utils::time::SimInstant;

use crate::addr::{BlockAddr, Ppa};
use crate::interface::OpKind;

/// One traced native Flash command.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Kind of command.
    pub kind: OpKind,
    /// Issue time (virtual).
    pub issued_at: SimInstant,
    /// Completion time (virtual).
    pub completed_at: SimInstant,
    /// Target page, for page-granularity commands.
    pub ppa: Option<Ppa>,
    /// Target block, for erase commands.
    pub block: Option<BlockAddr>,
    /// Logical page number involved, if known.
    pub lpn: Option<u64>,
}

/// Bounded in-memory command trace.
///
/// Tracing is off by default; experiments that need a full audit enable it
/// with a capacity bound so multi-billion-operation runs cannot exhaust RAM.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    enabled: bool,
    capacity: usize,
    entries: Vec<TraceEntry>,
    dropped: u64,
}

impl Tracer {
    /// Create a disabled tracer.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Create an enabled tracer that keeps at most `capacity` entries and
    /// counts (but drops) the rest.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            enabled: true,
            capacity,
            entries: Vec::new(),
            dropped: 0,
        }
    }

    /// Whether tracing is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an entry (no-op when disabled).
    pub fn record(&mut self, entry: TraceEntry) {
        if !self.enabled {
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.push(entry);
        } else {
            self.dropped += 1;
        }
    }

    /// Entries recorded so far.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of entries dropped because the capacity bound was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Clear recorded entries (keeps the enabled flag and capacity).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(kind: OpKind, t: SimInstant) -> TraceEntry {
        TraceEntry {
            kind,
            issued_at: t,
            completed_at: t + 1,
            ppa: None,
            block: None,
            lpn: None,
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        t.record(entry(OpKind::Read, 0));
        assert!(t.entries().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn capacity_bound_is_respected() {
        let mut t = Tracer::with_capacity(2);
        for i in 0..5 {
            t.record(entry(OpKind::Program, i));
        }
        assert_eq!(t.entries().len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn clear_resets() {
        let mut t = Tracer::with_capacity(8);
        t.record(entry(OpKind::Erase, 0));
        t.clear();
        assert!(t.entries().is_empty());
        assert_eq!(t.dropped(), 0);
        assert!(t.is_enabled());
    }
}
