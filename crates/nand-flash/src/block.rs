//! Erase blocks: the unit of erasure, wear and GC victim selection.

use serde::{Deserialize, Serialize};
use sim_utils::time::SimInstant;

use crate::oob::Oob;
use crate::page::{Page, PageState};

/// Health of an erase block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockHealth {
    /// Fully usable.
    Good,
    /// Marked bad at the factory (never usable).
    FactoryBad,
    /// Failed in the field (program/erase failure or worn out).
    GrownBad,
}

/// An erase block: a fixed-size run of pages that must be programmed
/// sequentially and erased as a unit.
#[derive(Debug, Clone)]
pub struct Block {
    pages: Vec<Page>,
    /// Next page index that may be programmed (NAND sequential-program rule).
    next_program_page: u32,
    /// Number of erase cycles this block has endured.
    erase_count: u64,
    /// Number of pages currently in the [`PageState::Valid`] state.
    valid_pages: u32,
    /// Number of pages currently in the [`PageState::Invalid`] state.
    invalid_pages: u32,
    /// Health state.
    health: BlockHealth,
    /// Reads served since the last erase (the read-disturb stress of the
    /// fault model; maintained only while a fault plan is active).
    read_disturb: u64,
    /// Virtual instant of the last program into the block (the retention
    /// base of the fault model; maintained only while a fault plan is
    /// active).
    programmed_at: SimInstant,
}

impl Block {
    /// Create a new, erased block with `pages_per_block` pages.
    pub fn new(pages_per_block: u32) -> Self {
        Self {
            pages: (0..pages_per_block).map(|_| Page::erased()).collect(),
            next_program_page: 0,
            erase_count: 0,
            valid_pages: 0,
            invalid_pages: 0,
            health: BlockHealth::Good,
            read_disturb: 0,
            programmed_at: 0,
        }
    }

    /// Number of pages in the block.
    pub fn pages_per_block(&self) -> u32 {
        self.pages.len() as u32
    }

    /// Immutable access to a page.
    pub fn page(&self, idx: u32) -> &Page {
        &self.pages[idx as usize]
    }

    /// Next page index expected by the sequential-programming rule; equals
    /// `pages_per_block()` when the block is full.
    pub fn next_program_page(&self) -> u32 {
        self.next_program_page
    }

    /// Whether every page of the block has been programmed.
    pub fn is_full(&self) -> bool {
        self.valid_pages + self.invalid_pages >= self.pages_per_block()
    }

    /// Whether the block is completely erased (no page programmed).
    pub fn is_erased(&self) -> bool {
        self.next_program_page == 0
    }

    /// Number of erase cycles endured so far.
    pub fn erase_count(&self) -> u64 {
        self.erase_count
    }

    /// Number of valid (live) pages.
    pub fn valid_pages(&self) -> u32 {
        self.valid_pages
    }

    /// Number of invalid (dead) pages.
    pub fn invalid_pages(&self) -> u32 {
        self.invalid_pages
    }

    /// Number of still-free pages.
    pub fn free_pages(&self) -> u32 {
        self.pages_per_block() - self.valid_pages - self.invalid_pages
    }

    /// Health state.
    pub fn health(&self) -> BlockHealth {
        self.health
    }

    /// Whether the block can be used for new programs/erases.
    pub fn is_usable(&self) -> bool {
        self.health == BlockHealth::Good
    }

    /// Reads served since the last erase (read-disturb stress; maintained
    /// only while a fault plan is active).
    pub fn read_disturb(&self) -> u64 {
        self.read_disturb
    }

    /// Virtual instant of the last program into the block (retention base;
    /// maintained only while a fault plan is active).
    pub fn programmed_at(&self) -> SimInstant {
        self.programmed_at
    }

    /// Count one read against the block's read-disturb stress.
    pub(crate) fn note_read_disturb(&mut self) {
        self.read_disturb += 1;
    }

    /// Note the virtual instant of a program into the block.
    pub(crate) fn note_programmed_at(&mut self, now: SimInstant) {
        self.programmed_at = now;
    }

    /// Mark the block bad (factory or grown).
    pub(crate) fn mark_bad(&mut self, health: BlockHealth) {
        self.health = health;
    }

    /// Record a program of page `idx`. The device has already validated the
    /// page is free (and, in strict mode, the sequential-programming rule).
    pub(crate) fn record_program(&mut self, idx: u32, data: Option<Box<[u8]>>, oob: Oob) {
        let page = &mut self.pages[idx as usize];
        debug_assert!(page.state == PageState::Free, "program on non-free page");
        page.state = PageState::Valid;
        page.data = data;
        page.oob = oob;
        self.next_program_page = self.next_program_page.max(idx + 1);
        self.valid_pages += 1;
    }

    /// Mark a previously valid page invalid (its logical content was
    /// superseded or discarded). Idempotent for already-invalid pages.
    pub fn invalidate_page(&mut self, idx: u32) {
        let page = &mut self.pages[idx as usize];
        match page.state {
            PageState::Valid => {
                page.state = PageState::Invalid;
                self.valid_pages -= 1;
                self.invalid_pages += 1;
            }
            PageState::Invalid => {}
            PageState::Free => {
                // Invalidating a free page is a no-op; FTLs may do this when
                // trimming pages that were never written.
            }
        }
    }

    /// Erase the whole block: every page returns to `Free`, wear increases.
    pub(crate) fn erase(&mut self) {
        for p in &mut self.pages {
            p.erase();
        }
        self.next_program_page = 0;
        self.valid_pages = 0;
        self.invalid_pages = 0;
        self.erase_count += 1;
        self.read_disturb = 0;
        self.programmed_at = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_block_is_erased_and_good() {
        let b = Block::new(16);
        assert!(b.is_erased());
        assert!(!b.is_full());
        assert!(b.is_usable());
        assert_eq!(b.free_pages(), 16);
        assert_eq!(b.erase_count(), 0);
    }

    #[test]
    fn program_advances_write_pointer_and_counts() {
        let mut b = Block::new(4);
        for i in 0..4 {
            b.record_program(i, None, Oob::data(i as u64, i as u64));
        }
        assert!(b.is_full());
        assert_eq!(b.valid_pages(), 4);
        assert_eq!(b.free_pages(), 0);
    }

    #[test]
    fn invalidate_moves_counts() {
        let mut b = Block::new(4);
        b.record_program(0, None, Oob::data(9, 0));
        b.invalidate_page(0);
        assert_eq!(b.valid_pages(), 0);
        assert_eq!(b.invalid_pages(), 1);
        // Idempotent.
        b.invalidate_page(0);
        assert_eq!(b.invalid_pages(), 1);
        // Invalidating a free page is a no-op.
        b.invalidate_page(2);
        assert_eq!(b.invalid_pages(), 1);
    }

    #[test]
    fn erase_resets_and_bumps_wear() {
        let mut b = Block::new(4);
        b.record_program(0, Some(vec![1u8; 8].into_boxed_slice()), Oob::data(1, 1));
        b.record_program(1, None, Oob::data(2, 2));
        b.invalidate_page(0);
        b.erase();
        assert!(b.is_erased());
        assert_eq!(b.valid_pages(), 0);
        assert_eq!(b.invalid_pages(), 0);
        assert_eq!(b.erase_count(), 1);
        assert!(b.page(0).is_free());
        b.erase();
        assert_eq!(b.erase_count(), 2);
    }

    #[test]
    fn mark_bad_makes_unusable() {
        let mut b = Block::new(4);
        b.mark_bad(BlockHealth::GrownBad);
        assert!(!b.is_usable());
        assert_eq!(b.health(), BlockHealth::GrownBad);
    }
}
