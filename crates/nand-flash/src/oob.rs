//! Out-of-band (spare area) page metadata.
//!
//! The native Flash interface lets the host "handle page metadata" (paper,
//! Figure 2): each programmed page carries a small record in the spare area
//! that the Flash-management layer (FTL or NoFTL) uses to rebuild its mapping
//! after a restart and to decide which pages are live during GC.

use serde::{Deserialize, Serialize};

/// What kind of content a physical page holds — the host-defined tag stored
/// in the spare area.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[derive(Default)]
pub enum PageKind {
    /// Regular user data page (a database page).
    #[default]
    Data,
    /// FTL translation page (used by DFTL's cached mapping scheme).
    Translation,
    /// Log/journal page (used by log-block FTLs and the WAL).
    Log,
    /// Device or FTL metadata (checkpoints of mapping tables, superblocks).
    Meta,
}


/// Out-of-band metadata record programmed together with a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Oob {
    /// Logical page number this physical page stores (u64::MAX = none).
    pub lpn: u64,
    /// Monotonic write sequence number, used to find the newest version of a
    /// logical page during recovery scans.
    pub sequence: u64,
    /// Content tag.
    pub kind: PageKind,
}

impl Oob {
    /// Sentinel LPN meaning "no logical page" (e.g. padding pages).
    pub const NO_LPN: u64 = u64::MAX;

    /// Metadata for a data page holding logical page `lpn`, written as the
    /// `sequence`-th page overall.
    pub fn data(lpn: u64, sequence: u64) -> Self {
        Self {
            lpn,
            sequence,
            kind: PageKind::Data,
        }
    }

    /// Metadata for a translation page (DFTL).
    pub fn translation(virtual_translation_page: u64, sequence: u64) -> Self {
        Self {
            lpn: virtual_translation_page,
            sequence,
            kind: PageKind::Translation,
        }
    }

    /// Metadata for a log page.
    pub fn log(lpn: u64, sequence: u64) -> Self {
        Self {
            lpn,
            sequence,
            kind: PageKind::Log,
        }
    }

    /// Metadata for an FTL/device metadata page.
    pub fn meta(sequence: u64) -> Self {
        Self {
            lpn: Self::NO_LPN,
            sequence,
            kind: PageKind::Meta,
        }
    }

    /// Whether this OOB record refers to a real logical page.
    pub fn has_lpn(&self) -> bool {
        self.lpn != Self::NO_LPN
    }
}

impl Default for Oob {
    fn default() -> Self {
        Self {
            lpn: Self::NO_LPN,
            sequence: 0,
            kind: PageKind::Data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        assert_eq!(Oob::data(1, 2).kind, PageKind::Data);
        assert_eq!(Oob::translation(1, 2).kind, PageKind::Translation);
        assert_eq!(Oob::log(1, 2).kind, PageKind::Log);
        assert_eq!(Oob::meta(2).kind, PageKind::Meta);
    }

    #[test]
    fn meta_has_no_lpn() {
        assert!(!Oob::meta(0).has_lpn());
        assert!(Oob::data(5, 0).has_lpn());
    }

    #[test]
    fn default_is_empty() {
        let oob = Oob::default();
        assert!(!oob.has_lpn());
        assert_eq!(oob.sequence, 0);
    }
}
