//! The native Flash interface.
//!
//! This is the protocol the paper proposes instead of the legacy block
//! interface (Figure 1.c and §3): the host addresses *physical* pages and
//! blocks and issues the minimal NAND command set — `PAGE READ`,
//! `PAGE PROGRAM`, `COPYBACK PROGRAM`, `BLOCK ERASE` — plus an `IDENTIFY`
//! command that exposes the device architecture (channels, LUNs, NAND type),
//! and multi-page variants that map to ONFI cache/sequential commands.

use serde::{Deserialize, Serialize};
use sim_utils::time::SimInstant;

use crate::addr::{BlockAddr, Ppa};
use crate::error::FlashResult;
use crate::geometry::FlashGeometry;
use crate::oob::Oob;
use crate::stats::FlashStats;

/// Kinds of native Flash commands (used for tracing and statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// PAGE READ with data transfer to the host.
    Read,
    /// PAGE PROGRAM with data transfer from the host.
    Program,
    /// BLOCK ERASE (no data transfer).
    Erase,
    /// COPYBACK PROGRAM (on-die copy, no data transfer).
    Copyback,
    /// Read of the OOB (spare) area only.
    ReadOob,
}

/// Timing result of a native Flash command on the virtual clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCompletion {
    /// When the command actually started executing (≥ issue time; later if
    /// the target die or channel was busy).
    pub started_at: SimInstant,
    /// When the command finished.
    pub completed_at: SimInstant,
}

impl OpCompletion {
    /// End-to-end latency experienced by the issuer (completion − issue).
    pub fn latency_from(&self, issued_at: SimInstant) -> u64 {
        self.completed_at.saturating_sub(issued_at)
    }

    /// Service time of the command itself (completion − start).
    pub fn service_time(&self) -> u64 {
        self.completed_at.saturating_sub(self.started_at)
    }
}

/// Response of the `IDENTIFY` command: everything a DBMS needs to know about
/// the device architecture to do its own data placement (paper §3: "similar
/// to HDIO_GETGEO for HDDs").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceIdentification {
    /// Device model string.
    pub model: String,
    /// Full geometry (channels, dies, planes, blocks, pages, page size).
    pub geometry: FlashGeometry,
    /// Program/erase endurance per block for this NAND type.
    pub endurance: u64,
    /// Maximum number of in-flight commands per die the device supports.
    pub max_queue_per_die: u32,
    /// Whether the device supports the COPYBACK PROGRAM command.
    pub supports_copyback: bool,
    /// Whether multi-page (cache/sequential) command variants are supported.
    pub supports_multiplane: bool,
}

/// The native Flash interface: the contract between Flash-management software
/// (on-device FTL *or* the NoFTL-enabled DBMS) and the NAND array.
///
/// Every operation takes `now`, the issuer's current virtual time, and returns
/// an [`OpCompletion`] describing when the device could actually start and
/// finish the command given die/channel occupancy.  These calls are the
/// *blocking* protocol; hosts that want several commands in flight per die
/// use the device's queued submission path (`submit_program_pages` /
/// `poll_completions` on `crate::NandDevice`, bounded by
/// [`DeviceIdentification::max_queue_per_die`]).
pub trait NativeFlashInterface {
    /// Device geometry (cheap accessor; same data as [`Self::identify`]).
    fn geometry(&self) -> &FlashGeometry;

    /// Full IDENTIFY response.
    fn identify(&self) -> DeviceIdentification;

    /// PAGE READ: read the user data of `ppa` into `buf`
    /// (`buf.len() == page_size`) and return the page's OOB metadata.
    fn read_page(
        &mut self,
        now: SimInstant,
        ppa: Ppa,
        buf: &mut [u8],
    ) -> FlashResult<(Oob, OpCompletion)>;

    /// Read only the OOB metadata of `ppa` (used by recovery scans; much
    /// cheaper than a full page read on real hardware).
    fn read_oob(&mut self, now: SimInstant, ppa: Ppa) -> FlashResult<(Oob, OpCompletion)>;

    /// Multi-page PAGE READ: read a run of pages **on one die** as a single
    /// dispatched command sequence (the read-side sibling of
    /// [`NativeFlashInterface::program_pages`]).
    ///
    /// Every `(ppa, buf)` entry is filled in order.  Implementations model
    /// the run as *one* command transfer — a single per-run command overhead
    /// — whose array senses serialise on the die while the data transfers
    /// serialise on the channel, so the sense of page *j+1* overlaps the
    /// transfer of page *j* (the ONFI cache-read pipeline): a k-page run
    /// costs roughly `cmd + tR + k·transfer ∥ k·tR` instead of
    /// `k·(cmd + tR + transfer)`.  The default implementation degrades to a
    /// sequential per-page loop (each read issued at the completion of the
    /// previous one), which is exactly the legacy single-page behaviour.
    ///
    /// Returns the completion of the whole run (`started_at` of the first
    /// sense, `completed_at` of the last transfer).  An empty run completes
    /// at `now`.
    fn read_pages(
        &mut self,
        now: SimInstant,
        ops: &mut [(Ppa, &mut [u8])],
    ) -> FlashResult<OpCompletion> {
        let mut completion = OpCompletion {
            started_at: now,
            completed_at: now,
        };
        let mut t = now;
        for (i, (ppa, buf)) in ops.iter_mut().enumerate() {
            let (_, c) = self.read_page(t, *ppa, buf)?;
            if i == 0 {
                completion.started_at = c.started_at;
            }
            t = t.max(c.completed_at);
        }
        completion.completed_at = t;
        Ok(completion)
    }

    /// PAGE PROGRAM: write `data` (+ OOB) to the erased page `ppa`.
    fn program_page(
        &mut self,
        now: SimInstant,
        ppa: Ppa,
        data: &[u8],
        oob: Oob,
    ) -> FlashResult<OpCompletion>;

    /// Multi-page PAGE PROGRAM: write a run of pages **on one die** as a
    /// single dispatched command sequence (the ONFI cache/sequential program
    /// variants the `IDENTIFY` response advertises via `supports_multiplane`).
    ///
    /// Every `(ppa, data, oob)` entry is programmed in order.  Implementations
    /// model the run as *one* command transfer — a single per-run command
    /// overhead — whose data transfers pipeline with the cell programs, so a
    /// k-page run costs roughly `cmd + k·transfer ∥ k·tPROG` instead of
    /// `k·(cmd + transfer + tPROG)`.  The default implementation degrades to a
    /// sequential per-page loop (each program issued at the completion of the
    /// previous one), which is exactly the legacy single-page behaviour.
    ///
    /// Returns the completion of the whole run (`started_at` of the first
    /// page, `completed_at` of the last).  An empty run completes at `now`.
    fn program_pages(
        &mut self,
        now: SimInstant,
        ops: &[(Ppa, &[u8], Oob)],
    ) -> FlashResult<OpCompletion> {
        let mut completion = OpCompletion {
            started_at: now,
            completed_at: now,
        };
        let mut t = now;
        for (i, (ppa, data, oob)) in ops.iter().enumerate() {
            let c = self.program_page(t, *ppa, data, *oob)?;
            if i == 0 {
                completion.started_at = c.started_at;
            }
            t = t.max(c.completed_at);
        }
        completion.completed_at = t;
        Ok(completion)
    }

    /// BLOCK ERASE.
    fn erase_block(&mut self, now: SimInstant, block: BlockAddr) -> FlashResult<OpCompletion>;

    /// COPYBACK PROGRAM: copy a valid page to an erased page on the same
    /// plane without transferring data over the channel.  The destination
    /// keeps the source's OOB unless `new_oob` overrides it.
    fn copyback(
        &mut self,
        now: SimInstant,
        src: Ppa,
        dst: Ppa,
        new_oob: Option<Oob>,
    ) -> FlashResult<OpCompletion>;

    /// Mark a previously programmed page as invalid (host-side hint; does not
    /// touch the NAND array, only the model's bookkeeping used by GC).
    fn invalidate_page(&mut self, ppa: Ppa) -> FlashResult<()>;

    /// Command and latency statistics accumulated so far.
    fn stats(&self) -> &FlashStats;

    /// Reset statistics (counters and histograms).
    fn reset_stats(&mut self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_latency_math() {
        let c = OpCompletion {
            started_at: 150,
            completed_at: 200,
        };
        assert_eq!(c.latency_from(100), 100);
        assert_eq!(c.service_time(), 50);
        assert_eq!(c.latency_from(300), 0); // saturating
    }
}
