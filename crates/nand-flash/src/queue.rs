//! Per-die command queues: the submit/poll half of the native interface.
//!
//! The synchronous [`crate::NativeFlashInterface`] methods compute a
//! command's completion and hand it straight back — the issuer blocks on
//! every call.  Real native-Flash drivers instead keep a bounded number of
//! commands *in flight* per die (the `max_queue_per_die` the `IDENTIFY`
//! response advertises) and learn about completions asynchronously.  This
//! module models that pipeline on the virtual clock:
//!
//! * [`CommandQueues`] tracks, per die, the commands whose completion lies in
//!   the virtual future.  A submission against a full die queue is *gated*:
//!   its issue time is pushed back to the completion of the oldest in-flight
//!   command, exactly like a driver spinning on a full hardware queue.
//! * Every accepted submission produces a [`QueuedCompletion`] carrying the
//!   submit stamp, the (possibly gated) issue stamp and the device-computed
//!   [`OpCompletion`].  Completions accumulate until the issuer polls them —
//!   the storage engine drives its db-writers off this instead of blocking
//!   per submission.
//!
//! Because the device model is deterministic, a command's completion time is
//! known the moment it is admitted; the queue's job is to bound the in-flight
//! window and to re-order *issue* times the way a real per-die queue would.
//! With a queue depth of 1 every submission waits for its predecessor on the
//! same die — the synchronous dispatch — which is what makes the
//! `NOFTL_ASYNC` depth-1 equivalence leg of the test suite possible.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};
use sim_utils::time::SimInstant;

use crate::addr::{BlockAddr, DieAddr, Ppa};
use crate::error::{FlashError, FlashResult};
use crate::interface::{OpCompletion, OpKind};

/// Identifier of a submitted command (unique per device, monotone).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CommandId(pub u64);

/// Per-command completion status.
///
/// With fault injection off every completion is [`CommandStatus::Ok`]; with a
/// fault plan active, a queued command that fails on the device still
/// occupies its die-queue slot for its full duration and reports the failure
/// here — a poll-driven issuer learns about the error from the completion
/// stream exactly like a real driver reading a status register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommandStatus {
    /// The command completed successfully.
    Ok,
    /// A PAGE PROGRAM (or the program half of a copyback) failed; the page
    /// is consumed and the block should be retired.
    ProgramFailed(Ppa),
    /// A BLOCK ERASE failed; the block is marked grown-bad.
    EraseFailed(BlockAddr),
    /// A PAGE READ saw bit errors beyond the ECC correction budget.
    Uncorrectable(Ppa),
    /// The die failed while the command was in flight (a deterministic
    /// [`crate::fault::KillSpec`] fired); the command is lost.
    DieFailed(DieAddr),
}

impl CommandStatus {
    /// Whether the command succeeded.
    pub fn is_ok(self) -> bool {
        self == CommandStatus::Ok
    }

    /// The status as a `Result`, reconstructing the matching [`FlashError`]
    /// for failed commands.
    pub fn result(self) -> FlashResult<()> {
        match self {
            CommandStatus::Ok => Ok(()),
            CommandStatus::ProgramFailed(ppa) => Err(FlashError::ProgramFailed(ppa)),
            CommandStatus::EraseFailed(b) => Err(FlashError::EraseFailed(b)),
            CommandStatus::Uncorrectable(ppa) => Err(FlashError::UncorrectableEcc(ppa)),
            CommandStatus::DieFailed(d) => Err(FlashError::DieFailed(d)),
        }
    }
}

/// Completion record of a queued command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueuedCompletion {
    /// Identifier returned at submit time.
    pub id: CommandId,
    /// Kind of the underlying native command (a multi-page run reports
    /// [`OpKind::Program`]).
    pub kind: OpKind,
    /// When the host submitted the command.
    pub submitted_at: SimInstant,
    /// When the die queue dispatched it (`> submitted_at` when the submission
    /// was gated behind a full queue).
    pub issued_at: SimInstant,
    /// Device-computed start/completion stamps.
    pub completion: OpCompletion,
    /// Whether the command succeeded, and if not, how it failed.
    pub status: CommandStatus,
}

impl QueuedCompletion {
    /// Whether the command had finished by `now`.
    pub fn is_done_at(&self, now: SimInstant) -> bool {
        self.completion.completed_at <= now
    }

    /// The command's outcome as a `Result` (see [`CommandStatus::result`]).
    pub fn result(&self) -> FlashResult<()> {
        self.status.result()
    }
}

/// One die's bounded in-flight window: completion times of commands the host
/// has submitted but not yet seen retire, each tagged with its [`OpKind`] so
/// queue-occupancy introspection can tell foreground reads from background
/// program/erase traffic.
#[derive(Debug, Clone, Default)]
struct DieQueue {
    inflight: VecDeque<(SimInstant, OpKind)>,
}

/// Per-die command queues plus the not-yet-polled completion list.
#[derive(Debug, Clone)]
pub struct CommandQueues {
    depth: usize,
    dies: Vec<DieQueue>,
    /// Unpolled completions, each tagged with the die it ran on (the tag is
    /// internal — [`CommandQueues::poll`] strips it) so a die failure can
    /// rewrite exactly its own in-flight completions.
    completed: Vec<(usize, QueuedCompletion)>,
    next_id: u64,
    peak_inflight: usize,
}

impl CommandQueues {
    /// Create queues for `dies` dies with the given per-die depth (clamped to
    /// at least 1).
    pub fn new(dies: usize, depth: usize) -> Self {
        Self {
            depth: depth.max(1),
            dies: vec![DieQueue::default(); dies],
            completed: Vec::new(),
            next_id: 0,
            peak_inflight: 0,
        }
    }

    /// Per-die queue depth in effect.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Change the per-die queue depth (clamped to at least 1).  Commands
    /// already in flight keep their stamps.
    pub fn set_depth(&mut self, depth: usize) {
        self.depth = depth.max(1);
    }

    /// Highest number of simultaneously in-flight commands observed on any
    /// single die.
    pub fn peak_inflight(&self) -> usize {
        self.peak_inflight
    }

    /// Number of commands currently in flight on `die` as of `now`.
    pub fn inflight_on(&self, die: usize, now: SimInstant) -> usize {
        self.dies[die]
            .inflight
            .iter()
            .filter(|&&(c, _)| c > now)
            .count()
    }

    /// Total commands in flight across every die as of `now` — the foreground
    /// queue-depth signal load-aware schedulers (flusher throttling, GC
    /// deferral) consult before launching background waves.
    pub fn inflight_total(&self, now: SimInstant) -> usize {
        self.dies
            .iter()
            .map(|d| d.inflight.iter().filter(|&&(c, _)| c > now).count())
            .sum()
    }

    /// Read commands in flight across every die as of `now` — nonzero means
    /// the instant is read-hot: background relocations launched now would
    /// queue ahead of (and delay) foreground read completions.
    pub fn inflight_reads(&self, now: SimInstant) -> usize {
        self.dies
            .iter()
            .map(|d| {
                d.inflight
                    .iter()
                    .filter(|&&(c, k)| c > now && k == OpKind::Read)
                    .count()
            })
            .sum()
    }

    /// Admit a command for `die` submitted at `now`: retires commands the
    /// virtual clock has passed and, if the queue is still full, gates the
    /// issue behind the completions that must retire to make room.  Returns
    /// `(issue_time, gated)`.
    ///
    /// Beyond retiring already-completed entries this does **not** modify the
    /// window — entries only leave it in [`CommandQueues::record`] — so a
    /// submission that fails validation after being admitted cannot evict a
    /// command that is still in flight.
    pub fn admit(&mut self, die: usize, now: SimInstant) -> (SimInstant, bool) {
        let q = &mut self.dies[die].inflight;
        while let Some(&(front, _)) = q.front() {
            if front <= now {
                q.pop_front();
            } else {
                break;
            }
        }
        if q.len() >= self.depth {
            // Enough of the oldest in-flight commands must retire that only
            // `depth - 1` remain when the new one issues; with the window
            // ordered by completion that gate is the entry at `len - depth`.
            let (gate, _) = q[q.len() - self.depth];
            (now.max(gate), true)
        } else {
            (now, false)
        }
    }

    /// Record an accepted command on `die`; returns its id and stores the
    /// completion for a later poll.
    pub fn record(
        &mut self,
        die: usize,
        kind: OpKind,
        submitted_at: SimInstant,
        issued_at: SimInstant,
        completion: OpCompletion,
    ) -> CommandId {
        self.record_with_status(die, kind, submitted_at, issued_at, completion, CommandStatus::Ok)
    }

    /// Record a command whose device-side execution failed: it occupied its
    /// die for the full (charged) duration and its completion carries the
    /// failure status for the poll stream.
    pub fn record_with_status(
        &mut self,
        die: usize,
        kind: OpKind,
        submitted_at: SimInstant,
        issued_at: SimInstant,
        completion: OpCompletion,
        status: CommandStatus,
    ) -> CommandId {
        self.next_id += 1;
        let id = CommandId(self.next_id);
        let q = &mut self.dies[die].inflight;
        // Entries the gated issue time has passed retire now (admit left them
        // in place so a failed submission could not evict them).
        while let Some(&(front, _)) = q.front() {
            if front <= issued_at {
                q.pop_front();
            } else {
                break;
            }
        }
        // Keep the window ordered by completion time (same-die commands
        // complete in issue order under the occupancy model, but be robust).
        let pos = q
            .iter()
            .rposition(|&(c, _)| c <= completion.completed_at)
            .map(|p| p + 1)
            .unwrap_or(0);
        q.insert(pos, (completion.completed_at, kind));
        self.peak_inflight = self.peak_inflight.max(q.len());
        self.completed.push((
            die,
            QueuedCompletion {
                id,
                kind,
                submitted_at,
                issued_at,
                completion,
                status,
            },
        ));
        id
    }

    /// The die failed at `now`: every unpolled completion on `die` whose
    /// completion still lies in the virtual future is rewritten to
    /// [`CommandStatus::DieFailed`] (those commands were in flight and are
    /// lost — the poll stream reports them as errors, like a real driver
    /// reading error completions after a die drop), and the die's in-flight
    /// window is cleared — nothing occupies a dead die.  Returns the number
    /// of in-flight commands that were failed.
    pub fn fail_die(&mut self, die: usize, now: SimInstant, addr: DieAddr) -> usize {
        let mut failed = 0;
        for (d, c) in &mut self.completed {
            if *d == die && c.completion.completed_at > now && c.status.is_ok() {
                c.status = CommandStatus::DieFailed(addr);
                failed += 1;
            }
        }
        self.dies[die].inflight.clear();
        failed
    }

    /// Drain every completion recorded since the last poll, in submit order.
    pub fn poll(&mut self) -> Vec<QueuedCompletion> {
        std::mem::take(&mut self.completed)
            .into_iter()
            .map(|(_, c)| c)
            .collect()
    }

    /// Completions not yet polled.
    pub fn pending_polls(&self) -> usize {
        self.completed.len()
    }

    /// Barrier: the instant by which every in-flight command has completed
    /// (at least `now`).  Clears the in-flight windows.
    pub fn drain(&mut self, now: SimInstant) -> SimInstant {
        let mut t = now;
        for die in &mut self.dies {
            for &(c, _) in &die.inflight {
                t = t.max(c);
            }
            die.inflight.clear();
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn completion(start: SimInstant, end: SimInstant) -> OpCompletion {
        OpCompletion {
            started_at: start,
            completed_at: end,
        }
    }

    #[test]
    fn depth_one_gates_behind_every_predecessor() {
        let mut q = CommandQueues::new(1, 1);
        let (i1, g1) = q.admit(0, 0);
        assert_eq!((i1, g1), (0, false));
        q.record(0, OpKind::Program, 0, i1, completion(0, 500));
        // Second submission at t=0 must wait for the first to retire.
        let (i2, g2) = q.admit(0, 0);
        assert_eq!((i2, g2), (500, true));
        q.record(0, OpKind::Program, 0, i2, completion(500, 900));
        // A submission after everything completed is immediate.
        let (i3, g3) = q.admit(0, 1000);
        assert_eq!((i3, g3), (1000, false));
    }

    #[test]
    fn deeper_queues_admit_without_gating() {
        let mut q = CommandQueues::new(1, 4);
        for k in 0..4 {
            let (i, gated) = q.admit(0, 0);
            assert_eq!(i, 0);
            assert!(!gated, "submission {k} fits the depth-4 window");
            q.record(0, OpKind::Program, 0, i, completion(0, 1000 + k));
        }
        let (i5, gated) = q.admit(0, 0);
        assert!(gated);
        assert_eq!(i5, 1000, "gated behind the oldest in-flight completion");
        assert_eq!(q.peak_inflight(), 4);
    }

    #[test]
    fn dies_are_independent() {
        let mut q = CommandQueues::new(2, 1);
        let (i, _) = q.admit(0, 0);
        q.record(0, OpKind::Program, 0, i, completion(0, 800));
        // Die 1 is idle: no gating despite die 0 being full.
        let (i1, gated) = q.admit(1, 0);
        assert_eq!((i1, gated), (0, false));
        assert_eq!(q.inflight_on(0, 100), 1);
        assert_eq!(q.inflight_on(1, 100), 0);
    }

    #[test]
    fn poll_drains_in_submit_order_and_drain_barriers() {
        let mut q = CommandQueues::new(2, 4);
        let (i, _) = q.admit(0, 0);
        let a = q.record(0, OpKind::Program, 0, i, completion(0, 700));
        let (i, _) = q.admit(1, 0);
        let b = q.record(1, OpKind::Erase, 0, i, completion(0, 300));
        assert_eq!(q.pending_polls(), 2);
        let polled = q.poll();
        assert_eq!(polled.len(), 2);
        assert_eq!(polled[0].id, a);
        assert_eq!(polled[1].id, b);
        assert!(q.poll().is_empty());
        assert_eq!(q.drain(100), 700, "barrier waits for the slowest die");
        assert_eq!(q.drain(100), 100, "drained queues are empty");
    }

    #[test]
    fn admit_without_record_leaves_the_window_intact() {
        // A submission that is admitted but never recorded (it failed
        // validation) must not evict commands still in flight.
        let mut q = CommandQueues::new(1, 1);
        let (i, _) = q.admit(0, 0);
        q.record(0, OpKind::Program, 0, i, completion(0, 900));
        let (gated_issue, gated) = q.admit(0, 0);
        assert_eq!((gated_issue, gated), (900, true));
        // No record() call — the failed command never issued.
        assert_eq!(q.inflight_on(0, 0), 1, "in-flight command must survive");
        assert_eq!(q.drain(0), 900, "barrier still covers the live command");
    }

    #[test]
    fn failed_commands_carry_status_and_hold_their_slot() {
        use crate::addr::Ppa;
        let mut q = CommandQueues::new(1, 1);
        let (i, _) = q.admit(0, 0);
        let ppa = Ppa::new(0, 0, 0, 0, 0);
        q.record_with_status(
            0,
            OpKind::Program,
            0,
            i,
            completion(0, 600),
            CommandStatus::ProgramFailed(ppa),
        );
        // The failed program still occupies the die queue until t=600.
        let (i2, gated) = q.admit(0, 0);
        assert_eq!((i2, gated), (600, true));
        let polled = q.poll();
        assert_eq!(polled.len(), 1);
        assert!(!polled[0].status.is_ok());
        assert_eq!(
            polled[0].result(),
            Err(FlashError::ProgramFailed(ppa)),
            "the poll stream must reconstruct the device error"
        );
    }

    #[test]
    fn ok_completions_report_success() {
        let mut q = CommandQueues::new(1, 2);
        let (i, _) = q.admit(0, 0);
        q.record(0, OpKind::Erase, 0, i, completion(0, 100));
        let polled = q.poll();
        assert_eq!(polled[0].status, CommandStatus::Ok);
        assert_eq!(polled[0].result(), Ok(()));
    }

    #[test]
    fn occupancy_counts_totals_and_reads_per_instant() {
        let mut q = CommandQueues::new(2, 4);
        let (i, _) = q.admit(0, 0);
        q.record(0, OpKind::Read, 0, i, completion(0, 400));
        let (i, _) = q.admit(0, 0);
        q.record(0, OpKind::Program, 0, i, completion(0, 900));
        let (i, _) = q.admit(1, 0);
        q.record(1, OpKind::Read, 0, i, completion(0, 600));
        assert_eq!(q.inflight_total(100), 3);
        assert_eq!(q.inflight_reads(100), 2);
        // At t=500 the die-0 read has retired; the die-1 read is still hot.
        assert_eq!(q.inflight_total(500), 2);
        assert_eq!(q.inflight_reads(500), 1);
        // Past every completion the queues are cold.
        assert_eq!(q.inflight_total(1000), 0);
        assert_eq!(q.inflight_reads(1000), 0);
    }

    #[test]
    fn fail_die_rewrites_inflight_completions_and_clears_the_window() {
        let mut q = CommandQueues::new(2, 4);
        let (i, _) = q.admit(0, 0);
        q.record(0, OpKind::Program, 0, i, completion(0, 900));
        let (i, _) = q.admit(0, 0);
        q.record(0, OpKind::Read, 0, i, completion(0, 400));
        let (i, _) = q.admit(1, 0);
        q.record(1, OpKind::Read, 0, i, completion(0, 600));
        // At t=500 the die-0 read has already completed: only the program is
        // still in flight and gets failed; the other die is untouched.
        let addr = DieAddr::new(0, 0);
        assert_eq!(q.fail_die(0, 500, addr), 1);
        assert_eq!(q.inflight_on(0, 500), 0, "a dead die holds nothing in flight");
        assert_eq!(q.inflight_on(1, 500), 1, "other dies keep their windows");
        let polled = q.poll();
        let failed: Vec<_> = polled
            .iter()
            .filter(|c| c.status == CommandStatus::DieFailed(addr))
            .collect();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].kind, OpKind::Program);
        assert_eq!(failed[0].result(), Err(FlashError::DieFailed(addr)));
    }

    #[test]
    fn retired_commands_free_slots() {
        let mut q = CommandQueues::new(1, 2);
        for end in [100u64, 200] {
            let (i, _) = q.admit(0, 0);
            q.record(0, OpKind::Program, 0, i, completion(0, end));
        }
        // At t=150 the first command has retired: no gating.
        let (i, gated) = q.admit(0, 150);
        assert_eq!((i, gated), (150, false));
    }
}
