//! Deterministic fault injection: seeded failure models for program, erase
//! and read commands.
//!
//! A [`FaultPlan`] gives a [`crate::NandDevice`] the ugly half of real NAND
//! behaviour — the part an FTL (or, in the NoFTL architecture, the DBMS)
//! exists to hide from everyone above it:
//!
//! * **Program failures** — a PAGE PROGRAM reports failure with a probability
//!   that grows with the block's P/E wear.  The attempted page is *consumed*
//!   (real NAND does not let you retry the same page without an erase); the
//!   block should be retired by the management layer, after relocating any
//!   still-valid pages, which remain readable.
//! * **Erase failures** — past a soft endurance knee (a fraction of the
//!   nominal P/E endurance) a BLOCK ERASE may fail, marking the block
//!   grown-bad.  This complements the hard [`crate::FlashError::WornOut`]
//!   model that fires past the nominal endurance.
//! * **Read errors** — every PAGE READ draws against a raw-bit-error rate
//!   that grows with the block's P/E cycles, the retention age of its data
//!   and a per-block read-disturb counter.  A correctable error is absorbed
//!   by the modelled ECC engine (counted, data intact); an uncorrectable one
//!   surfaces as [`crate::FlashError::UncorrectableEcc`] and each retry draws
//!   independently — the read-retry ladder of a real controller.
//! * **Die and channel failures** — a [`KillSpec`] declares that a die (or
//!   every die on a channel) goes *permanently* dead once the device has
//!   executed a given number of array commands.  Unlike the probabilistic
//!   models above this class is deterministic by construction: the kill
//!   fires at a fixed command index, not from an RNG draw, so a test can
//!   place the failure exactly between two known operations.  When it fires,
//!   commands still in flight on the die's queue complete with
//!   [`crate::queue::CommandStatus::DieFailed`] (a real driver learns about
//!   a dropped die from error completions), and every later command
//!   addressed to the die is rejected up front with
//!   [`crate::FlashError::DieFailed`].  Data on the die is gone as far as
//!   the device is concerned — surviving it is the host's job (the
//!   NoFTL-side redundancy policies).
//!
//! The plan carries its **own** seeded [`SimRng`], so enabling it never
//! perturbs the device's existing wear-out draw sequence: with the plan off
//! the device is bit- and cycle-identical to a build without this module.
//!
//! ## The `NOFTL_FAULTS` knob
//!
//! [`parse_fault_plan`] parses one `NOFTL_FAULTS` spelling in the house knob
//! style: empty/`off`/`false`/`0` disable injection (the default —
//! fault-free operation is the equivalence baseline), `on`/`true` enable the
//! default plan with the default seed, and any other integer enables the
//! default plan seeded with that value.  Unrecognised spellings disable
//! injection (failing *safe* for a fault knob).  The environment **read**
//! itself lives with every other knob in `storage_engine::backend`
//! (`fault_plan_from_env` there); this module deliberately never touches the
//! environment, so a device's fault behaviour is a pure function of its
//! [`crate::DeviceConfig`].

use serde::{Deserialize, Serialize};
use sim_utils::rng::SimRng;
use sim_utils::time::SimInstant;

/// Seed used by `NOFTL_FAULTS=on` when no explicit seed is given.
pub const DEFAULT_FAULT_SEED: u64 = 0xFA17_5EED;

/// Outcome of the read-error model for one page-read attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadFaultOutcome {
    /// No bit errors beyond the ECC noise floor.
    Clean,
    /// Bit errors occurred but the ECC engine corrected them; the host sees
    /// intact data (the event is still counted — scrubbers watch this).
    Corrected,
    /// Bit errors exceeded the ECC correction budget; the read fails.
    Uncorrectable,
}

/// What a [`KillSpec`] takes down: one die or a whole channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KillTarget {
    /// One die, addressed by its flat index
    /// (`channel * dies_per_channel + die`, see
    /// [`crate::addr::DieAddr::flat`]).
    Die(u32),
    /// Every die on the given channel (a channel controller failure).
    Channel(u32),
}

/// A deterministic die/channel failure: the target goes permanently dead
/// once the device has executed `at_command` array commands (reads,
/// programs, erases, copybacks — queued or synchronous).  The count is a
/// property of the command *sequence*, not of the virtual clock, so the same
/// workload always dies at the same operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KillSpec {
    /// Array-command index at which the failure fires (the command with this
    /// index is the first one affected).
    pub at_command: u64,
    /// The die or channel that fails.
    pub target: KillTarget,
}

/// A seeded, deterministic fault-injection plan.
///
/// All probabilities are per-command draws from the plan's private RNG; the
/// same seed against the same command sequence reproduces the same faults.
/// Fields are public so tests can dial individual failure modes up or down;
/// [`FaultPlan::seeded`] gives the default mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed this plan was built from (for diagnostics / reproduction).
    pub seed: u64,
    /// Base probability that a PAGE PROGRAM fails on a fresh block.
    pub program_fail_base: f64,
    /// Wear scaling of program failures: the fail probability is
    /// `program_fail_base * (1 + program_fail_wear_scale * wear_fraction)`
    /// where `wear_fraction = erase_count / endurance`.
    pub program_fail_wear_scale: f64,
    /// Fraction of the nominal endurance past which erase failures become
    /// possible (the soft knee).
    pub erase_fail_knee: f64,
    /// Erase-failure probability at the nominal endurance; ramps linearly
    /// from zero at the knee.
    pub erase_fail_prob: f64,
    /// Base probability that a PAGE READ sees bit errors at all.
    pub read_error_base: f64,
    /// Wear scaling of the raw bit-error rate (per wear fraction).
    pub read_error_wear_scale: f64,
    /// Retention scaling of the raw bit-error rate, per virtual second the
    /// block's data has been sitting since its last program.
    pub read_error_retention_scale: f64,
    /// Read-disturb scaling of the raw bit-error rate, per read of the block
    /// since its last erase.
    pub read_error_disturb_scale: f64,
    /// Of the reads that see bit errors, the fraction the modelled ECC engine
    /// cannot correct.
    pub uncorrectable_fraction: f64,
    /// Deterministic die/channel failures (empty by default — the
    /// probabilistic models alone never take a die down).
    pub kills: Vec<KillSpec>,
    rng: SimRng,
}

impl FaultPlan {
    /// Default fault mix for `seed`: failures are rare on fresh blocks and
    /// climb with wear, retention age and read disturb.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            program_fail_base: 5e-4,
            program_fail_wear_scale: 8.0,
            erase_fail_knee: 0.8,
            erase_fail_prob: 0.02,
            read_error_base: 1e-4,
            read_error_wear_scale: 4.0,
            read_error_retention_scale: 1e-3,
            read_error_disturb_scale: 1e-5,
            uncorrectable_fraction: 0.2,
            kills: Vec::new(),
            rng: SimRng::new(seed),
        }
    }

    /// Add a deterministic die failure at array-command index `at_command`
    /// (`die_flat` is the die's flat index; builder style, chainable).
    pub fn with_die_kill(mut self, at_command: u64, die_flat: u32) -> Self {
        self.kills.push(KillSpec {
            at_command,
            target: KillTarget::Die(die_flat),
        });
        self
    }

    /// Add a deterministic channel failure (every die on `channel` dies) at
    /// array-command index `at_command`.
    pub fn with_channel_kill(mut self, at_command: u64, channel: u32) -> Self {
        self.kills.push(KillSpec {
            at_command,
            target: KillTarget::Channel(channel),
        });
        self
    }

    fn wear_fraction(erase_count: u64, endurance: u64) -> f64 {
        if endurance == 0 {
            return 1.0;
        }
        (erase_count as f64 / endurance as f64).min(1.0)
    }

    /// Draw the program-failure model for a PAGE PROGRAM into a block with
    /// `erase_count` P/E cycles out of `endurance`.
    pub fn program_fails(&mut self, erase_count: u64, endurance: u64) -> bool {
        let wear = Self::wear_fraction(erase_count, endurance);
        let p = (self.program_fail_base * (1.0 + self.program_fail_wear_scale * wear)).min(1.0);
        self.rng.bool_with_prob(p)
    }

    /// Draw the erase-failure model for a BLOCK ERASE that would be the
    /// block's `erase_count`-th cycle.  Below the soft knee no draw is made
    /// (erase failures are a wear phenomenon).
    pub fn erase_fails(&mut self, erase_count: u64, endurance: u64) -> bool {
        let wear = Self::wear_fraction(erase_count, endurance);
        if wear < self.erase_fail_knee {
            return false;
        }
        let span = (1.0 - self.erase_fail_knee).max(f64::EPSILON);
        let ramp = ((wear - self.erase_fail_knee) / span).clamp(0.0, 1.0);
        self.rng.bool_with_prob((self.erase_fail_prob * ramp).min(1.0))
    }

    /// Draw the read-error model for one PAGE READ attempt.
    ///
    /// `retention_ns` is the virtual time since the block was last
    /// programmed; `read_disturb` is the number of reads the block has served
    /// since its last erase.  Each retry of a failed read draws again — the
    /// read-retry ladder of a real ECC pipeline.
    pub fn read_outcome(
        &mut self,
        erase_count: u64,
        endurance: u64,
        retention_ns: SimInstant,
        read_disturb: u64,
    ) -> ReadFaultOutcome {
        let wear = Self::wear_fraction(erase_count, endurance);
        let retention_secs = retention_ns as f64 * 1e-9;
        let stress = 1.0
            + self.read_error_wear_scale * wear
            + self.read_error_retention_scale * retention_secs
            + self.read_error_disturb_scale * read_disturb as f64;
        let p = (self.read_error_base * stress).min(1.0);
        if !self.rng.bool_with_prob(p) {
            ReadFaultOutcome::Clean
        } else if self.rng.bool_with_prob(self.uncorrectable_fraction) {
            ReadFaultOutcome::Uncorrectable
        } else {
            ReadFaultOutcome::Corrected
        }
    }
}

/// Parse a `NOFTL_FAULTS` knob value.
///
/// * `""`, `"off"`, `"false"`, `"0"`, `"no"` → `None` (injection disabled;
///   the default and the equivalence baseline);
/// * `"on"`, `"true"`, `"yes"` → the default plan seeded with
///   [`DEFAULT_FAULT_SEED`];
/// * any other integer → the default plan seeded with that value;
/// * anything else → `None` (a fault knob fails safe).
pub fn parse_fault_plan(raw: &str) -> Option<FaultPlan> {
    let v = raw.trim().to_ascii_lowercase();
    match v.as_str() {
        "" | "off" | "false" | "0" | "no" => None,
        "on" | "true" | "yes" => Some(FaultPlan::seeded(DEFAULT_FAULT_SEED)),
        other => other.parse::<u64>().ok().map(FaultPlan::seeded),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knob_parses_all_spellings() {
        assert!(parse_fault_plan("").is_none());
        assert!(parse_fault_plan("off").is_none());
        assert!(parse_fault_plan("OFF").is_none());
        assert!(parse_fault_plan("false").is_none());
        assert!(parse_fault_plan("0").is_none());
        assert!(parse_fault_plan("no").is_none());
        assert!(parse_fault_plan("certainly not a number").is_none());
        assert_eq!(
            parse_fault_plan("on").map(|p| p.seed),
            Some(DEFAULT_FAULT_SEED)
        );
        assert_eq!(
            parse_fault_plan("true").map(|p| p.seed),
            Some(DEFAULT_FAULT_SEED)
        );
        assert_eq!(parse_fault_plan("12345").map(|p| p.seed), Some(12345));
        assert_eq!(parse_fault_plan("  7 ").map(|p| p.seed), Some(7));
    }

    #[test]
    fn same_seed_reproduces_the_same_draw_sequence() {
        let mut a = FaultPlan::seeded(42);
        let mut b = FaultPlan::seeded(42);
        for k in 0..2000u64 {
            assert_eq!(
                a.program_fails(k % 150, 100),
                b.program_fails(k % 150, 100)
            );
            assert_eq!(a.erase_fails(90 + k % 30, 100), b.erase_fails(90 + k % 30, 100));
            assert_eq!(
                a.read_outcome(k % 120, 100, k * 1_000_000, k % 5000),
                b.read_outcome(k % 120, 100, k * 1_000_000, k % 5000)
            );
        }
    }

    #[test]
    fn wear_raises_every_failure_mode() {
        // Statistically: a heavily worn block must fail more often than a
        // fresh one over many draws with the same parameters.
        let mut plan = FaultPlan::seeded(7);
        plan.program_fail_base = 0.01;
        let fresh = (0..20_000)
            .filter(|_| plan.program_fails(0, 100))
            .count();
        let worn = (0..20_000)
            .filter(|_| plan.program_fails(100, 100))
            .count();
        assert!(worn > fresh * 2, "wear must raise program failures: {fresh} vs {worn}");
    }

    #[test]
    fn erase_failures_only_past_the_knee() {
        let mut plan = FaultPlan::seeded(9);
        plan.erase_fail_prob = 1.0;
        for cycles in 0..79 {
            assert!(!plan.erase_fails(cycles, 100), "below the knee no erase fails");
        }
        let failures = (0..1000).filter(|_| plan.erase_fails(100, 100)).count();
        assert!(failures > 800, "at the endurance the full ramp applies");
    }

    #[test]
    fn read_disturb_and_retention_raise_error_rates() {
        let mut plan = FaultPlan::seeded(11);
        plan.read_error_base = 1e-3;
        plan.read_error_disturb_scale = 1e-2;
        let quiet = (0..20_000)
            .filter(|_| plan.read_outcome(0, 100, 0, 0) != ReadFaultOutcome::Clean)
            .count();
        let disturbed = (0..20_000)
            .filter(|_| plan.read_outcome(0, 100, 0, 10_000) != ReadFaultOutcome::Clean)
            .count();
        assert!(
            disturbed > quiet * 5,
            "read disturb must raise the error rate: {quiet} vs {disturbed}"
        );
    }

    #[test]
    fn uncorrectable_fraction_splits_outcomes() {
        let mut plan = FaultPlan::seeded(13);
        plan.read_error_base = 1.0; // every read sees bit errors
        plan.read_error_wear_scale = 0.0;
        plan.uncorrectable_fraction = 0.5;
        let mut corrected = 0;
        let mut uncorrectable = 0;
        for _ in 0..10_000 {
            match plan.read_outcome(0, 100, 0, 0) {
                ReadFaultOutcome::Corrected => corrected += 1,
                ReadFaultOutcome::Uncorrectable => uncorrectable += 1,
                ReadFaultOutcome::Clean => panic!("base rate 1.0 cannot be clean"),
            }
        }
        assert!(corrected > 4000 && uncorrectable > 4000);
    }
}
