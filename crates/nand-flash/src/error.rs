//! Error type of the native Flash interface.

use crate::addr::{BlockAddr, DieAddr, Ppa};

/// Result alias used throughout the Flash layers.
pub type FlashResult<T> = Result<T, FlashError>;

/// Errors surfaced by the NAND device model.
///
/// Most of these correspond to *protocol violations* a real NAND chip would
/// either reject or silently corrupt data on — the simulator turns them into
/// hard errors so FTL/NoFTL bugs are caught immediately.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlashError {
    /// Address lies outside the device geometry.
    InvalidAddress {
        /// Human-readable description of the offending address.
        what: String,
    },
    /// Attempt to program a page that has already been programmed since the
    /// last erase of its block.
    ProgramOnDirtyPage(Ppa),
    /// Attempt to program pages of a block out of order (NAND requires
    /// sequential page programming within an erase block).
    NonSequentialProgram {
        /// The page that was attempted.
        attempted: Ppa,
        /// The next page index the block expects.
        expected_page: u32,
    },
    /// Attempt to read a page that has never been programmed (or was erased).
    ReadOfUnwrittenPage(Ppa),
    /// Operation addressed to a factory or grown bad block.
    BadBlock(BlockAddr),
    /// The block exceeded its program/erase endurance and failed.
    WornOut(BlockAddr),
    /// Copyback source and destination must be on the same plane.
    CopybackPlaneMismatch {
        /// Source physical page.
        src: Ppa,
        /// Destination physical page.
        dst: Ppa,
    },
    /// Data buffer length does not match the page size.
    BufferSizeMismatch {
        /// Expected number of bytes (the page size).
        expected: usize,
        /// Buffer length that was supplied.
        actual: usize,
    },
    /// An uncorrectable bit error was injected on read (ECC failure).
    UncorrectableEcc(Ppa),
    /// A PAGE PROGRAM reported failure (injected by the fault plan).  The
    /// attempted page is consumed; the block should be retired after its
    /// still-valid pages are relocated.
    ProgramFailed(Ppa),
    /// A BLOCK ERASE reported failure (injected by the fault plan); the
    /// block is marked grown-bad.
    EraseFailed(BlockAddr),
    /// The die (or its whole channel) failed permanently — injected by a
    /// deterministic [`crate::fault::KillSpec`].  Every subsequent command
    /// addressed to the die is rejected with this error; in-flight queued
    /// commands complete with [`crate::queue::CommandStatus::DieFailed`].
    /// Data on the die is unrecoverable from the device itself; only
    /// host-side redundancy (mirroring, parity stripes) can reconstruct it.
    DieFailed(DieAddr),
    /// The device ran out of spare blocks to remap grown bad blocks.
    OutOfSpareBlocks,
    /// The stack reported transient overload (a BUSY status): the request was
    /// deliberately shed by admission control rather than queued without
    /// bound.  Retrying later — after in-flight work drains — is expected to
    /// succeed; no data was lost or corrupted.
    Busy,
}

impl std::fmt::Display for FlashError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlashError::InvalidAddress { what } => write!(f, "invalid flash address: {what}"),
            FlashError::ProgramOnDirtyPage(ppa) => {
                write!(f, "program on already-programmed page {ppa:?}")
            }
            FlashError::NonSequentialProgram {
                attempted,
                expected_page,
            } => write!(
                f,
                "non-sequential program: attempted {attempted:?}, block expects page {expected_page}"
            ),
            FlashError::ReadOfUnwrittenPage(ppa) => {
                write!(f, "read of unwritten page {ppa:?}")
            }
            FlashError::BadBlock(b) => write!(f, "operation on bad block {b:?}"),
            FlashError::WornOut(b) => write!(f, "block {b:?} exceeded its P/E endurance"),
            FlashError::CopybackPlaneMismatch { src, dst } => {
                write!(f, "copyback plane mismatch: {src:?} -> {dst:?}")
            }
            FlashError::BufferSizeMismatch { expected, actual } => {
                write!(f, "buffer size mismatch: expected {expected}, got {actual}")
            }
            FlashError::UncorrectableEcc(ppa) => {
                write!(f, "uncorrectable ECC error reading {ppa:?}")
            }
            FlashError::ProgramFailed(ppa) => {
                write!(f, "program failure on page {ppa:?} (page consumed, retire the block)")
            }
            FlashError::EraseFailed(b) => {
                write!(f, "erase failure on block {b:?} (block marked grown-bad)")
            }
            FlashError::DieFailed(d) => {
                write!(f, "die {d:?} failed permanently (commands rejected)")
            }
            FlashError::OutOfSpareBlocks => write!(f, "device out of spare blocks"),
            FlashError::Busy => write!(f, "stack overloaded (request shed; retry later)"),
        }
    }
}

impl std::error::Error for FlashError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Ppa;

    #[test]
    fn errors_format_usefully() {
        let e = FlashError::ProgramOnDirtyPage(Ppa::new(0, 1, 0, 2, 3));
        let s = e.to_string();
        assert!(s.contains("already-programmed"));

        let e = FlashError::BufferSizeMismatch {
            expected: 4096,
            actual: 512,
        };
        assert!(e.to_string().contains("4096"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&FlashError::OutOfSpareBlocks);
    }
}
