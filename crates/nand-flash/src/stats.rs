//! Command counters and latency statistics of the NAND device.
//!
//! Figure 3 of the paper is a table of absolute and relative COPYBACK / ERASE
//! counts; these counters are the source of those numbers.

use serde::{Deserialize, Serialize};
use sim_utils::histogram::Histogram;

/// Per-command counters plus latency histograms.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FlashStats {
    /// Number of PAGE READ commands.
    pub reads: u64,
    /// Number of PAGE PROGRAM commands.
    pub programs: u64,
    /// Number of BLOCK ERASE commands.
    pub erases: u64,
    /// Number of COPYBACK PROGRAM commands.
    pub copybacks: u64,
    /// Number of multi-page program dispatches (one per batched run; the
    /// individual pages are also counted in [`FlashStats::programs`]).
    pub multi_page_dispatches: u64,
    /// Pages programmed through multi-page dispatches.
    pub batched_pages: u64,
    /// Number of multi-page read dispatches (one per batched run; the
    /// individual pages are also counted in [`FlashStats::reads`]).
    pub multi_page_read_dispatches: u64,
    /// Pages read through multi-page dispatches.
    pub batched_read_pages: u64,
    /// Commands submitted through the queued (submit/poll) interface.
    pub queued_submissions: u64,
    /// Queued submissions whose issue was gated behind a full die queue.
    pub queue_gated_submissions: u64,
    /// Read commands submitted through the queued (submit/poll) interface
    /// (a subset of [`FlashStats::queued_submissions`]).
    pub queued_reads: u64,
    /// Queued read submissions whose issue was gated behind a full die queue
    /// — the read stalls a host sees when point reads queue behind in-flight
    /// program/erase traffic.
    pub read_stalls: u64,
    /// PAGE PROGRAM (or copyback) commands that reported failure (fault
    /// injection; the attempted page is consumed).
    pub program_failures: u64,
    /// BLOCK ERASE commands that reported failure (fault injection; the
    /// block is marked grown-bad).
    pub erase_failures: u64,
    /// PAGE READ commands whose bit errors the modelled ECC engine corrected
    /// (data intact; scrubbers watch this).
    pub corrected_reads: u64,
    /// PAGE READ commands whose bit errors exceeded the ECC correction
    /// budget (each retry of the read-retry ladder counts separately).
    pub uncorrectable_reads: u64,
    /// Dies that failed permanently (deterministic die/channel kills; a
    /// channel kill counts every die it takes down).
    pub die_failures: u64,
    /// Commands rejected up front because they addressed a dead die.
    pub dead_die_rejections: u64,
    /// Queued commands that were in flight when their die failed and
    /// completed with [`crate::queue::CommandStatus::DieFailed`].
    pub inflight_die_failures: u64,
    /// Bytes transferred from the device to the host.
    pub bytes_read: u64,
    /// Bytes transferred from the host to the device.
    pub bytes_written: u64,
    /// Latency histogram of read commands (ns).
    pub read_latency: Histogram,
    /// Latency histogram of program commands (ns).
    pub program_latency: Histogram,
    /// Latency histogram of erase commands (ns).
    pub erase_latency: Histogram,
    /// Latency histogram of copyback commands (ns).
    pub copyback_latency: Histogram,
    /// Per-die array-operation counts (index = flat die index).
    pub per_die_ops: Vec<u64>,
    /// Per-die read-command counts (index = flat die index) — the read
    /// occupancy view of [`FlashStats::per_die_ops`], so asynchronous read
    /// traffic is observable per parallel unit like program/erase traffic.
    pub per_die_reads: Vec<u64>,
}

impl FlashStats {
    /// Create zeroed statistics for a device with `dies` dies.
    pub fn new(dies: usize) -> Self {
        Self {
            per_die_ops: vec![0; dies],
            per_die_reads: vec![0; dies],
            ..Default::default()
        }
    }

    /// Total number of native Flash commands issued.
    pub fn total_ops(&self) -> u64 {
        self.reads + self.programs + self.erases + self.copybacks
    }

    /// Total page-program operations including copybacks (each copyback
    /// programs one page internally) — the write-wear measure.
    pub fn total_page_writes(&self) -> u64 {
        self.programs + self.copybacks
    }

    /// Reset all counters and histograms.
    pub fn clear(&mut self) {
        let dies = self.per_die_ops.len();
        *self = FlashStats::new(dies);
    }

    /// Merge counters from another stats object (histograms included).
    pub fn merge(&mut self, other: &FlashStats) {
        self.reads += other.reads;
        self.programs += other.programs;
        self.erases += other.erases;
        self.copybacks += other.copybacks;
        self.multi_page_dispatches += other.multi_page_dispatches;
        self.batched_pages += other.batched_pages;
        self.multi_page_read_dispatches += other.multi_page_read_dispatches;
        self.batched_read_pages += other.batched_read_pages;
        self.queued_submissions += other.queued_submissions;
        self.queue_gated_submissions += other.queue_gated_submissions;
        self.queued_reads += other.queued_reads;
        self.read_stalls += other.read_stalls;
        self.program_failures += other.program_failures;
        self.erase_failures += other.erase_failures;
        self.corrected_reads += other.corrected_reads;
        self.uncorrectable_reads += other.uncorrectable_reads;
        self.die_failures += other.die_failures;
        self.dead_die_rejections += other.dead_die_rejections;
        self.inflight_die_failures += other.inflight_die_failures;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.read_latency.merge(&other.read_latency);
        self.program_latency.merge(&other.program_latency);
        self.erase_latency.merge(&other.erase_latency);
        self.copyback_latency.merge(&other.copyback_latency);
        if self.per_die_ops.len() < other.per_die_ops.len() {
            self.per_die_ops.resize(other.per_die_ops.len(), 0);
        }
        for (a, b) in self.per_die_ops.iter_mut().zip(other.per_die_ops.iter()) {
            *a += *b;
        }
        if self.per_die_reads.len() < other.per_die_reads.len() {
            self.per_die_reads.resize(other.per_die_reads.len(), 0);
        }
        for (a, b) in self.per_die_reads.iter_mut().zip(other.per_die_reads.iter()) {
            *a += *b;
        }
    }

    /// Coefficient of variation of per-die operation counts — a quick measure
    /// of how evenly work spreads over the Flash parallel units.
    pub fn die_balance_cv(&self) -> f64 {
        let n = self.per_die_ops.len();
        if n == 0 {
            return 0.0;
        }
        let mean = self.per_die_ops.iter().sum::<u64>() as f64 / n as f64;
        if mean == 0.0 {
            return 0.0;
        }
        let var = self
            .per_die_ops
            .iter()
            .map(|&x| {
                let d = x as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n as f64;
        var.sqrt() / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let mut s = FlashStats::new(2);
        s.reads = 10;
        s.programs = 5;
        s.erases = 2;
        s.copybacks = 3;
        assert_eq!(s.total_ops(), 20);
        assert_eq!(s.total_page_writes(), 8);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = FlashStats::new(2);
        a.reads = 1;
        a.per_die_ops[0] = 4;
        let mut b = FlashStats::new(2);
        b.reads = 2;
        b.erases = 7;
        b.per_die_ops[1] = 6;
        a.merge(&b);
        assert_eq!(a.reads, 3);
        assert_eq!(a.erases, 7);
        assert_eq!(a.per_die_ops, vec![4, 6]);
    }

    #[test]
    fn merge_accumulates_die_failure_counters() {
        let mut a = FlashStats::new(2);
        a.die_failures = 1;
        a.dead_die_rejections = 3;
        let mut b = FlashStats::new(2);
        b.die_failures = 2;
        b.inflight_die_failures = 5;
        a.merge(&b);
        assert_eq!(a.die_failures, 3);
        assert_eq!(a.dead_die_rejections, 3);
        assert_eq!(a.inflight_die_failures, 5);
    }

    #[test]
    fn clear_zeroes_everything() {
        let mut s = FlashStats::new(3);
        s.programs = 9;
        s.per_die_ops[2] = 5;
        s.program_latency.record(100);
        s.clear();
        assert_eq!(s.programs, 0);
        assert_eq!(s.per_die_ops, vec![0, 0, 0]);
        assert_eq!(s.program_latency.count(), 0);
    }

    #[test]
    fn balance_cv_detects_imbalance() {
        let mut balanced = FlashStats::new(4);
        balanced.per_die_ops = vec![100, 100, 100, 100];
        let mut skewed = FlashStats::new(4);
        skewed.per_die_ops = vec![400, 0, 0, 0];
        assert!(balanced.die_balance_cv() < 0.01);
        assert!(skewed.die_balance_cv() > 1.0);
    }

    #[test]
    fn empty_cv_is_zero() {
        assert_eq!(FlashStats::new(0).die_balance_cv(), 0.0);
        assert_eq!(FlashStats::new(4).die_balance_cv(), 0.0);
    }
}
