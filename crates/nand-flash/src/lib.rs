//! # nand-flash
//!
//! A NAND Flash device model exposing the **native Flash interface** described
//! in the NoFTL paper (EDBT 2015, §3): `PAGE READ`, `PAGE PROGRAM`,
//! `COPYBACK PROGRAM`, `BLOCK ERASE`, page metadata (OOB) handling and an
//! `IDENTIFY` command that reports the internal architecture (channels, LUNs,
//! planes, blocks, pages, NAND type).
//!
//! The model plays the role of the raw NAND array on the OpenSSD board: it
//! enforces real NAND constraints (erase-before-program, sequential page
//! programming inside a block, whole-block erases, plane-local copyback),
//! tracks wear and grown bad blocks, and computes operation latencies from a
//! per-die / per-channel occupancy model so that Flash parallelism (the
//! subject of §3.2 of the paper) is observable.
//!
//! ## Completion-poll interface
//!
//! Beyond the blocking [`NativeFlashInterface`] calls, [`NandDevice`] exposes
//! a queued submission path ([`NandDevice::submit_program_pages`],
//! [`NandDevice::submit_erase`]) backed by bounded **per-die command queues**
//! ([`queue::CommandQueues`]).  A submission is admitted at the caller's
//! virtual `now`; when the target die's queue is full, its issue is gated
//! behind the oldest in-flight command — the behaviour of a real driver
//! spinning on a full hardware queue.  Completions accumulate until the host
//! drains them with [`NandDevice::poll_completions`] (or barriers with
//! [`NandDevice::drain_queues`]), so an issuer can keep several commands in
//! flight per die and overlap channel transfers on one die with cell programs
//! on any die behind the channel.  A queue depth of 1 reproduces the
//! synchronous dispatch exactly (the `NOFTL_ASYNC=1` equivalence leg).
//!
//! ## Fault model
//!
//! [`fault::FaultPlan`] is a seeded, deterministic model of the three ways
//! real NAND fails in the field, gated by the `NOFTL_FAULTS` environment
//! knob (off by default — when off, the device draws **zero** random numbers
//! from the plan and is bit- and cycle-identical to a fault-free build):
//!
//! - **Program failures** ([`FlashError::ProgramFailed`]): probability grows
//!   with block wear.  The attempted page is *consumed* (NAND cannot retry a
//!   page without an erase); still-valid pages of the block remain readable
//!   so the DBMS can relocate them before retiring the block.
//! - **Erase failures** ([`FlashError::EraseFailed`]): drawn only past a
//!   soft endurance knee; the block is marked grown-bad by the device.
//! - **Read bit errors**: the raw bit-error rate grows with P/E cycles,
//!   retention age and per-block read disturb.  Errors within the modelled
//!   ECC budget are counted as [`FlashStats::corrected_reads`] and the read
//!   succeeds; beyond it the read fails with [`FlashError::UncorrectableEcc`]
//!   (each retry draws independently, so a read-retry ladder can succeed).
//!
//! Failed queued commands still produce a [`QueuedCompletion`] carrying a
//! non-Ok [`CommandStatus`], so poll-driven issuers observe faults the same
//! way a real driver reads a status register.  Recovery (block retirement,
//! survivor relocation, read retries, scrubbing) is deliberately *not* done
//! here — it is the DBMS's job (`noftl-core`), per the NoFTL argument.
//!
//! The higher layers built on top of this crate are the `ftl` crate
//! (on-device FTL baselines behind a legacy block interface) and `noftl-core`
//! (the DBMS-integrated Flash management of the paper).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod addr;
pub mod bad_block;
pub mod block;
pub mod device;
pub mod die;
pub mod error;
pub mod fault;
pub mod geometry;
pub mod interface;
pub mod nand_type;
pub mod oob;
pub mod page;
pub mod queue;
pub mod stats;
pub mod timeline;
pub mod timing;
pub mod trace;

pub use addr::{BlockAddr, DieAddr, Ppa};
pub use device::{DeviceConfig, NandDevice};
pub use error::{FlashError, FlashResult};
pub use fault::{
    parse_fault_plan, FaultPlan, KillSpec, KillTarget, ReadFaultOutcome, DEFAULT_FAULT_SEED,
};
pub use geometry::FlashGeometry;
pub use interface::{DeviceIdentification, NativeFlashInterface, OpCompletion, OpKind};
pub use nand_type::{NandType, TimingProfile};
pub use oob::{Oob, PageKind};
pub use page::PageState;
pub use queue::{CommandId, CommandQueues, CommandStatus, QueuedCompletion};
pub use stats::FlashStats;
pub use trace::{TraceEntry, Tracer};
