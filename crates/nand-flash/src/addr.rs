//! Physical addresses on the NAND array.
//!
//! The native Flash interface addresses *physical* pages and blocks — unlike
//! the legacy block interface, which only exposes logical block numbers
//! (paper, Figure 1).  Three address types exist:
//!
//! * [`Ppa`] — physical page address (channel, die, plane, block, page),
//! * [`BlockAddr`] — physical erase-block address (no page component),
//! * [`DieAddr`] — a die (LUN) position, used by the region manager when
//!   assigning db-writers to physical regions.

use serde::{Deserialize, Serialize};

use crate::geometry::FlashGeometry;

/// Physical page address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Ppa {
    /// Channel index.
    pub channel: u32,
    /// Die (LUN) index within the channel.
    pub die: u32,
    /// Plane index within the die.
    pub plane: u32,
    /// Block index within the plane.
    pub block: u32,
    /// Page index within the block.
    pub page: u32,
}

impl Ppa {
    /// Construct a physical page address.
    pub fn new(channel: u32, die: u32, plane: u32, block: u32, page: u32) -> Self {
        Self {
            channel,
            die,
            plane,
            block,
            page,
        }
    }

    /// The erase block this page belongs to.
    pub fn block_addr(&self) -> BlockAddr {
        BlockAddr {
            channel: self.channel,
            die: self.die,
            plane: self.plane,
            block: self.block,
        }
    }

    /// The die this page lives on.
    pub fn die_addr(&self) -> DieAddr {
        DieAddr {
            channel: self.channel,
            die: self.die,
        }
    }

    /// Flatten to a device-wide page index in `[0, geometry.total_pages())`.
    pub fn flat(&self, g: &FlashGeometry) -> u64 {
        self.block_addr().flat(g) * g.pages_per_block as u64 + self.page as u64
    }

    /// Rebuild a [`Ppa`] from a flat page index.
    pub fn from_flat(g: &FlashGeometry, flat: u64) -> Self {
        let pages_per_block = g.pages_per_block as u64;
        let block_flat = flat / pages_per_block;
        let page = (flat % pages_per_block) as u32;
        let block = BlockAddr::from_flat(g, block_flat);
        Self {
            channel: block.channel,
            die: block.die,
            plane: block.plane,
            block: block.block,
            page,
        }
    }

    /// True if the address is inside the geometry.
    pub fn is_valid(&self, g: &FlashGeometry) -> bool {
        self.channel < g.channels
            && self.die < g.dies_per_channel
            && self.plane < g.planes_per_die
            && self.block < g.blocks_per_plane
            && self.page < g.pages_per_block
    }
}

/// Physical erase-block address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockAddr {
    /// Channel index.
    pub channel: u32,
    /// Die (LUN) index within the channel.
    pub die: u32,
    /// Plane index within the die.
    pub plane: u32,
    /// Block index within the plane.
    pub block: u32,
}

impl BlockAddr {
    /// Construct a block address.
    pub fn new(channel: u32, die: u32, plane: u32, block: u32) -> Self {
        Self {
            channel,
            die,
            plane,
            block,
        }
    }

    /// The die this block lives on.
    pub fn die_addr(&self) -> DieAddr {
        DieAddr {
            channel: self.channel,
            die: self.die,
        }
    }

    /// The address of page `page` inside this block.
    pub fn page(&self, page: u32) -> Ppa {
        Ppa {
            channel: self.channel,
            die: self.die,
            plane: self.plane,
            block: self.block,
            page,
        }
    }

    /// Flatten to a device-wide block index in `[0, geometry.total_blocks())`.
    pub fn flat(&self, g: &FlashGeometry) -> u64 {
        let die_index = self.die_addr().flat(g);
        let blocks_per_die = g.blocks_per_die() as u64;
        die_index * blocks_per_die + (self.plane * g.blocks_per_plane + self.block) as u64
    }

    /// Rebuild a [`BlockAddr`] from a flat block index.
    pub fn from_flat(g: &FlashGeometry, flat: u64) -> Self {
        let blocks_per_die = g.blocks_per_die() as u64;
        let die_index = flat / blocks_per_die;
        let within_die = (flat % blocks_per_die) as u32;
        let die = DieAddr::from_flat(g, die_index);
        Self {
            channel: die.channel,
            die: die.die,
            plane: within_die / g.blocks_per_plane,
            block: within_die % g.blocks_per_plane,
        }
    }

    /// True if the address is inside the geometry.
    pub fn is_valid(&self, g: &FlashGeometry) -> bool {
        self.channel < g.channels
            && self.die < g.dies_per_channel
            && self.plane < g.planes_per_die
            && self.block < g.blocks_per_plane
    }
}

/// A die (LUN) position: the unit of Flash parallelism and the building block
/// of NoFTL regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DieAddr {
    /// Channel index.
    pub channel: u32,
    /// Die (LUN) index within the channel.
    pub die: u32,
}

impl DieAddr {
    /// Construct a die address.
    pub fn new(channel: u32, die: u32) -> Self {
        Self { channel, die }
    }

    /// Flatten to a device-wide die index in `[0, geometry.total_dies())`.
    pub fn flat(&self, g: &FlashGeometry) -> u64 {
        self.channel as u64 * g.dies_per_channel as u64 + self.die as u64
    }

    /// Rebuild a [`DieAddr`] from a flat die index.
    pub fn from_flat(g: &FlashGeometry, flat: u64) -> Self {
        Self {
            channel: (flat / g.dies_per_channel as u64) as u32,
            die: (flat % g.dies_per_channel as u64) as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ppa_flat_roundtrip() {
        let g = FlashGeometry::small();
        for flat in 0..g.total_pages() {
            let ppa = Ppa::from_flat(&g, flat);
            assert!(ppa.is_valid(&g), "invalid ppa {ppa:?} from flat {flat}");
            assert_eq!(ppa.flat(&g), flat);
        }
    }

    #[test]
    fn block_flat_roundtrip() {
        let g = FlashGeometry::small();
        for flat in 0..g.total_blocks() {
            let b = BlockAddr::from_flat(&g, flat);
            assert!(b.is_valid(&g));
            assert_eq!(b.flat(&g), flat);
        }
    }

    #[test]
    fn die_flat_roundtrip() {
        let g = FlashGeometry::small();
        for flat in 0..g.total_dies() as u64 {
            let d = DieAddr::from_flat(&g, flat);
            assert_eq!(d.flat(&g), flat);
        }
    }

    #[test]
    fn flat_addresses_are_die_contiguous() {
        // All pages of one die occupy a contiguous flat range — the property
        // the region manager relies on for die-wise striping.
        let g = FlashGeometry::small();
        let pages_per_die = g.pages_per_die();
        for flat in 0..g.total_pages() {
            let ppa = Ppa::from_flat(&g, flat);
            let expected_die = flat / pages_per_die;
            assert_eq!(ppa.die_addr().flat(&g), expected_die);
        }
    }

    #[test]
    fn page_within_block_addressing() {
        let b = BlockAddr::new(1, 0, 0, 17);
        let p = b.page(5);
        assert_eq!(p.block_addr(), b);
        assert_eq!(p.page, 5);
    }

    #[test]
    fn is_valid_rejects_out_of_range() {
        let g = FlashGeometry::tiny();
        assert!(!Ppa::new(1, 0, 0, 0, 0).is_valid(&g));
        assert!(!Ppa::new(0, 0, 0, 8, 0).is_valid(&g));
        assert!(!Ppa::new(0, 0, 0, 0, 8).is_valid(&g));
        assert!(Ppa::new(0, 0, 0, 7, 7).is_valid(&g));
    }
}
