//! Physical page state.

use serde::{Deserialize, Serialize};

use crate::oob::Oob;

/// Lifecycle state of a physical page, as seen by Flash-management layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PageState {
    /// Erased and never programmed since the last block erase.
    Free,
    /// Programmed and holding the current version of some logical content.
    Valid,
    /// Programmed but superseded (its logical page was rewritten elsewhere)
    /// or explicitly invalidated by the host; reclaimable by GC.
    Invalid,
}

/// A physical page: state, optional user data and OOB metadata.
///
/// Data storage is optional (`DeviceConfig::store_data`): trace-driven GC
/// experiments only need command accounting, and skipping the 4 KiB copies
/// keeps multi-gigabyte simulated devices cheap.
#[derive(Debug, Clone)]
pub struct Page {
    /// Current lifecycle state.
    pub state: PageState,
    /// Page contents, present only when the device stores data.
    pub data: Option<Box<[u8]>>,
    /// OOB metadata written together with the page.
    pub oob: Oob,
}

impl Page {
    /// A freshly erased page.
    pub fn erased() -> Self {
        Self {
            state: PageState::Free,
            data: None,
            oob: Oob::default(),
        }
    }

    /// Reset to the erased state (drops data).
    pub fn erase(&mut self) {
        self.state = PageState::Free;
        self.data = None;
        self.oob = Oob::default();
    }

    /// Whether the page may be programmed.
    pub fn is_free(&self) -> bool {
        self.state == PageState::Free
    }

    /// Whether the page holds live content.
    pub fn is_valid(&self) -> bool {
        self.state == PageState::Valid
    }

    /// Whether the page holds reclaimable garbage.
    pub fn is_invalid(&self) -> bool {
        self.state == PageState::Invalid
    }
}

impl Default for Page {
    fn default() -> Self {
        Self::erased()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erased_page_is_free() {
        let p = Page::erased();
        assert!(p.is_free());
        assert!(!p.is_valid());
        assert!(!p.is_invalid());
        assert!(p.data.is_none());
    }

    #[test]
    fn erase_clears_everything() {
        let mut p = Page::erased();
        p.state = PageState::Valid;
        p.data = Some(vec![1, 2, 3].into_boxed_slice());
        p.oob = Oob::data(7, 9);
        p.erase();
        assert!(p.is_free());
        assert!(p.data.is_none());
        assert!(!p.oob.has_lpn());
    }
}
