//! Flash device geometry: the architectural parameters a DBMS learns through
//! the `IDENTIFY` command of the native Flash interface.

use serde::{Deserialize, Serialize};

use crate::nand_type::NandType;

/// Physical organisation of a NAND Flash device.
///
/// The hierarchy follows ONFI terminology (and the paper's Figure 2):
/// `channel → die (LUN) → plane → block → page`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlashGeometry {
    /// Number of independent channels (buses) between controller and NAND.
    pub channels: u32,
    /// Number of dies (LUNs) attached to each channel.
    pub dies_per_channel: u32,
    /// Number of planes per die (copyback stays within a plane).
    pub planes_per_die: u32,
    /// Number of erase blocks per plane.
    pub blocks_per_plane: u32,
    /// Number of pages per erase block.
    pub pages_per_block: u32,
    /// User-data bytes per page.
    pub page_size: u32,
    /// Out-of-band (spare) bytes per page, used for page metadata.
    pub oob_size: u32,
    /// NAND cell type; determines timing and endurance.
    pub nand_type: NandType,
}

impl FlashGeometry {
    /// A small geometry suitable for unit tests: 2 channels × 2 dies ×
    /// 1 plane × 64 blocks × 32 pages × 4 KiB pages (≈ 16 MiB of Flash).
    pub fn small() -> Self {
        Self {
            channels: 2,
            dies_per_channel: 2,
            planes_per_die: 1,
            blocks_per_plane: 64,
            pages_per_block: 32,
            page_size: 4096,
            oob_size: 128,
            nand_type: NandType::Slc,
        }
    }

    /// A tiny geometry for exhaustive property tests (1×1×1×8×8, 512-byte
    /// pages).
    pub fn tiny() -> Self {
        Self {
            channels: 1,
            dies_per_channel: 1,
            planes_per_die: 1,
            blocks_per_plane: 8,
            pages_per_block: 8,
            page_size: 512,
            oob_size: 16,
            nand_type: NandType::Slc,
        }
    }

    /// A geometry modelled after the OpenSSD (Jasmine) research board used in
    /// the paper: 4 channels × 2 dies (8 "banks"), 128 pages per block,
    /// 4 KiB pages, SLC-class timing. Capacity is scaled down relative to the
    /// physical board so simulations stay RAM-friendly.
    pub fn openssd_like() -> Self {
        Self {
            channels: 4,
            dies_per_channel: 2,
            planes_per_die: 1,
            blocks_per_plane: 256,
            pages_per_block: 128,
            page_size: 4096,
            oob_size: 128,
            nand_type: NandType::Slc,
        }
    }

    /// A geometry with `dies` total dies spread over up to 8 channels —
    /// used for the die-scaling experiment of Figure 4 (1..=32 dies).
    ///
    /// Capacity per die is chosen so total capacity stays constant
    /// (`blocks_per_plane` shrinks as dies grow), mirroring the paper's fixed
    /// 10 GB drive divided over a varying number of dies.
    pub fn with_dies(dies: u32, blocks_total: u32, pages_per_block: u32, page_size: u32) -> Self {
        assert!(dies > 0, "need at least one die");
        let channels = dies.min(8);
        let dies_per_channel = dies.div_ceil(channels);
        let total_dies = channels * dies_per_channel;
        let blocks_per_plane = blocks_total.div_ceil(total_dies).max(4);
        Self {
            channels,
            dies_per_channel,
            planes_per_die: 1,
            blocks_per_plane,
            pages_per_block,
            page_size,
            oob_size: 128,
            nand_type: NandType::Slc,
        }
    }

    /// Total number of dies (LUNs) in the device.
    pub fn total_dies(&self) -> u32 {
        self.channels * self.dies_per_channel
    }

    /// Total number of planes in the device.
    pub fn total_planes(&self) -> u32 {
        self.total_dies() * self.planes_per_die
    }

    /// Number of blocks per die.
    pub fn blocks_per_die(&self) -> u32 {
        self.planes_per_die * self.blocks_per_plane
    }

    /// Total number of erase blocks in the device.
    pub fn total_blocks(&self) -> u64 {
        self.total_planes() as u64 * self.blocks_per_plane as u64
    }

    /// Total number of pages in the device.
    pub fn total_pages(&self) -> u64 {
        self.total_blocks() * self.pages_per_block as u64
    }

    /// Number of pages per die.
    pub fn pages_per_die(&self) -> u64 {
        self.blocks_per_die() as u64 * self.pages_per_block as u64
    }

    /// Raw capacity in bytes (user data area only, OOB excluded).
    pub fn capacity_bytes(&self) -> u64 {
        self.total_pages() * self.page_size as u64
    }

    /// Validate internal consistency; returns a human-readable complaint if
    /// any dimension is zero.
    pub fn validate(&self) -> Result<(), String> {
        let dims = [
            ("channels", self.channels),
            ("dies_per_channel", self.dies_per_channel),
            ("planes_per_die", self.planes_per_die),
            ("blocks_per_plane", self.blocks_per_plane),
            ("pages_per_block", self.pages_per_block),
            ("page_size", self.page_size),
        ];
        for (name, v) in dims {
            if v == 0 {
                return Err(format!("geometry dimension `{name}` must be non-zero"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_geometry_counts() {
        let g = FlashGeometry::small();
        assert_eq!(g.total_dies(), 4);
        assert_eq!(g.total_planes(), 4);
        assert_eq!(g.total_blocks(), 256);
        assert_eq!(g.total_pages(), 256 * 32);
        assert_eq!(g.capacity_bytes(), 256 * 32 * 4096);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn tiny_geometry_counts() {
        let g = FlashGeometry::tiny();
        assert_eq!(g.total_blocks(), 8);
        assert_eq!(g.total_pages(), 64);
    }

    #[test]
    fn with_dies_keeps_capacity_roughly_constant() {
        let base = FlashGeometry::with_dies(1, 1024, 64, 4096);
        let cap1 = base.capacity_bytes();
        for dies in [2u32, 4, 8, 16, 32] {
            let g = FlashGeometry::with_dies(dies, 1024, 64, 4096);
            assert_eq!(g.total_dies(), dies.max(g.total_dies()));
            let cap = g.capacity_bytes();
            // Rounding may change capacity slightly; stay within 2x.
            assert!(cap * 2 >= cap1 && cap <= cap1 * 2, "capacity drifted: {cap} vs {cap1}");
        }
    }

    #[test]
    fn with_dies_distributes_over_channels() {
        let g = FlashGeometry::with_dies(16, 2048, 64, 4096);
        assert_eq!(g.channels, 8);
        assert_eq!(g.dies_per_channel, 2);
        assert_eq!(g.total_dies(), 16);
    }

    #[test]
    fn validate_rejects_zero_dimension() {
        let mut g = FlashGeometry::small();
        g.pages_per_block = 0;
        assert!(g.validate().is_err());
    }

    #[test]
    fn openssd_profile_is_plausible() {
        let g = FlashGeometry::openssd_like();
        assert_eq!(g.total_dies(), 8);
        assert!(g.capacity_bytes() >= 1 << 30);
    }
}
