//! The NAND device model: implements the native Flash interface over an
//! in-memory array of dies, blocks and pages, with per-die/per-channel
//! occupancy-based timing, wear tracking and bad-block growth.

use serde::{Deserialize, Serialize};
use sim_utils::rng::SimRng;
use sim_utils::time::SimInstant;

use crate::addr::{BlockAddr, DieAddr, Ppa};
use crate::bad_block::BadBlockPolicy;
use crate::block::{Block, BlockHealth};
use crate::die::Die;
use crate::error::{FlashError, FlashResult};
use crate::fault::{FaultPlan, KillTarget, ReadFaultOutcome};
use crate::geometry::FlashGeometry;
use crate::interface::{DeviceIdentification, NativeFlashInterface, OpCompletion, OpKind};
use crate::nand_type::TimingProfile;
use crate::oob::Oob;
use crate::page::PageState;
use crate::queue::{CommandId, CommandQueues, CommandStatus, QueuedCompletion};
use crate::stats::FlashStats;
use crate::timing::Channel;
use crate::trace::{TraceEntry, Tracer};

/// Construction-time configuration of a [`NandDevice`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Physical organisation of the device.
    pub geometry: FlashGeometry,
    /// Whether page contents are stored (`true`) or only metadata is tracked
    /// (`false`, cheaper — used by trace-driven experiments).
    pub store_data: bool,
    /// Bad-block injection policy.
    pub bad_blocks: BadBlockPolicy,
    /// Override of the NAND timing profile (defaults to the geometry's NAND
    /// type profile).
    pub timing_override: Option<TimingProfile>,
    /// Capacity of the command tracer; `0` disables tracing.
    pub trace_capacity: usize,
    /// Enforce the sequential page-programming rule within a block.  SLC NAND
    /// historically permits random page order inside an erased block, which
    /// block-mapped FTLs (FAST/FASTer data blocks) rely on; MLC/TLC require
    /// strictly sequential programming.
    pub strict_sequential_program: bool,
    /// Override of the per-block P/E endurance (defaults to the NAND type's
    /// endurance).  Wear tests use tiny values so wear-out is reachable
    /// without hundreds of thousands of erases.
    pub endurance_override: Option<u64>,
    /// Deterministic fault-injection plan (program/erase/read failures).
    /// `None` — the default — makes the device bit- and cycle-identical to a
    /// build without fault injection.  The `NOFTL_FAULTS` environment knob is
    /// read centrally by `storage_engine::backend::fault_plan_from_env` and
    /// injected DBMS-side; a bare device never consults the environment, so
    /// its behaviour is a pure function of this configuration.
    pub faults: Option<FaultPlan>,
}

impl DeviceConfig {
    /// Default configuration for a given geometry: data stored, no factory
    /// bad blocks, tracing disabled.
    pub fn new(geometry: FlashGeometry) -> Self {
        Self {
            geometry,
            store_data: true,
            bad_blocks: BadBlockPolicy::none(),
            timing_override: None,
            trace_capacity: 0,
            strict_sequential_program: true,
            endurance_override: None,
            faults: None,
        }
    }

    /// Metadata-only configuration (no page contents stored).
    pub fn metadata_only(geometry: FlashGeometry) -> Self {
        Self {
            store_data: false,
            ..Self::new(geometry)
        }
    }
}

/// Summary of an erase block's bookkeeping state, exposed to Flash-management
/// layers (FTLs and NoFTL) for GC victim selection and wear leveling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockInfo {
    /// Number of erase cycles endured.
    pub erase_count: u64,
    /// Number of valid pages.
    pub valid_pages: u32,
    /// Number of invalid pages.
    pub invalid_pages: u32,
    /// Number of still-free pages.
    pub free_pages: u32,
    /// Next page index the sequential-programming rule expects.
    pub next_program_page: u32,
    /// Whether the block is usable (not factory/grown bad).
    pub usable: bool,
}

/// In-memory NAND Flash device.
pub struct NandDevice {
    geometry: FlashGeometry,
    timing: TimingProfile,
    endurance: u64,
    store_data: bool,
    strict_sequential: bool,
    bad_policy: BadBlockPolicy,
    dies: Vec<Die>,
    channels: Vec<Channel>,
    stats: FlashStats,
    tracer: Tracer,
    rng: SimRng,
    sequence: u64,
    queues: CommandQueues,
    /// Fault-injection plan; `None` disables injection entirely (no RNG
    /// draws, no counter updates — the equivalence baseline).
    faults: Option<FaultPlan>,
    /// Completion stamps of the most recent *failed* command (set only at
    /// fault-injection sites, where timing is still charged).  The queued
    /// submission spine consumes this to record an error-carrying completion.
    fault_completion: Option<OpCompletion>,
    /// Dies that have failed permanently (flat die index).  All-false unless
    /// a [`KillSpec`](crate::fault::KillSpec) fired.
    dead_dies: Vec<bool>,
    /// Array commands executed so far — advanced only while the plan carries
    /// kill specs, so the kill-free paths pay nothing for it.
    kill_commands: u64,
    /// Which of the plan's kill specs have already fired (parallel to
    /// `faults.kills`).
    kills_applied: Vec<bool>,
    /// Cached `!faults.kills.is_empty()`: gates the per-command kill check.
    has_kills: bool,
}

impl NandDevice {
    /// Build a device from a configuration.
    pub fn new(config: DeviceConfig) -> Self {
        config
            .geometry
            .validate()
            // lint:allow(panic-path): construction-time configuration check —
            // no device I/O has happened yet, and an invalid geometry is a
            // programmer error a fallible constructor would only defer.
            .expect("invalid flash geometry");
        let g = config.geometry;
        let timing = config
            .timing_override
            .unwrap_or_else(|| g.nand_type.timing());
        let dies = (0..g.total_dies())
            .map(|_| Die::new(g.blocks_per_die(), g.pages_per_block))
            .collect::<Vec<_>>();
        let channels = (0..g.channels).map(|_| Channel::new()).collect();
        let tracer = if config.trace_capacity > 0 {
            Tracer::with_capacity(config.trace_capacity)
        } else {
            Tracer::disabled()
        };
        let mut dev = Self {
            geometry: g,
            timing,
            endurance: config
                .endurance_override
                .unwrap_or_else(|| g.nand_type.endurance()),
            store_data: config.store_data,
            strict_sequential: config.strict_sequential_program,
            bad_policy: config.bad_blocks,
            dies,
            channels,
            stats: FlashStats::new(g.total_dies() as usize),
            tracer,
            rng: SimRng::new(config.bad_blocks.seed ^ 0x5EED),
            sequence: 0,
            queues: CommandQueues::new(g.total_dies() as usize, 1),
            dead_dies: vec![false; g.total_dies() as usize],
            kill_commands: 0,
            kills_applied: vec![
                false;
                config.faults.as_ref().map_or(0, |p| p.kills.len())
            ],
            has_kills: config.faults.as_ref().is_some_and(|p| !p.kills.is_empty()),
            faults: config.faults,
            fault_completion: None,
        };
        for flat in config.bad_blocks.factory_bad_blocks(&g) {
            let addr = BlockAddr::from_flat(&g, flat);
            dev.block_mut(addr).mark_bad(BlockHealth::FactoryBad);
        }
        dev
    }

    /// Convenience constructor with default config for `geometry`.
    pub fn with_geometry(geometry: FlashGeometry) -> Self {
        Self::new(DeviceConfig::new(geometry))
    }

    /// The timing profile in effect.
    pub fn timing(&self) -> &TimingProfile {
        &self.timing
    }

    /// The P/E endurance per block.
    pub fn endurance(&self) -> u64 {
        self.endurance
    }

    /// The fault-injection plan in effect, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Whether fault injection is active.
    pub fn faults_enabled(&self) -> bool {
        self.faults.is_some()
    }

    /// Install or remove the fault-injection plan at runtime (tests and the
    /// chaos harness; `None` restores the fault-free equivalence baseline).
    /// Resets the kill bookkeeping for the new plan; dies that already failed
    /// stay dead (a die failure is permanent).
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.faults = plan;
        let kills = self.faults.as_ref().map_or(0, |p| p.kills.len());
        self.has_kills = kills > 0;
        self.kills_applied = vec![false; kills];
        self.kill_commands = 0;
    }

    /// Whether `die` has failed permanently.
    pub fn is_die_dead(&self, die: DieAddr) -> bool {
        self.dead_dies
            .get(die.flat(&self.geometry) as usize)
            .copied()
            .unwrap_or(false)
    }

    /// Whether any die has failed (cheap: one boolean scan, no state change
    /// — safe to consult on hot scheduling paths).
    pub fn any_die_dead(&self) -> bool {
        self.dead_dies.iter().any(|&d| d)
    }

    /// Per-die failure flags (flat die index).
    pub fn dead_dies(&self) -> &[bool] {
        &self.dead_dies
    }

    /// Enable or disable gap-backfilling die/channel occupancy.  Off (the
    /// default) is the pinned `busy_until` ratchet; the multi-client engine
    /// turns it on so commands arriving out of timestamp order from
    /// drifting client clocks are not charged queue-wait on provably-idle
    /// resources (see [`crate::timeline`]).
    pub fn set_backfill_occupancy(&mut self, on: bool) {
        for die in &mut self.dies {
            die.set_backfill_occupancy(on);
        }
        for ch in &mut self.channels {
            ch.set_backfill_occupancy(on);
        }
    }

    /// Reads a block has served since its last erase (the read-disturb
    /// stress the scrubber watches; only maintained while a fault plan is
    /// active).
    pub fn read_disturb(&self, block: BlockAddr) -> FlashResult<u64> {
        self.check_block_addr(block)?;
        Ok(self.block_ref(block).read_disturb())
    }

    /// Access the command trace.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Mutable access to the command trace (e.g. to clear it between phases).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    fn die_index(&self, die: DieAddr) -> usize {
        die.flat(&self.geometry) as usize
    }

    fn block_local_index(&self, b: &BlockAddr) -> u32 {
        b.plane * self.geometry.blocks_per_plane + b.block
    }

    fn block_ref(&self, addr: BlockAddr) -> &Block {
        let die = &self.dies[self.die_index(addr.die_addr())];
        die.block(self.block_local_index(&addr))
    }

    fn block_mut(&mut self, addr: BlockAddr) -> &mut Block {
        let die_idx = self.die_index(addr.die_addr());
        let local = self.block_local_index(&addr);
        self.dies[die_idx].block_mut(local)
    }

    /// Bookkeeping summary of a block.
    pub fn block_info(&self, addr: BlockAddr) -> FlashResult<BlockInfo> {
        self.check_block_addr(addr)?;
        let b = self.block_ref(addr);
        Ok(BlockInfo {
            erase_count: b.erase_count(),
            valid_pages: b.valid_pages(),
            invalid_pages: b.invalid_pages(),
            free_pages: b.free_pages(),
            next_program_page: b.next_program_page(),
            usable: b.is_usable(),
        })
    }

    /// Host-directed bad-block mark.  Under NoFTL the DBMS owns bad-block
    /// management: after relocating the surviving pages of a block whose
    /// PAGE PROGRAM failed, it writes the bad-block marker so the device
    /// rejects any further use of the block.  Pure state change — no timing
    /// and no trace entry, like the factory marks applied at construction.
    pub fn mark_block_bad(&mut self, addr: BlockAddr) -> FlashResult<()> {
        self.check_block_addr(addr)?;
        self.block_mut(addr).mark_bad(BlockHealth::GrownBad);
        Ok(())
    }

    /// State of an individual page.
    pub fn page_state(&self, ppa: Ppa) -> FlashResult<PageState> {
        self.check_ppa(ppa)?;
        Ok(self.block_ref(ppa.block_addr()).page(ppa.page).state)
    }

    /// OOB metadata of a page without timing effects (model inspection only;
    /// use [`NativeFlashInterface::read_oob`] inside simulations).
    pub fn peek_oob(&self, ppa: Ppa) -> FlashResult<Oob> {
        self.check_ppa(ppa)?;
        Ok(self.block_ref(ppa.block_addr()).page(ppa.page).oob)
    }

    /// The instant until which a die is busy (used by schedulers/emulator).
    pub fn die_busy_until(&self, die: DieAddr) -> SimInstant {
        self.dies[self.die_index(die)].busy_until()
    }

    /// Accumulated busy time of a die.
    pub fn die_busy_time(&self, die: DieAddr) -> u64 {
        self.dies[self.die_index(die)].busy_time()
    }

    /// Maximum erase count over all blocks (wear headline number).
    pub fn max_erase_count(&self) -> u64 {
        self.iter_blocks().map(|(_, b)| b.erase_count()).max().unwrap_or(0)
    }

    /// Mean erase count over all blocks.
    pub fn mean_erase_count(&self) -> f64 {
        let total_blocks = self.geometry.total_blocks();
        if total_blocks == 0 {
            return 0.0;
        }
        let sum: u64 = self.iter_blocks().map(|(_, b)| b.erase_count()).sum();
        sum as f64 / total_blocks as f64
    }

    fn iter_blocks(&self) -> impl Iterator<Item = (BlockAddr, &Block)> + '_ {
        let g = self.geometry;
        (0..g.total_blocks()).map(move |flat| {
            let addr = BlockAddr::from_flat(&g, flat);
            (addr, self.block_ref(addr))
        })
    }

    fn check_ppa(&self, ppa: Ppa) -> FlashResult<()> {
        if ppa.is_valid(&self.geometry) {
            Ok(())
        } else {
            Err(FlashError::InvalidAddress {
                what: format!("{ppa:?}"),
            })
        }
    }

    fn check_block_addr(&self, b: BlockAddr) -> FlashResult<()> {
        if b.is_valid(&self.geometry) {
            Ok(())
        } else {
            Err(FlashError::InvalidAddress {
                what: format!("{b:?}"),
            })
        }
    }

    fn check_usable(&self, b: BlockAddr) -> FlashResult<()> {
        if self.block_ref(b).is_usable() {
            Ok(())
        } else {
            Err(FlashError::BadBlock(b))
        }
    }

    fn next_sequence(&mut self) -> u64 {
        self.sequence += 1;
        self.sequence
    }

    fn trace(&mut self, entry: TraceEntry) {
        self.tracer.record(entry);
    }

    // -- fault injection -----------------------------------------------------
    //
    // Every helper below is a no-op performing **zero RNG draws and zero
    // block-state updates** when no fault plan is installed, so the fault-off
    // device stays bit- and cycle-identical to a build without injection.

    /// Draw the read-error model for a read of `block` at `now`, counting the
    /// read against the block's read-disturb stress.
    fn draw_read_fault(&mut self, now: SimInstant, block: BlockAddr) -> ReadFaultOutcome {
        if self.faults.is_none() {
            return ReadFaultOutcome::Clean;
        }
        let (erases, age, disturb) = {
            let b = self.block_ref(block);
            (
                b.erase_count(),
                now.saturating_sub(b.programmed_at()),
                b.read_disturb(),
            )
        };
        self.block_mut(block).note_read_disturb();
        let endurance = self.endurance;
        self.faults
            .as_mut()
            .map_or(ReadFaultOutcome::Clean, |plan| {
                plan.read_outcome(erases, endurance, age, disturb + 1)
            })
    }

    /// Draw the program-failure model for a program into `block`.
    fn draw_program_fault(&mut self, block: BlockAddr) -> bool {
        if self.faults.is_none() {
            return false;
        }
        let erases = self.block_ref(block).erase_count();
        let endurance = self.endurance;
        self.faults
            .as_mut()
            .is_some_and(|plan| plan.program_fails(erases, endurance))
    }

    /// Note a program into `block` at `now` (the retention base of the read
    /// fault model).
    fn note_programmed(&mut self, now: SimInstant, block: BlockAddr) {
        if self.faults.is_some() {
            self.block_mut(block).note_programmed_at(now);
        }
    }

    /// Draw the erase-failure model for the `erase_count`-th cycle.
    fn draw_erase_fault(&mut self, erase_count: u64) -> bool {
        if self.faults.is_none() {
            return false;
        }
        let endurance = self.endurance;
        self.faults
            .as_mut()
            .is_some_and(|plan| plan.erase_fails(erase_count, endurance))
    }

    /// Advance the array-command counter and fire any kill specs that are
    /// due, as of `now`.  A strict no-op (no counter, no scan) unless the
    /// plan carries kill specs, so the kill-free device stays bit- and
    /// cycle-identical.  When a kill fires, the die is marked dead, its
    /// in-flight queued commands complete with
    /// [`CommandStatus::DieFailed`], and its queue window is cleared.
    fn tick_kills(&mut self, now: SimInstant) {
        if !self.has_kills {
            return;
        }
        let cmd = self.kill_commands;
        self.kill_commands += 1;
        let mut to_kill: Vec<usize> = Vec::new();
        if let Some(plan) = &self.faults {
            for (i, spec) in plan.kills.iter().enumerate() {
                if self.kills_applied[i] || cmd < spec.at_command {
                    continue;
                }
                self.kills_applied[i] = true;
                match spec.target {
                    KillTarget::Die(d) => to_kill.push(d as usize),
                    KillTarget::Channel(c) => {
                        for d in 0..self.geometry.dies_per_channel {
                            to_kill
                                .push((c * self.geometry.dies_per_channel + d) as usize);
                        }
                    }
                }
            }
        }
        for die in to_kill {
            if die < self.dead_dies.len() && !self.dead_dies[die] {
                self.dead_dies[die] = true;
                self.stats.die_failures += 1;
                let addr = DieAddr::from_flat(&self.geometry, die as u64);
                self.stats.inflight_die_failures +=
                    self.queues.fail_die(die, now, addr) as u64;
            }
        }
    }

    /// Reject a command addressed to a dead die.  Pure rejection: no timing
    /// is charged and no completion is recorded (a real controller NAKs the
    /// submission immediately).
    fn check_die_alive(&mut self, die: DieAddr) -> FlashResult<()> {
        if self
            .dead_dies
            .get(die.flat(&self.geometry) as usize)
            .copied()
            .unwrap_or(false)
        {
            self.stats.dead_die_rejections += 1;
            return Err(FlashError::DieFailed(die));
        }
        Ok(())
    }

    // -- queued submission (submit/poll) ------------------------------------

    /// Per-die queue depth in effect for queued submissions.
    pub fn queue_depth(&self) -> usize {
        self.queues.depth()
    }

    /// Set the per-die queue depth (clamped to at least 1; capped at the
    /// `max_queue_per_die` the `IDENTIFY` response advertises).  Depth 1 makes
    /// every submission wait for its same-die predecessor — the synchronous
    /// dispatch semantics.
    pub fn set_queue_depth(&mut self, depth: usize) {
        let cap = self.identify().max_queue_per_die as usize;
        self.queues.set_depth(depth.clamp(1, cap));
    }

    /// Number of commands in flight on `die` as of `now`.
    pub fn inflight_on(&self, die: DieAddr, now: SimInstant) -> usize {
        self.queues.inflight_on(self.die_index(die), now)
    }

    /// Total commands in flight across every die as of `now` — the
    /// foreground-load signal the DBMS's load-aware schedulers consult
    /// before launching background work.
    pub fn inflight_total(&self, now: SimInstant) -> usize {
        self.queues.inflight_total(now)
    }

    /// Read commands in flight across every die as of `now` (nonzero means
    /// the instant is read-hot for background relocations).
    pub fn inflight_reads(&self, now: SimInstant) -> usize {
        self.queues.inflight_reads(now)
    }

    /// Shared spine of every `submit_*` method: admit into the die queue
    /// (gating behind a full queue), execute the command at the gated issue
    /// time, account the queued-submission statistics (read submissions and
    /// read stalls are additionally counted per [`FlashStats`]'s read
    /// counters), and record the completion for a later poll.  `run` returns
    /// the command's completion plus any extra payload (e.g. a read's OOB).
    /// Map an error to the completion status of an *injected* device fault.
    /// Only fault-plan failures qualify: they charge real timing and occupy
    /// the die, so their completions belong in the poll stream.  Validation
    /// errors (and the fault-free `WornOut` wear model) return `None` and
    /// keep the historical propagate-without-recording behaviour.
    fn fault_status(e: &FlashError) -> Option<CommandStatus> {
        match e {
            FlashError::ProgramFailed(ppa) => Some(CommandStatus::ProgramFailed(*ppa)),
            FlashError::EraseFailed(b) => Some(CommandStatus::EraseFailed(*b)),
            FlashError::UncorrectableEcc(ppa) => Some(CommandStatus::Uncorrectable(*ppa)),
            _ => None,
        }
    }

    fn submit_queued<T>(
        &mut self,
        die_idx: usize,
        kind: OpKind,
        now: SimInstant,
        run: impl FnOnce(&mut Self, SimInstant) -> FlashResult<(T, OpCompletion)>,
    ) -> FlashResult<(T, QueuedCompletion)> {
        let (issue, gated) = self.queues.admit(die_idx, now);
        let (payload, completion) = match run(self, issue) {
            Ok(pc) => pc,
            Err(e) => {
                // An injected fault charged real timing: record an
                // error-carrying completion (the command held its die-queue
                // slot and a poll must report the failure), then propagate.
                if let (Some(status), Some(completion)) =
                    (Self::fault_status(&e), self.fault_completion.take())
                {
                    self.stats.queued_submissions += 1;
                    if kind == OpKind::Read {
                        self.stats.queued_reads += 1;
                    }
                    if gated {
                        self.stats.queue_gated_submissions += 1;
                        if kind == OpKind::Read {
                            self.stats.read_stalls += 1;
                        }
                    }
                    self.queues
                        .record_with_status(die_idx, kind, now, issue, completion, status);
                }
                return Err(e);
            }
        };
        self.stats.queued_submissions += 1;
        if kind == OpKind::Read {
            self.stats.queued_reads += 1;
        }
        if gated {
            self.stats.queue_gated_submissions += 1;
            if kind == OpKind::Read {
                self.stats.read_stalls += 1;
            }
        }
        let id = self.queues.record(die_idx, kind, now, issue, completion);
        Ok((
            payload,
            QueuedCompletion {
                id,
                kind,
                submitted_at: now,
                issued_at: issue,
                completion,
                status: CommandStatus::Ok,
            },
        ))
    }

    /// Empty-run submission: completes immediately without touching a queue.
    fn empty_submission(kind: OpKind, now: SimInstant) -> QueuedCompletion {
        QueuedCompletion {
            id: CommandId(0),
            kind,
            submitted_at: now,
            issued_at: now,
            completion: OpCompletion {
                started_at: now,
                completed_at: now,
            },
            status: CommandStatus::Ok,
        }
    }

    /// Submit a multi-page program run (one die) into the die's command
    /// queue.  The run is admitted at `now`; if the queue is full its issue is
    /// gated behind the oldest in-flight command.  The returned
    /// [`QueuedCompletion`] carries both stamps plus the device-computed
    /// completion; it is also retained for [`NandDevice::poll_completions`].
    pub fn submit_program_pages(
        &mut self,
        now: SimInstant,
        ops: &[(Ppa, &[u8], Oob)],
    ) -> FlashResult<QueuedCompletion> {
        let die = match ops.first() {
            Some((ppa, _, _)) => ppa.die_addr(),
            None => return Ok(Self::empty_submission(OpKind::Program, now)),
        };
        let die_idx = self.die_index(die);
        self.submit_queued(die_idx, OpKind::Program, now, |dev, issue| {
            dev.program_pages(issue, ops).map(|c| ((), c))
        })
        .map(|((), q)| q)
    }

    /// Submit a single-page read into the page's die queue.  The read is
    /// admitted at `now`; if the queue is full its issue is gated behind the
    /// oldest in-flight command — this is how a point read honestly queues
    /// behind in-flight program/erase traffic on the same die.  `buf` is
    /// filled with the page content (the model is deterministic, so the data
    /// exists the moment the command is admitted); the returned completion
    /// stamps say when the host may *use* it on the virtual clock.
    pub fn submit_read_page(
        &mut self,
        now: SimInstant,
        ppa: Ppa,
        buf: &mut [u8],
    ) -> FlashResult<(Oob, QueuedCompletion)> {
        let die_idx = self.die_index(ppa.die_addr());
        self.submit_queued(die_idx, OpKind::Read, now, |dev, issue| {
            dev.read_page(issue, ppa, buf)
        })
    }

    /// Submit a multi-page read run (one die) into the die's command queue
    /// (same gating rules as [`NandDevice::submit_program_pages`]; the run
    /// itself gets the pipelined [`NativeFlashInterface::read_pages`] timing).
    pub fn submit_read_pages(
        &mut self,
        now: SimInstant,
        ops: &mut [(Ppa, &mut [u8])],
    ) -> FlashResult<QueuedCompletion> {
        let die = match ops.first() {
            Some((ppa, _)) => ppa.die_addr(),
            None => return Ok(Self::empty_submission(OpKind::Read, now)),
        };
        let die_idx = self.die_index(die);
        self.submit_queued(die_idx, OpKind::Read, now, |dev, issue| {
            dev.read_pages(issue, ops).map(|c| ((), c))
        })
        .map(|((), q)| q)
    }

    /// Submit a block erase into the block's die queue (same gating rules as
    /// [`NandDevice::submit_program_pages`]).
    pub fn submit_erase(
        &mut self,
        now: SimInstant,
        block: BlockAddr,
    ) -> FlashResult<QueuedCompletion> {
        let die_idx = self.die_index(block.die_addr());
        self.submit_queued(die_idx, OpKind::Erase, now, |dev, issue| {
            dev.erase_block(issue, block).map(|c| ((), c))
        })
        .map(|((), q)| q)
    }

    /// Submit a COPYBACK PROGRAM into the source plane's die queue (same
    /// gating rules as [`NandDevice::submit_program_pages`]).  Used by GC
    /// under the asynchronous model so plane-local relocations occupy the
    /// die queue like every other background command.
    pub fn submit_copyback(
        &mut self,
        now: SimInstant,
        src: Ppa,
        dst: Ppa,
        new_oob: Option<Oob>,
    ) -> FlashResult<QueuedCompletion> {
        let die_idx = self.die_index(src.die_addr());
        self.submit_queued(die_idx, OpKind::Copyback, now, |dev, issue| {
            dev.copyback(issue, src, dst, new_oob).map(|c| ((), c))
        })
        .map(|((), q)| q)
    }

    /// Drain every queued completion recorded since the last poll, in submit
    /// order.
    pub fn poll_completions(&mut self) -> Vec<QueuedCompletion> {
        self.queues.poll()
    }

    /// Barrier over the command queues: the instant by which every in-flight
    /// command has completed (at least `now`).  Clears the in-flight windows.
    pub fn drain_queues(&mut self, now: SimInstant) -> SimInstant {
        self.queues.drain(now)
    }
}

impl NativeFlashInterface for NandDevice {
    fn geometry(&self) -> &FlashGeometry {
        &self.geometry
    }

    fn identify(&self) -> DeviceIdentification {
        DeviceIdentification {
            model: format!(
                "noftl-sim {} {}ch x {}die",
                self.geometry.nand_type.name(),
                self.geometry.channels,
                self.geometry.dies_per_channel
            ),
            geometry: self.geometry,
            endurance: self.endurance,
            max_queue_per_die: 16,
            supports_copyback: true,
            supports_multiplane: self.geometry.planes_per_die > 1,
        }
    }

    fn read_page(
        &mut self,
        now: SimInstant,
        ppa: Ppa,
        buf: &mut [u8],
    ) -> FlashResult<(Oob, OpCompletion)> {
        self.tick_kills(now);
        self.check_ppa(ppa)?;
        self.check_die_alive(ppa.die_addr())?;
        let block_addr = ppa.block_addr();
        self.check_usable(block_addr)?;
        if buf.len() != self.geometry.page_size as usize {
            return Err(FlashError::BufferSizeMismatch {
                expected: self.geometry.page_size as usize,
                actual: buf.len(),
            });
        }
        {
            let page = self.block_ref(block_addr).page(ppa.page);
            if page.state == PageState::Free {
                return Err(FlashError::ReadOfUnwrittenPage(ppa));
            }
            if let Some(data) = &page.data {
                buf.copy_from_slice(data);
            } else {
                buf.fill(0);
            }
        }
        let oob = self.block_ref(block_addr).page(ppa.page).oob;
        let read_fault = self.draw_read_fault(now, block_addr);

        // Timing: array read on the die, then transfer over the channel.
        let die_idx = self.die_index(ppa.die_addr());
        let issue = now + self.timing.command_overhead;
        let (array_start, array_end) = self.dies[die_idx].occupy(issue, self.timing.read_page);
        let xfer = self
            .timing
            .transfer((self.geometry.page_size + self.geometry.oob_size) as u64);
        let (_, done) = self.channels[ppa.channel as usize].occupy(array_end, xfer);
        let completion = OpCompletion {
            started_at: array_start,
            completed_at: done,
        };

        self.stats.reads += 1;
        self.stats.bytes_read += self.geometry.page_size as u64;
        self.stats.read_latency.record(completion.latency_from(now));
        self.stats.per_die_ops[die_idx] += 1;
        self.stats.per_die_reads[die_idx] += 1;
        self.trace(TraceEntry {
            kind: OpKind::Read,
            issued_at: now,
            completed_at: done,
            ppa: Some(ppa),
            block: None,
            lpn: oob.has_lpn().then_some(oob.lpn),
        });
        match read_fault {
            ReadFaultOutcome::Clean => {}
            ReadFaultOutcome::Corrected => self.stats.corrected_reads += 1,
            ReadFaultOutcome::Uncorrectable => {
                self.stats.uncorrectable_reads += 1;
                self.fault_completion = Some(completion);
                return Err(FlashError::UncorrectableEcc(ppa));
            }
        }
        Ok((oob, completion))
    }

    fn read_oob(&mut self, now: SimInstant, ppa: Ppa) -> FlashResult<(Oob, OpCompletion)> {
        self.tick_kills(now);
        self.check_ppa(ppa)?;
        self.check_die_alive(ppa.die_addr())?;
        let block_addr = ppa.block_addr();
        self.check_usable(block_addr)?;
        let page = self.block_ref(block_addr).page(ppa.page);
        if page.state == PageState::Free {
            return Err(FlashError::ReadOfUnwrittenPage(ppa));
        }
        let oob = page.oob;

        let die_idx = self.die_index(ppa.die_addr());
        let issue = now + self.timing.command_overhead;
        let (start, array_end) = self.dies[die_idx].occupy(issue, self.timing.read_page);
        let xfer = self.timing.transfer(self.geometry.oob_size as u64);
        let (_, done) = self.channels[ppa.channel as usize].occupy(array_end, xfer);
        let completion = OpCompletion {
            started_at: start,
            completed_at: done,
        };

        self.stats.reads += 1;
        self.stats.read_latency.record(completion.latency_from(now));
        self.stats.per_die_ops[die_idx] += 1;
        self.stats.per_die_reads[die_idx] += 1;
        self.trace(TraceEntry {
            kind: OpKind::ReadOob,
            issued_at: now,
            completed_at: done,
            ppa: Some(ppa),
            block: None,
            lpn: oob.has_lpn().then_some(oob.lpn),
        });
        Ok((oob, completion))
    }

    /// Multi-page read: one dispatched command sequence per die.
    ///
    /// The whole run pays a single command overhead; array senses serialise
    /// on the die while data transfers serialise on the channel, so the sense
    /// of page *j+1* overlaps the transfer of page *j* (the ONFI cache-read
    /// pipeline).  A run issued to an idle die costs
    /// `cmd + tR + max(k·transfer, (k-1)·tR + transfer)` instead of the
    /// `k·(cmd + tR + transfer)` a sequential per-page issuer pays.
    ///
    /// The run is validated in full before any buffer is touched: a bad entry
    /// (wrong die, unwritten page, buffer size mismatch) fails the whole
    /// command without filling anything.
    fn read_pages(
        &mut self,
        now: SimInstant,
        ops: &mut [(Ppa, &mut [u8])],
    ) -> FlashResult<OpCompletion> {
        // Degenerate runs take the single-command path so a 1-page batch is
        // bit- and timing-identical to a plain PAGE READ.
        if ops.len() <= 1 {
            return match ops.iter_mut().next() {
                Some((ppa, buf)) => {
                    let ppa = *ppa;
                    self.read_page(now, ppa, buf).map(|(_, c)| c)
                }
                None => Ok(OpCompletion {
                    started_at: now,
                    completed_at: now,
                }),
            };
        }

        // -- validate the whole run up front (no partial fills) -------------
        self.tick_kills(now);
        let die = ops[0].0.die_addr();
        self.check_die_alive(die)?;
        for (ppa, buf) in ops.iter() {
            self.check_ppa(*ppa)?;
            if ppa.die_addr() != die {
                return Err(FlashError::InvalidAddress {
                    what: format!("multi-page read spans dies: {die:?} vs {:?}", ppa.die_addr()),
                });
            }
            let block_addr = ppa.block_addr();
            self.check_usable(block_addr)?;
            if buf.len() != self.geometry.page_size as usize {
                return Err(FlashError::BufferSizeMismatch {
                    expected: self.geometry.page_size as usize,
                    actual: buf.len(),
                });
            }
            if self.block_ref(block_addr).page(ppa.page).state == PageState::Free {
                return Err(FlashError::ReadOfUnwrittenPage(*ppa));
            }
        }

        // -- fill + timing --------------------------------------------------
        let die_idx = self.die_index(die);
        let channel = ops[0].0.channel as usize;
        // One command transfer for the whole run.
        let issue = now + self.timing.command_overhead;
        let xfer = self
            .timing
            .transfer((self.geometry.page_size + self.geometry.oob_size) as u64);
        let mut started_at = None;
        let mut completed_at = issue;
        for (ppa, buf) in ops.iter_mut() {
            {
                let page = self.block_ref(ppa.block_addr()).page(ppa.page);
                if let Some(data) = &page.data {
                    buf.copy_from_slice(data);
                } else {
                    buf.fill(0);
                }
            }
            let oob = self.block_ref(ppa.block_addr()).page(ppa.page).oob;
            let read_fault = self.draw_read_fault(now, ppa.block_addr());

            let (array_start, array_end) = self.dies[die_idx].occupy(issue, self.timing.read_page);
            let (_, done) = self.channels[channel].occupy(array_end, xfer);
            started_at.get_or_insert(array_start);
            completed_at = completed_at.max(done);

            self.stats.reads += 1;
            self.stats.bytes_read += self.geometry.page_size as u64;
            self.stats.read_latency.record(done.saturating_sub(now));
            self.stats.per_die_ops[die_idx] += 1;
            self.stats.per_die_reads[die_idx] += 1;
            self.trace(TraceEntry {
                kind: OpKind::Read,
                issued_at: now,
                completed_at: done,
                ppa: Some(*ppa),
                block: None,
                lpn: oob.has_lpn().then_some(oob.lpn),
            });
            match read_fault {
                ReadFaultOutcome::Clean => {}
                ReadFaultOutcome::Corrected => self.stats.corrected_reads += 1,
                ReadFaultOutcome::Uncorrectable => {
                    // The run aborts at the failing page: senses up to and
                    // including it were charged, later pages were neither
                    // sensed nor charged.  The issuer falls back to per-page
                    // reads (each with its own retry draw).
                    self.stats.uncorrectable_reads += 1;
                    self.fault_completion = Some(OpCompletion {
                        started_at: started_at.unwrap_or(issue),
                        completed_at,
                    });
                    return Err(FlashError::UncorrectableEcc(*ppa));
                }
            }
        }
        self.stats.multi_page_read_dispatches += 1;
        self.stats.batched_read_pages += ops.len() as u64;
        Ok(OpCompletion {
            started_at: started_at.unwrap_or(issue),
            completed_at,
        })
    }

    fn program_page(
        &mut self,
        now: SimInstant,
        ppa: Ppa,
        data: &[u8],
        oob: Oob,
    ) -> FlashResult<OpCompletion> {
        self.tick_kills(now);
        self.check_ppa(ppa)?;
        self.check_die_alive(ppa.die_addr())?;
        let block_addr = ppa.block_addr();
        self.check_usable(block_addr)?;
        if data.len() != self.geometry.page_size as usize {
            return Err(FlashError::BufferSizeMismatch {
                expected: self.geometry.page_size as usize,
                actual: data.len(),
            });
        }
        {
            let block = self.block_ref(block_addr);
            let page = block.page(ppa.page);
            if page.state != PageState::Free {
                return Err(FlashError::ProgramOnDirtyPage(ppa));
            }
            if self.strict_sequential && ppa.page != block.next_program_page() {
                return Err(FlashError::NonSequentialProgram {
                    attempted: ppa,
                    expected_page: block.next_program_page(),
                });
            }
        }

        let fails = self.draw_program_fault(block_addr);
        let stored = if self.store_data {
            Some(data.to_vec().into_boxed_slice())
        } else {
            None
        };
        let mut oob = oob;
        if oob.sequence == 0 {
            oob.sequence = self.next_sequence();
        }
        self.block_mut(block_addr).record_program(ppa.page, stored, oob);
        self.note_programmed(now, block_addr);

        // Timing: transfer over the channel, then array program on the die.
        let die_idx = self.die_index(ppa.die_addr());
        let issue = now + self.timing.command_overhead;
        let xfer = self
            .timing
            .transfer((self.geometry.page_size + self.geometry.oob_size) as u64);
        let (xfer_start, xfer_end) = self.channels[ppa.channel as usize].occupy(issue, xfer);
        let (_, done) = self.dies[die_idx].occupy(xfer_end, self.timing.program_page);
        let completion = OpCompletion {
            started_at: xfer_start,
            completed_at: done,
        };

        self.stats.programs += 1;
        self.stats.bytes_written += self.geometry.page_size as u64;
        self.stats
            .program_latency
            .record(completion.latency_from(now));
        self.stats.per_die_ops[die_idx] += 1;
        self.trace(TraceEntry {
            kind: OpKind::Program,
            issued_at: now,
            completed_at: done,
            ppa: Some(ppa),
            block: None,
            lpn: oob.has_lpn().then_some(oob.lpn),
        });
        if fails {
            // The page is consumed (NAND cannot retry a page without an
            // erase) and no longer holds valid data; the full program timing
            // was charged before the chip reported failure.
            self.block_mut(block_addr).invalidate_page(ppa.page);
            self.stats.program_failures += 1;
            self.fault_completion = Some(completion);
            return Err(FlashError::ProgramFailed(ppa));
        }
        Ok(completion)
    }

    /// Multi-page program: one dispatched command sequence per die.
    ///
    /// The whole run pays a single command overhead; data transfers serialise
    /// on the die's channel while cell programs serialise on the die, so the
    /// transfer of page *j+1* overlaps with the program of page *j* (the ONFI
    /// cache-program pipeline).  A run issued to an idle die therefore costs
    /// `cmd + max(k·transfer, transfer + k·tPROG)` instead of the
    /// `k·(cmd + transfer + tPROG)` a sequential per-page issuer pays, and
    /// runs dispatched to *different* dies at the same instant overlap almost
    /// completely — the per-die queue model of the ROADMAP.
    ///
    /// The run is validated in full before any page is committed: a bad entry
    /// (wrong die, dirty page, sequential-rule violation) fails the whole
    /// command without programming anything.
    fn program_pages(
        &mut self,
        now: SimInstant,
        ops: &[(Ppa, &[u8], Oob)],
    ) -> FlashResult<OpCompletion> {
        // Degenerate runs take the single-command path so a 1-page batch is
        // bit- and timing-identical to a plain PAGE PROGRAM.
        if ops.len() <= 1 {
            return match ops.first() {
                Some((ppa, data, oob)) => self.program_page(now, *ppa, data, *oob),
                None => Ok(OpCompletion {
                    started_at: now,
                    completed_at: now,
                }),
            };
        }

        // -- validate the whole run up front (no partial batches) ----------
        self.tick_kills(now);
        let die = ops[0].0.die_addr();
        self.check_die_alive(die)?;
        // Per-block expected next page, tracking pages this run will program.
        let mut expected: Vec<(BlockAddr, u32)> = Vec::new();
        // Pages already claimed by this run (duplicate detection on
        // permissive, non-strict-sequential devices).
        let mut seen: Vec<Ppa> = Vec::new();
        for (ppa, data, _) in ops {
            self.check_ppa(*ppa)?;
            if ppa.die_addr() != die {
                return Err(FlashError::InvalidAddress {
                    what: format!("multi-page program spans dies: {die:?} vs {:?}", ppa.die_addr()),
                });
            }
            let block_addr = ppa.block_addr();
            self.check_usable(block_addr)?;
            if data.len() != self.geometry.page_size as usize {
                return Err(FlashError::BufferSizeMismatch {
                    expected: self.geometry.page_size as usize,
                    actual: data.len(),
                });
            }
            if self.block_ref(block_addr).page(ppa.page).state != PageState::Free {
                return Err(FlashError::ProgramOnDirtyPage(*ppa));
            }
            if seen.contains(ppa) {
                return Err(FlashError::ProgramOnDirtyPage(*ppa));
            }
            seen.push(*ppa);
            if self.strict_sequential {
                let slot = match expected.iter().position(|(b, _)| *b == block_addr) {
                    Some(i) => i,
                    None => {
                        let n = self.block_ref(block_addr).next_program_page();
                        expected.push((block_addr, n));
                        expected.len() - 1
                    }
                };
                let next = expected[slot].1;
                if ppa.page != next {
                    return Err(FlashError::NonSequentialProgram {
                        attempted: *ppa,
                        expected_page: next,
                    });
                }
                expected[slot].1 = ppa.page + 1;
            }
        }

        // -- commit + timing ----------------------------------------------
        let die_idx = self.die_index(die);
        let channel = ops[0].0.channel as usize;
        // One command transfer for the whole run.
        let issue = now + self.timing.command_overhead;
        let xfer = self
            .timing
            .transfer((self.geometry.page_size + self.geometry.oob_size) as u64);
        let mut started_at = None;
        let mut completed_at = issue;
        for (idx, (ppa, data, oob)) in ops.iter().enumerate() {
            let fails = self.draw_program_fault(ppa.block_addr());
            let stored = if self.store_data {
                Some(data.to_vec().into_boxed_slice())
            } else {
                None
            };
            let mut oob = *oob;
            if oob.sequence == 0 {
                oob.sequence = self.next_sequence();
            }
            self.block_mut(ppa.block_addr()).record_program(ppa.page, stored, oob);
            self.note_programmed(now, ppa.block_addr());

            let (xfer_start, xfer_end) = self.channels[channel].occupy(issue, xfer);
            let (_, done) = self.dies[die_idx].occupy(xfer_end, self.timing.program_page);
            started_at.get_or_insert(xfer_start);
            completed_at = completed_at.max(done);

            self.stats.programs += 1;
            self.stats.bytes_written += self.geometry.page_size as u64;
            self.stats.program_latency.record(done.saturating_sub(now));
            self.stats.per_die_ops[die_idx] += 1;
            self.trace(TraceEntry {
                kind: OpKind::Program,
                issued_at: now,
                completed_at: done,
                ppa: Some(*ppa),
                block: None,
                lpn: oob.has_lpn().then_some(oob.lpn),
            });
            if fails {
                // Pages before this one committed and stay committed (the
                // failing [`Ppa`] in the error tells the issuer where the
                // run split); this page is consumed, later pages were never
                // transferred.
                self.block_mut(ppa.block_addr()).invalidate_page(ppa.page);
                self.stats.program_failures += 1;
                self.stats.multi_page_dispatches += 1;
                self.stats.batched_pages += (idx + 1) as u64;
                self.fault_completion = Some(OpCompletion {
                    started_at: started_at.unwrap_or(issue),
                    completed_at,
                });
                return Err(FlashError::ProgramFailed(*ppa));
            }
        }
        self.stats.multi_page_dispatches += 1;
        self.stats.batched_pages += ops.len() as u64;
        Ok(OpCompletion {
            started_at: started_at.unwrap_or(issue),
            completed_at,
        })
    }

    fn erase_block(&mut self, now: SimInstant, block: BlockAddr) -> FlashResult<OpCompletion> {
        self.tick_kills(now);
        self.check_block_addr(block)?;
        self.check_die_alive(block.die_addr())?;
        self.check_usable(block)?;

        // Wear: erasing past the endurance limit may kill the block.  The
        // fault plan's soft-knee erase failure is drawn only when the hard
        // wear-out model did not already fire (its own RNG; no draw when the
        // plan is off).
        let erase_count = self.block_ref(block).erase_count();
        let wears_out = self
            .bad_policy
            .wears_out(&mut self.rng, erase_count + 1, self.endurance);
        let erase_fails = !wears_out && self.draw_erase_fault(erase_count + 1);

        self.block_mut(block).erase();
        if wears_out || erase_fails {
            self.block_mut(block).mark_bad(BlockHealth::GrownBad);
        }

        let die_idx = self.die_index(block.die_addr());
        let issue = now + self.timing.command_overhead;
        let (start, done) = self.dies[die_idx].occupy(issue, self.timing.erase_block);
        let completion = OpCompletion {
            started_at: start,
            completed_at: done,
        };

        self.stats.erases += 1;
        self.stats.erase_latency.record(completion.latency_from(now));
        self.stats.per_die_ops[die_idx] += 1;
        self.trace(TraceEntry {
            kind: OpKind::Erase,
            issued_at: now,
            completed_at: done,
            ppa: None,
            block: Some(block),
            lpn: None,
        });

        if wears_out {
            return Err(FlashError::WornOut(block));
        }
        if erase_fails {
            self.stats.erase_failures += 1;
            self.fault_completion = Some(completion);
            return Err(FlashError::EraseFailed(block));
        }
        Ok(completion)
    }

    fn copyback(
        &mut self,
        now: SimInstant,
        src: Ppa,
        dst: Ppa,
        new_oob: Option<Oob>,
    ) -> FlashResult<OpCompletion> {
        self.tick_kills(now);
        self.check_ppa(src)?;
        self.check_ppa(dst)?;
        self.check_die_alive(src.die_addr())?;
        self.check_usable(src.block_addr())?;
        self.check_usable(dst.block_addr())?;
        // ONFI copyback keeps the data inside the plane's page register.
        if src.channel != dst.channel || src.die != dst.die || src.plane != dst.plane {
            return Err(FlashError::CopybackPlaneMismatch { src, dst });
        }
        let (data, src_oob) = {
            let page = self.block_ref(src.block_addr()).page(src.page);
            if page.state == PageState::Free {
                return Err(FlashError::ReadOfUnwrittenPage(src));
            }
            (page.data.clone(), page.oob)
        };
        {
            let block = self.block_ref(dst.block_addr());
            let page = block.page(dst.page);
            if page.state != PageState::Free {
                return Err(FlashError::ProgramOnDirtyPage(dst));
            }
            if self.strict_sequential && dst.page != block.next_program_page() {
                return Err(FlashError::NonSequentialProgram {
                    attempted: dst,
                    expected_page: block.next_program_page(),
                });
            }
        }
        let fails = self.draw_program_fault(dst.block_addr());
        let mut oob = new_oob.unwrap_or(src_oob);
        if oob.sequence == 0 {
            oob.sequence = self.next_sequence();
        }
        self.block_mut(dst.block_addr())
            .record_program(dst.page, data, oob);
        self.note_programmed(now, dst.block_addr());

        // Timing: array read + array program on the die, no channel transfer.
        let die_idx = self.die_index(src.die_addr());
        let issue = now + self.timing.command_overhead;
        let (start, done) = self.dies[die_idx]
            .occupy(issue, self.timing.read_page + self.timing.program_page);
        let completion = OpCompletion {
            started_at: start,
            completed_at: done,
        };

        self.stats.copybacks += 1;
        self.stats
            .copyback_latency
            .record(completion.latency_from(now));
        self.stats.per_die_ops[die_idx] += 1;
        self.trace(TraceEntry {
            kind: OpKind::Copyback,
            issued_at: now,
            completed_at: done,
            ppa: Some(dst),
            block: None,
            lpn: oob.has_lpn().then_some(oob.lpn),
        });
        if fails {
            // The program half of the copyback failed: the destination page
            // is consumed, the source page is untouched and still valid.
            self.block_mut(dst.block_addr()).invalidate_page(dst.page);
            self.stats.program_failures += 1;
            self.fault_completion = Some(completion);
            return Err(FlashError::ProgramFailed(dst));
        }
        Ok(completion)
    }

    fn invalidate_page(&mut self, ppa: Ppa) -> FlashResult<()> {
        self.check_ppa(ppa)?;
        self.block_mut(ppa.block_addr()).invalidate_page(ppa.page);
        Ok(())
    }

    fn stats(&self) -> &FlashStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::FlashGeometry;

    fn tiny_device() -> NandDevice {
        NandDevice::with_geometry(FlashGeometry::tiny())
    }

    fn page_of(dev: &NandDevice, byte: u8) -> Vec<u8> {
        vec![byte; dev.geometry().page_size as usize]
    }

    #[test]
    fn program_then_read_roundtrips_data_and_oob() {
        let mut dev = tiny_device();
        let ppa = Ppa::new(0, 0, 0, 0, 0);
        let data = page_of(&dev, 0xAB);
        dev.program_page(0, ppa, &data, Oob::data(42, 0)).unwrap();
        let mut buf = page_of(&dev, 0);
        let (oob, _) = dev.read_page(1000, ppa, &mut buf).unwrap();
        assert_eq!(buf, data);
        assert_eq!(oob.lpn, 42);
        assert!(oob.sequence > 0, "device assigns sequence numbers");
    }

    #[test]
    fn read_of_unwritten_page_is_an_error() {
        let mut dev = tiny_device();
        let mut buf = page_of(&dev, 0);
        let err = dev.read_page(0, Ppa::new(0, 0, 0, 0, 0), &mut buf).unwrap_err();
        assert!(matches!(err, FlashError::ReadOfUnwrittenPage(_)));
    }

    #[test]
    fn program_requires_sequential_pages() {
        let mut dev = tiny_device();
        let data = page_of(&dev, 1);
        let err = dev
            .program_page(0, Ppa::new(0, 0, 0, 0, 3), &data, Oob::data(1, 0))
            .unwrap_err();
        assert!(matches!(err, FlashError::NonSequentialProgram { .. }));
        // Programming page 0 then page 1 works.
        dev.program_page(0, Ppa::new(0, 0, 0, 0, 0), &data, Oob::data(1, 0))
            .unwrap();
        dev.program_page(0, Ppa::new(0, 0, 0, 0, 1), &data, Oob::data(2, 0))
            .unwrap();
    }

    #[test]
    fn reprogram_without_erase_is_an_error() {
        let mut dev = tiny_device();
        let data = page_of(&dev, 1);
        let ppa = Ppa::new(0, 0, 0, 0, 0);
        dev.program_page(0, ppa, &data, Oob::data(1, 0)).unwrap();
        let err = dev.program_page(0, ppa, &data, Oob::data(1, 0)).unwrap_err();
        assert!(matches!(
            err,
            FlashError::ProgramOnDirtyPage(_) | FlashError::NonSequentialProgram { .. }
        ));
    }

    #[test]
    fn erase_resets_block_and_allows_reprogram() {
        let mut dev = tiny_device();
        let data = page_of(&dev, 7);
        let block = BlockAddr::new(0, 0, 0, 0);
        for p in 0..dev.geometry().pages_per_block {
            dev.program_page(0, block.page(p), &data, Oob::data(p as u64, 0))
                .unwrap();
        }
        assert!(dev.block_info(block).unwrap().free_pages == 0);
        dev.erase_block(0, block).unwrap();
        let info = dev.block_info(block).unwrap();
        assert_eq!(info.free_pages, dev.geometry().pages_per_block);
        assert_eq!(info.erase_count, 1);
        dev.program_page(0, block.page(0), &data, Oob::data(0, 0))
            .unwrap();
    }

    #[test]
    fn buffer_size_is_checked() {
        let mut dev = tiny_device();
        let err = dev
            .program_page(0, Ppa::new(0, 0, 0, 0, 0), &[0u8; 10], Oob::default())
            .unwrap_err();
        assert!(matches!(err, FlashError::BufferSizeMismatch { .. }));
        // Write a page properly, then read with a wrong-size buffer.
        let data = page_of(&dev, 2);
        dev.program_page(0, Ppa::new(0, 0, 0, 0, 0), &data, Oob::data(0, 0))
            .unwrap();
        let mut small = [0u8; 10];
        let err = dev.read_page(0, Ppa::new(0, 0, 0, 0, 0), &mut small).unwrap_err();
        assert!(matches!(err, FlashError::BufferSizeMismatch { .. }));
    }

    #[test]
    fn invalid_addresses_are_rejected() {
        let mut dev = tiny_device();
        let data = page_of(&dev, 0);
        assert!(matches!(
            dev.program_page(0, Ppa::new(5, 0, 0, 0, 0), &data, Oob::default()),
            Err(FlashError::InvalidAddress { .. })
        ));
        assert!(matches!(
            dev.erase_block(0, BlockAddr::new(0, 0, 0, 99)),
            Err(FlashError::InvalidAddress { .. })
        ));
    }

    #[test]
    fn byte_counters_track_channel_transfers() {
        let mut dev = tiny_device();
        let page = dev.geometry().page_size as u64;
        let data = page_of(&dev, 0x3C);
        let ppa = Ppa::new(0, 0, 0, 0, 0);
        dev.program_page(0, ppa, &data, Oob::data(1, 0)).unwrap();
        assert_eq!(dev.stats().bytes_written, page);
        assert_eq!(dev.stats().bytes_read, 0);
        let mut buf = page_of(&dev, 0);
        dev.read_page(0, ppa, &mut buf).unwrap();
        dev.read_page(0, ppa, &mut buf).unwrap();
        assert_eq!(dev.stats().bytes_read, 2 * page);
        assert_eq!(dev.stats().bytes_written, page);
    }

    #[test]
    fn copyback_copies_within_plane_without_channel_transfer() {
        let mut dev = tiny_device();
        let data = page_of(&dev, 0x5A);
        let src = Ppa::new(0, 0, 0, 0, 0);
        let dst = Ppa::new(0, 0, 0, 1, 0);
        dev.program_page(0, src, &data, Oob::data(9, 0)).unwrap();
        let before_bytes = dev.stats().bytes_written;
        dev.copyback(0, src, dst, None).unwrap();
        assert_eq!(dev.stats().copybacks, 1);
        // Copyback moves no user data over the channel.
        assert_eq!(dev.stats().bytes_written, before_bytes);
        let mut buf = page_of(&dev, 0);
        let (oob, _) = dev.read_page(0, dst, &mut buf).unwrap();
        assert_eq!(buf, data);
        assert_eq!(oob.lpn, 9);
    }

    #[test]
    fn copyback_rejects_cross_die() {
        let g = FlashGeometry::small();
        let mut dev = NandDevice::with_geometry(g);
        let data = vec![1u8; g.page_size as usize];
        let src = Ppa::new(0, 0, 0, 0, 0);
        let dst = Ppa::new(1, 0, 0, 0, 0);
        dev.program_page(0, src, &data, Oob::data(1, 0)).unwrap();
        let err = dev.copyback(0, src, dst, None).unwrap_err();
        assert!(matches!(err, FlashError::CopybackPlaneMismatch { .. }));
    }

    #[test]
    fn invalidate_page_updates_block_info() {
        let mut dev = tiny_device();
        let data = page_of(&dev, 3);
        let ppa = Ppa::new(0, 0, 0, 0, 0);
        dev.program_page(0, ppa, &data, Oob::data(1, 0)).unwrap();
        dev.invalidate_page(ppa).unwrap();
        let info = dev.block_info(ppa.block_addr()).unwrap();
        assert_eq!(info.valid_pages, 0);
        assert_eq!(info.invalid_pages, 1);
    }

    #[test]
    fn stats_count_commands() {
        let mut dev = tiny_device();
        let data = page_of(&dev, 1);
        let b0 = BlockAddr::new(0, 0, 0, 0);
        dev.program_page(0, b0.page(0), &data, Oob::data(1, 0)).unwrap();
        dev.program_page(0, b0.page(1), &data, Oob::data(2, 0)).unwrap();
        let mut buf = page_of(&dev, 0);
        dev.read_page(0, b0.page(0), &mut buf).unwrap();
        dev.copyback(0, b0.page(0), BlockAddr::new(0, 0, 0, 1).page(0), None)
            .unwrap();
        dev.erase_block(0, b0).unwrap();
        let s = dev.stats();
        assert_eq!(s.programs, 2);
        assert_eq!(s.reads, 1);
        assert_eq!(s.copybacks, 1);
        assert_eq!(s.erases, 1);
        assert_eq!(s.total_ops(), 5);
    }

    #[test]
    fn parallel_dies_overlap_but_same_die_serialises() {
        let g = FlashGeometry::small();
        let mut dev = NandDevice::with_geometry(g);
        let data = vec![1u8; g.page_size as usize];
        // Two programs to different dies issued at t=0: array phases overlap.
        let a = dev
            .program_page(0, Ppa::new(0, 0, 0, 0, 0), &data, Oob::data(1, 0))
            .unwrap();
        let b = dev
            .program_page(0, Ppa::new(1, 0, 0, 0, 0), &data, Oob::data(2, 0))
            .unwrap();
        // Two programs to the same die serialise on the die.
        let c = dev
            .program_page(0, Ppa::new(0, 1, 0, 0, 0), &data, Oob::data(3, 0))
            .unwrap();
        let d = dev
            .program_page(0, Ppa::new(0, 1, 0, 0, 1), &data, Oob::data(4, 0))
            .unwrap();
        // Different channels: b should not be delayed by a.
        assert!(b.completed_at <= a.completed_at + dev.timing().program_page);
        // Same die: d cannot finish before c.
        assert!(d.completed_at > c.completed_at);
        // Same-die latency difference should be at least one program time.
        assert!(d.completed_at - c.completed_at >= dev.timing().program_page);
    }

    #[test]
    fn wear_out_grows_bad_block() {
        let g = FlashGeometry::tiny();
        let mut cfg = DeviceConfig::new(g);
        cfg.bad_blocks = BadBlockPolicy {
            factory_bad_fraction: 0.0,
            wear_out_failure_prob: 1.0,
            seed: 1,
        };
        let mut dev = NandDevice::new(cfg);
        // Shrink endurance artificially by erasing past the SLC limit would
        // take 100k iterations; instead check the policy path via the device's
        // own endurance field by erasing a block repeatedly up to just past a
        // tiny synthetic endurance.
        dev.endurance = 3;
        let b = BlockAddr::new(0, 0, 0, 0);
        for _ in 0..3 {
            dev.erase_block(0, b).unwrap();
        }
        let err = dev.erase_block(0, b).unwrap_err();
        assert!(matches!(err, FlashError::WornOut(_)));
        assert!(!dev.block_info(b).unwrap().usable);
        // Subsequent operations on the dead block are rejected.
        assert!(matches!(
            dev.erase_block(0, b),
            Err(FlashError::BadBlock(_))
        ));
    }

    #[test]
    fn factory_bad_blocks_are_unusable() {
        let g = FlashGeometry::small();
        let mut cfg = DeviceConfig::new(g);
        cfg.bad_blocks = BadBlockPolicy {
            factory_bad_fraction: 0.05,
            wear_out_failure_prob: 0.0,
            seed: 99,
        };
        let dev = NandDevice::new(cfg);
        let bad_count = (0..g.total_blocks())
            .filter(|&f| !dev.block_info(BlockAddr::from_flat(&g, f)).unwrap().usable)
            .count();
        assert!(bad_count > 0, "expected some factory bad blocks");
    }

    #[test]
    fn metadata_only_mode_skips_data_storage() {
        let g = FlashGeometry::tiny();
        let mut dev = NandDevice::new(DeviceConfig::metadata_only(g));
        let data = vec![0xEE; g.page_size as usize];
        let ppa = Ppa::new(0, 0, 0, 0, 0);
        dev.program_page(0, ppa, &data, Oob::data(5, 0)).unwrap();
        let mut buf = vec![0xFF; g.page_size as usize];
        let (oob, _) = dev.read_page(0, ppa, &mut buf).unwrap();
        assert_eq!(oob.lpn, 5);
        // Data is not retained in metadata-only mode; buffer is zero-filled.
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn tracer_records_when_enabled() {
        let g = FlashGeometry::tiny();
        let mut cfg = DeviceConfig::new(g);
        cfg.trace_capacity = 16;
        let mut dev = NandDevice::new(cfg);
        let data = vec![1u8; g.page_size as usize];
        dev.program_page(0, Ppa::new(0, 0, 0, 0, 0), &data, Oob::data(1, 0))
            .unwrap();
        dev.erase_block(0, BlockAddr::new(0, 0, 0, 1)).unwrap();
        assert_eq!(dev.tracer().entries().len(), 2);
        assert_eq!(dev.tracer().entries()[0].kind, OpKind::Program);
        assert_eq!(dev.tracer().entries()[1].kind, OpKind::Erase);
    }

    #[test]
    fn identify_reports_architecture() {
        let dev = NandDevice::with_geometry(FlashGeometry::openssd_like());
        let id = dev.identify();
        assert_eq!(id.geometry.total_dies(), 8);
        assert!(id.supports_copyback);
        assert!(id.endurance > 0);
        assert!(id.model.contains("SLC"));
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mut dev = tiny_device();
        let data = page_of(&dev, 1);
        dev.program_page(0, Ppa::new(0, 0, 0, 0, 0), &data, Oob::data(1, 0))
            .unwrap();
        assert_eq!(dev.stats().programs, 1);
        dev.reset_stats();
        assert_eq!(dev.stats().programs, 0);
        assert_eq!(dev.stats().total_ops(), 0);
    }

    #[test]
    fn multi_page_program_roundtrips_and_counts() {
        let mut dev = tiny_device();
        let data: Vec<Vec<u8>> = (0..4u8).map(|i| page_of(&dev, i)).collect();
        let b0 = BlockAddr::new(0, 0, 0, 0);
        let ops: Vec<(Ppa, &[u8], Oob)> = (0..4)
            .map(|i| (b0.page(i), data[i as usize].as_slice(), Oob::data(i as u64, 0)))
            .collect();
        let c = dev.program_pages(0, &ops).unwrap();
        assert!(c.completed_at > c.started_at);
        assert_eq!(dev.stats().programs, 4);
        assert_eq!(dev.stats().multi_page_dispatches, 1);
        assert_eq!(dev.stats().batched_pages, 4);
        for i in 0..4u32 {
            let mut buf = page_of(&dev, 0);
            let (oob, _) = dev.read_page(c.completed_at, b0.page(i), &mut buf).unwrap();
            assert_eq!(buf, data[i as usize]);
            assert_eq!(oob.lpn, i as u64);
        }
    }

    #[test]
    fn multi_page_program_beats_sequential_issue() {
        // The batched dispatch pays one command overhead and pipelines
        // transfers with cell programs; the sequential issuer waits for each
        // page to complete before issuing the next.
        let run = |batched: bool| -> u64 {
            let mut dev = tiny_device();
            let data = page_of(&dev, 1);
            let b0 = BlockAddr::new(0, 0, 0, 0);
            let ops: Vec<(Ppa, &[u8], Oob)> = (0..8)
                .map(|i| (b0.page(i), data.as_slice(), Oob::data(i as u64, 0)))
                .collect();
            if batched {
                dev.program_pages(0, &ops).unwrap().completed_at
            } else {
                let mut t = 0;
                for (ppa, d, oob) in &ops {
                    t = dev.program_page(t, *ppa, d, *oob).unwrap().completed_at;
                }
                t
            }
        };
        let sequential = run(false);
        let batched = run(true);
        assert!(
            batched < sequential,
            "batched run ({batched}) must beat sequential issue ({sequential})"
        );
    }

    #[test]
    fn multi_page_program_spans_blocks_on_one_die() {
        let mut dev = tiny_device(); // 8 pages per block
        let data = page_of(&dev, 7);
        let b0 = BlockAddr::new(0, 0, 0, 0);
        let b1 = BlockAddr::new(0, 0, 0, 1);
        let mut ops: Vec<(Ppa, &[u8], Oob)> = (0..8)
            .map(|i| (b0.page(i), data.as_slice(), Oob::data(i as u64, 0)))
            .collect();
        ops.push((b1.page(0), data.as_slice(), Oob::data(8, 0)));
        ops.push((b1.page(1), data.as_slice(), Oob::data(9, 0)));
        dev.program_pages(0, &ops).unwrap();
        assert_eq!(dev.block_info(b0).unwrap().free_pages, 0);
        assert_eq!(dev.block_info(b1).unwrap().next_program_page, 2);
    }

    #[test]
    fn multi_page_program_validates_before_mutating() {
        let g = FlashGeometry::small();
        let mut dev = NandDevice::with_geometry(g);
        let data = vec![1u8; g.page_size as usize];
        // Cross-die run is rejected as a whole: nothing is programmed.
        let ops = [
            (Ppa::new(0, 0, 0, 0, 0), data.as_slice(), Oob::data(1, 0)),
            (Ppa::new(1, 0, 0, 0, 0), data.as_slice(), Oob::data(2, 0)),
        ];
        assert!(matches!(
            dev.program_pages(0, &ops),
            Err(FlashError::InvalidAddress { .. })
        ));
        assert_eq!(dev.stats().programs, 0);
        assert_eq!(
            dev.page_state(Ppa::new(0, 0, 0, 0, 0)).unwrap(),
            PageState::Free,
            "failed batch must not leave partially programmed pages"
        );
        // Non-sequential run inside one block is also rejected atomically.
        let ops = [
            (Ppa::new(0, 0, 0, 0, 0), data.as_slice(), Oob::data(1, 0)),
            (Ppa::new(0, 0, 0, 0, 2), data.as_slice(), Oob::data(2, 0)),
        ];
        assert!(matches!(
            dev.program_pages(0, &ops),
            Err(FlashError::NonSequentialProgram { .. })
        ));
        assert_eq!(dev.stats().programs, 0);
        // Duplicate page inside a run can never program twice.
        let ops = [
            (Ppa::new(0, 0, 0, 0, 0), data.as_slice(), Oob::data(1, 0)),
            (Ppa::new(0, 0, 0, 0, 0), data.as_slice(), Oob::data(2, 0)),
        ];
        assert!(dev.program_pages(0, &ops).is_err());
        assert_eq!(dev.stats().programs, 0);
    }

    #[test]
    fn single_and_empty_batches_degenerate_to_plain_program() {
        let mut a = tiny_device();
        let mut b = tiny_device();
        let data = page_of(&a, 3);
        let ppa = Ppa::new(0, 0, 0, 0, 0);
        let c_plain = a.program_page(100, ppa, &data, Oob::data(5, 0)).unwrap();
        let c_batch = b
            .program_pages(100, &[(ppa, data.as_slice(), Oob::data(5, 0))])
            .unwrap();
        assert_eq!(c_plain, c_batch, "1-page batch must be timing-identical");
        assert_eq!(b.stats().multi_page_dispatches, 0);
        let c_empty = b.program_pages(500, &[]).unwrap();
        assert_eq!(c_empty.completed_at, 500);
    }

    #[test]
    fn submitted_run_at_depth_one_matches_synchronous_dispatch() {
        // Two back-to-back runs on one die.  Synchronous dispatch issues run 2
        // at run 1's completion; the queued path at depth 1 must compute the
        // exact same stamps even though both runs are submitted at t=0.
        let data_sync = {
            let mut dev = tiny_device();
            let data = page_of(&dev, 1);
            let b0 = BlockAddr::new(0, 0, 0, 0);
            let ops1: Vec<(Ppa, &[u8], Oob)> = (0..4)
                .map(|i| (b0.page(i), data.as_slice(), Oob::data(i as u64, 0)))
                .collect();
            let ops2: Vec<(Ppa, &[u8], Oob)> = (4..8)
                .map(|i| (b0.page(i), data.as_slice(), Oob::data(i as u64, 0)))
                .collect();
            let c1 = dev.program_pages(0, &ops1).unwrap();
            let c2 = dev.program_pages(c1.completed_at, &ops2).unwrap();
            (c1, c2)
        };
        let data_queued = {
            let mut dev = tiny_device();
            dev.set_queue_depth(1);
            let data = page_of(&dev, 1);
            let b0 = BlockAddr::new(0, 0, 0, 0);
            let ops1: Vec<(Ppa, &[u8], Oob)> = (0..4)
                .map(|i| (b0.page(i), data.as_slice(), Oob::data(i as u64, 0)))
                .collect();
            let ops2: Vec<(Ppa, &[u8], Oob)> = (4..8)
                .map(|i| (b0.page(i), data.as_slice(), Oob::data(i as u64, 0)))
                .collect();
            let q1 = dev.submit_program_pages(0, &ops1).unwrap();
            let q2 = dev.submit_program_pages(0, &ops2).unwrap();
            assert_eq!(q2.issued_at, q1.completion.completed_at, "depth 1 gates");
            assert_eq!(dev.stats().queue_gated_submissions, 1);
            (q1.completion, q2.completion)
        };
        assert_eq!(data_sync, data_queued);
    }

    #[test]
    fn deeper_queue_pipelines_same_die_runs() {
        // At depth >= 2 the second run's command transfer queues on the
        // channel right behind the first run's transfers instead of waiting
        // for the first run's last cell program: the pair finishes earlier.
        let run = |depth: usize| -> u64 {
            let mut dev = tiny_device();
            dev.set_queue_depth(depth);
            let data = page_of(&dev, 1);
            let b0 = BlockAddr::new(0, 0, 0, 0);
            let ops1: Vec<(Ppa, &[u8], Oob)> = (0..4)
                .map(|i| (b0.page(i), data.as_slice(), Oob::data(i as u64, 0)))
                .collect();
            let ops2: Vec<(Ppa, &[u8], Oob)> = (4..8)
                .map(|i| (b0.page(i), data.as_slice(), Oob::data(i as u64, 0)))
                .collect();
            dev.submit_program_pages(0, &ops1).unwrap();
            let q2 = dev.submit_program_pages(0, &ops2).unwrap();
            q2.completion.completed_at
        };
        let sync = run(1);
        let deep = run(4);
        assert!(
            deep < sync,
            "pipelined submission ({deep}) must beat depth-1 dispatch ({sync})"
        );
    }

    #[test]
    fn poll_and_drain_report_submitted_commands() {
        let g = FlashGeometry::small();
        let mut dev = NandDevice::with_geometry(g);
        dev.set_queue_depth(4);
        let data = vec![1u8; g.page_size as usize];
        let a = dev
            .submit_program_pages(0, &[(Ppa::new(0, 0, 0, 0, 0), data.as_slice(), Oob::data(1, 0))])
            .unwrap();
        let b = dev
            .submit_program_pages(0, &[(Ppa::new(1, 0, 0, 0, 0), data.as_slice(), Oob::data(2, 0))])
            .unwrap();
        let e = dev.submit_erase(0, BlockAddr::new(0, 1, 0, 3)).unwrap();
        assert_eq!(dev.stats().queued_submissions, 3);
        assert_eq!(dev.inflight_on(DieAddr::new(0, 0), 0), 1);
        let polled = dev.poll_completions();
        assert_eq!(polled.len(), 3);
        assert_eq!(polled[0].id, a.id);
        assert_eq!(polled[1].id, b.id);
        assert_eq!(polled[2].kind, OpKind::Erase);
        let barrier = dev.drain_queues(0);
        let slowest = [a, b, e]
            .iter()
            .map(|q| q.completion.completed_at)
            .max()
            .unwrap();
        assert_eq!(barrier, slowest);
        assert!(dev.poll_completions().is_empty());
    }

    #[test]
    fn failed_submission_does_not_evict_inflight_commands() {
        let g = FlashGeometry::tiny();
        let mut cfg = DeviceConfig::new(g);
        cfg.endurance_override = Some(0); // every erase wears out
        let mut dev = NandDevice::new(cfg);
        dev.set_queue_depth(1);
        let data = page_of(&dev, 1);
        let q1 = dev
            .submit_program_pages(0, &[(Ppa::new(0, 0, 0, 0, 0), data.as_slice(), Oob::data(1, 0))])
            .unwrap();
        // The erase is admitted (gated behind q1) but fails with WornOut.
        assert!(matches!(
            dev.submit_erase(0, BlockAddr::new(0, 0, 0, 1)),
            Err(FlashError::WornOut(_))
        ));
        // q1 must still be tracked: the barrier covers its completion.
        assert_eq!(dev.drain_queues(0), q1.completion.completed_at);
        assert_eq!(dev.stats().queued_submissions, 1);
    }

    #[test]
    fn submit_empty_run_completes_immediately() {
        let mut dev = tiny_device();
        let q = dev.submit_program_pages(42, &[]).unwrap();
        assert_eq!(q.completion.completed_at, 42);
        assert_eq!(dev.stats().queued_submissions, 0);
        assert!(dev.poll_completions().is_empty());
    }

    #[test]
    fn multi_page_read_roundtrips_and_counts() {
        let mut dev = tiny_device();
        let data: Vec<Vec<u8>> = (0..4u8).map(|i| page_of(&dev, i)).collect();
        let b0 = BlockAddr::new(0, 0, 0, 0);
        for i in 0..4u32 {
            dev.program_page(0, b0.page(i), &data[i as usize], Oob::data(i as u64, 0))
                .unwrap();
        }
        let mut bufs: Vec<Vec<u8>> = (0..4).map(|_| page_of(&dev, 0)).collect();
        let mut ops: Vec<(Ppa, &mut [u8])> = bufs
            .iter_mut()
            .enumerate()
            .map(|(i, b)| (b0.page(i as u32), b.as_mut_slice()))
            .collect();
        let c = dev.read_pages(1_000_000, &mut ops).unwrap();
        assert!(c.completed_at > c.started_at);
        assert_eq!(dev.stats().reads, 4);
        assert_eq!(dev.stats().multi_page_read_dispatches, 1);
        assert_eq!(dev.stats().batched_read_pages, 4);
        assert_eq!(dev.stats().per_die_reads[0], 4);
        for (i, buf) in bufs.iter().enumerate() {
            assert_eq!(buf, &data[i]);
        }
    }

    #[test]
    fn multi_page_read_beats_sequential_issue() {
        // The batched dispatch pays one command overhead and pipelines array
        // senses with channel transfers; the sequential issuer waits for each
        // page to complete before issuing the next.
        let run = |batched: bool| -> u64 {
            let mut dev = tiny_device();
            let data = page_of(&dev, 1);
            let b0 = BlockAddr::new(0, 0, 0, 0);
            for i in 0..8u32 {
                dev.program_page(0, b0.page(i), &data, Oob::data(i as u64, 0))
                    .unwrap();
            }
            let t0 = dev.die_busy_until(DieAddr::new(0, 0));
            if batched {
                let mut bufs: Vec<Vec<u8>> = (0..8).map(|_| page_of(&dev, 0)).collect();
                let mut ops: Vec<(Ppa, &mut [u8])> = bufs
                    .iter_mut()
                    .enumerate()
                    .map(|(i, b)| (b0.page(i as u32), b.as_mut_slice()))
                    .collect();
                dev.read_pages(t0, &mut ops).unwrap().completed_at - t0
            } else {
                let mut t = t0;
                let mut buf = page_of(&dev, 0);
                for i in 0..8u32 {
                    t = dev.read_page(t, b0.page(i), &mut buf).unwrap().1.completed_at;
                }
                t - t0
            }
        };
        let sequential = run(false);
        let batched = run(true);
        assert!(
            batched < sequential,
            "batched read run ({batched}) must beat sequential issue ({sequential})"
        );
    }

    #[test]
    fn single_and_empty_read_batches_degenerate_to_plain_read() {
        let mut a = tiny_device();
        let mut b = tiny_device();
        let data = page_of(&a, 3);
        let ppa = Ppa::new(0, 0, 0, 0, 0);
        a.program_page(0, ppa, &data, Oob::data(5, 0)).unwrap();
        b.program_page(0, ppa, &data, Oob::data(5, 0)).unwrap();
        let mut buf_a = page_of(&a, 0);
        let (_, c_plain) = a.read_page(9000, ppa, &mut buf_a).unwrap();
        let mut buf_b = page_of(&b, 0);
        let c_batch = b
            .read_pages(9000, &mut [(ppa, buf_b.as_mut_slice())])
            .unwrap();
        assert_eq!(c_plain, c_batch, "1-page read batch must be timing-identical");
        assert_eq!(buf_a, buf_b);
        assert_eq!(b.stats().multi_page_read_dispatches, 0);
        let c_empty = b.read_pages(500, &mut []).unwrap();
        assert_eq!(c_empty.completed_at, 500);
    }

    #[test]
    fn multi_page_read_validates_before_filling() {
        let g = FlashGeometry::small();
        let mut dev = NandDevice::with_geometry(g);
        let data = vec![1u8; g.page_size as usize];
        dev.program_page(0, Ppa::new(0, 0, 0, 0, 0), &data, Oob::data(1, 0))
            .unwrap();
        dev.program_page(0, Ppa::new(1, 0, 0, 0, 0), &data, Oob::data(2, 0))
            .unwrap();
        dev.reset_stats();
        // Cross-die run is rejected as a whole: no buffer is touched.
        let mut b0 = vec![0xEE; g.page_size as usize];
        let mut b1 = vec![0xEE; g.page_size as usize];
        let mut ops = [
            (Ppa::new(0, 0, 0, 0, 0), b0.as_mut_slice()),
            (Ppa::new(1, 0, 0, 0, 0), b1.as_mut_slice()),
        ];
        assert!(matches!(
            dev.read_pages(0, &mut ops),
            Err(FlashError::InvalidAddress { .. })
        ));
        assert_eq!(dev.stats().reads, 0);
        assert!(b0.iter().all(|&x| x == 0xEE), "failed batch must not fill buffers");
        // A run touching an unwritten page fails atomically too.
        let mut ops = [
            (Ppa::new(0, 0, 0, 0, 0), b0.as_mut_slice()),
            (Ppa::new(0, 0, 0, 1, 0), b1.as_mut_slice()),
        ];
        assert!(matches!(
            dev.read_pages(0, &mut ops),
            Err(FlashError::ReadOfUnwrittenPage(_))
        ));
        assert_eq!(dev.stats().reads, 0);
        assert!(b0.iter().all(|&x| x == 0xEE));
    }

    #[test]
    fn submitted_read_at_depth_one_matches_synchronous_dispatch() {
        // Two back-to-back read runs on one die: the queued path at depth 1
        // must compute the exact same stamps the synchronous issuer sees.
        let fill = |dev: &mut NandDevice| {
            let data = page_of(dev, 1);
            let b0 = BlockAddr::new(0, 0, 0, 0);
            for i in 0..8u32 {
                dev.program_page(0, b0.page(i), &data, Oob::data(i as u64, 0))
                    .unwrap();
            }
        };
        let sync = {
            let mut dev = tiny_device();
            fill(&mut dev);
            let b0 = BlockAddr::new(0, 0, 0, 0);
            let mut bufs: Vec<Vec<u8>> = (0..8).map(|_| page_of(&dev, 0)).collect();
            let (first, second) = bufs.split_at_mut(4);
            let mut ops1: Vec<(Ppa, &mut [u8])> = first
                .iter_mut()
                .enumerate()
                .map(|(i, b)| (b0.page(i as u32), b.as_mut_slice()))
                .collect();
            let mut ops2: Vec<(Ppa, &mut [u8])> = second
                .iter_mut()
                .enumerate()
                .map(|(i, b)| (b0.page(4 + i as u32), b.as_mut_slice()))
                .collect();
            let t0 = 10_000_000;
            let c1 = dev.read_pages(t0, &mut ops1).unwrap();
            let c2 = dev.read_pages(c1.completed_at, &mut ops2).unwrap();
            (c1, c2)
        };
        let queued = {
            let mut dev = tiny_device();
            dev.set_queue_depth(1);
            fill(&mut dev);
            let b0 = BlockAddr::new(0, 0, 0, 0);
            let mut bufs: Vec<Vec<u8>> = (0..8).map(|_| page_of(&dev, 0)).collect();
            let (first, second) = bufs.split_at_mut(4);
            let mut ops1: Vec<(Ppa, &mut [u8])> = first
                .iter_mut()
                .enumerate()
                .map(|(i, b)| (b0.page(i as u32), b.as_mut_slice()))
                .collect();
            let mut ops2: Vec<(Ppa, &mut [u8])> = second
                .iter_mut()
                .enumerate()
                .map(|(i, b)| (b0.page(4 + i as u32), b.as_mut_slice()))
                .collect();
            let t0 = 10_000_000;
            let q1 = dev.submit_read_pages(t0, &mut ops1).unwrap();
            let q2 = dev.submit_read_pages(t0, &mut ops2).unwrap();
            assert_eq!(q2.issued_at, q1.completion.completed_at, "depth 1 gates");
            assert_eq!(dev.stats().queued_reads, 2);
            assert_eq!(dev.stats().read_stalls, 1);
            (q1.completion, q2.completion)
        };
        assert_eq!(sync, queued);
    }

    #[test]
    fn queued_read_gates_behind_inflight_program_and_counts_stalls() {
        // Regression for the FlashStats read counters: a point read submitted
        // while a program run occupies the die queue must be gated (a read
        // stall), counted in queued_reads/read_stalls and in the per-die read
        // occupancy — exactly like program/erase traffic already is.
        let mut dev = tiny_device();
        dev.set_queue_depth(1);
        let data = page_of(&dev, 7);
        let b0 = BlockAddr::new(0, 0, 0, 0);
        let ops: Vec<(Ppa, &[u8], Oob)> = (0..4)
            .map(|i| (b0.page(i), data.as_slice(), Oob::data(i as u64, 0)))
            .collect();
        let q = dev.submit_program_pages(0, &ops).unwrap();
        let mut buf = page_of(&dev, 0);
        let (oob, r) = dev.submit_read_page(0, b0.page(0), &mut buf).unwrap();
        assert_eq!(oob.lpn, 0);
        assert_eq!(buf, data);
        assert_eq!(
            r.issued_at,
            q.completion.completed_at,
            "the read must queue behind the in-flight program run"
        );
        assert!(r.completion.completed_at > q.completion.completed_at);
        let s = dev.stats();
        assert_eq!(s.queued_reads, 1);
        assert_eq!(s.read_stalls, 1);
        assert_eq!(s.queued_submissions, 2);
        assert_eq!(s.per_die_reads, vec![1]);
        assert_eq!(s.per_die_ops[0], 5, "4 programs + 1 read on die 0");
        // Both completions are pollable, in submit order.
        let polled = dev.poll_completions();
        assert_eq!(polled.len(), 2);
        assert_eq!(polled[0].kind, OpKind::Program);
        assert_eq!(polled[1].kind, OpKind::Read);
        // An ungated read on an idle die is not a stall.
        dev.drain_queues(r.completion.completed_at);
        let (_, r2) = dev
            .submit_read_page(r.completion.completed_at, b0.page(1), &mut buf)
            .unwrap();
        assert_eq!(r2.issued_at, r2.submitted_at);
        assert_eq!(dev.stats().read_stalls, 1, "ungated read is not a stall");
    }

    #[test]
    fn endurance_override_shrinks_endurance() {
        let g = FlashGeometry::tiny();
        let mut cfg = DeviceConfig::new(g);
        cfg.endurance_override = Some(2);
        cfg.bad_blocks = BadBlockPolicy {
            factory_bad_fraction: 0.0,
            wear_out_failure_prob: 1.0,
            seed: 1,
        };
        let mut dev = NandDevice::new(cfg);
        assert_eq!(dev.endurance(), 2);
        let b = BlockAddr::new(0, 0, 0, 0);
        dev.erase_block(0, b).unwrap();
        dev.erase_block(0, b).unwrap();
        assert!(matches!(
            dev.erase_block(0, b),
            Err(FlashError::WornOut(_))
        ));
    }

    #[test]
    fn wear_accounting_helpers() {
        let mut dev = tiny_device();
        let b0 = BlockAddr::new(0, 0, 0, 0);
        let b1 = BlockAddr::new(0, 0, 0, 1);
        dev.erase_block(0, b0).unwrap();
        dev.erase_block(0, b0).unwrap();
        dev.erase_block(0, b1).unwrap();
        assert_eq!(dev.max_erase_count(), 2);
        let mean = dev.mean_erase_count();
        assert!(mean > 0.0 && mean < 1.0);
    }

    use crate::fault::FaultPlan;

    /// A device with an explicitly set fault plan (ignores the env knob so
    /// these tests are deterministic under any `NOFTL_FAULTS` setting).
    fn faulty_device(plan: FaultPlan) -> NandDevice {
        let mut cfg = DeviceConfig::new(FlashGeometry::tiny());
        cfg.faults = Some(plan);
        NandDevice::new(cfg)
    }

    fn certain_program_failure() -> FaultPlan {
        let mut plan = FaultPlan::seeded(7);
        plan.program_fail_base = 1.0;
        plan
    }

    #[test]
    fn program_failure_consumes_the_page_and_counts() {
        let mut dev = faulty_device(certain_program_failure());
        let data = page_of(&dev, 0x11);
        let ppa = Ppa::new(0, 0, 0, 0, 0);
        let err = dev.program_page(0, ppa, &data, Oob::data(1, 0)).unwrap_err();
        assert_eq!(err, FlashError::ProgramFailed(ppa));
        assert_eq!(dev.stats().program_failures, 1);
        assert_eq!(dev.stats().programs, 1, "the attempt still cost a program");
        // The page is consumed: sequential rule moves on, the page is invalid.
        let info = dev.block_info(ppa.block_addr()).unwrap();
        assert_eq!(info.valid_pages, 0);
        assert_eq!(info.invalid_pages, 1);
        // The block is NOT device-retired: the DBMS decides after relocation.
        assert!(dev.block_info(ppa.block_addr()).unwrap().usable);
    }

    #[test]
    fn batched_program_failure_keeps_the_committed_prefix() {
        let mut plan = FaultPlan::seeded(7);
        // Draw order per page: one program draw each; fail the third draw.
        plan.program_fail_base = 0.0;
        let mut dev = faulty_device(plan);
        let data = page_of(&dev, 0x22);
        let block = BlockAddr::new(0, 0, 0, 0);
        let ops: Vec<(Ppa, &[u8], Oob)> = (0..3)
            .map(|p| (block.page(p), data.as_slice(), Oob::data(p as u64, 0)))
            .collect();
        // base 0.0 never fails: whole run commits.
        dev.program_pages(0, &ops).unwrap();
        dev.erase_block(1, block).unwrap();
        // Now a certain-failure plan: first page of the run fails, nothing
        // after it is charged.
        dev.set_fault_plan(Some(certain_program_failure()));
        let err = dev.program_pages(2, &ops).unwrap_err();
        assert_eq!(err, FlashError::ProgramFailed(block.page(0)));
        let info = dev.block_info(block).unwrap();
        assert_eq!(info.valid_pages, 0);
        assert_eq!(info.invalid_pages, 1, "only the failing page was consumed");
    }

    #[test]
    fn erase_failure_marks_the_block_grown_bad() {
        let mut plan = FaultPlan::seeded(3);
        plan.erase_fail_knee = 0.99;
        plan.erase_fail_prob = 1.0;
        let mut cfg = DeviceConfig::new(FlashGeometry::tiny());
        cfg.faults = Some(plan);
        cfg.endurance_override = Some(4);
        let mut dev = NandDevice::new(cfg);
        let b = BlockAddr::new(0, 0, 0, 0);
        // Below the knee the plan never even draws; at full wear (the 4th
        // erase reaches erase_count == endurance) the ramp hits 1.0.
        for t in 0..3u64 {
            dev.erase_block(t, b).unwrap();
        }
        let err = dev.erase_block(10, b).unwrap_err();
        assert_eq!(err, FlashError::EraseFailed(b));
        assert_eq!(dev.stats().erase_failures, 1);
        assert!(!dev.block_info(b).unwrap().usable);
        // Further operations on the block are rejected as bad-block ops.
        let data = page_of(&dev, 0);
        assert!(matches!(
            dev.program_page(1, b.page(0), &data, Oob::data(0, 0)),
            Err(FlashError::BadBlock(_))
        ));
    }

    #[test]
    fn read_faults_split_into_corrected_and_uncorrectable() {
        let mut plan = FaultPlan::seeded(5);
        plan.read_error_base = 1.0;
        plan.uncorrectable_fraction = 0.0;
        let mut dev = faulty_device(plan);
        let data = page_of(&dev, 0x33);
        let ppa = Ppa::new(0, 0, 0, 0, 0);
        dev.program_page(0, ppa, &data, Oob::data(4, 0)).unwrap();
        let mut buf = page_of(&dev, 0);
        // Every read hits bit errors but ECC corrects them all.
        dev.read_page(1_000, ppa, &mut buf).unwrap();
        assert_eq!(buf, data);
        assert_eq!(dev.stats().corrected_reads, 1);
        assert_eq!(dev.stats().uncorrectable_reads, 0);
        // Now every error overwhelms ECC.
        let mut plan = FaultPlan::seeded(5);
        plan.read_error_base = 1.0;
        plan.uncorrectable_fraction = 1.0;
        dev.set_fault_plan(Some(plan));
        let err = dev.read_page(2_000, ppa, &mut buf).unwrap_err();
        assert_eq!(err, FlashError::UncorrectableEcc(ppa));
        assert_eq!(dev.stats().uncorrectable_reads, 1);
        // Read-disturb stress accumulated on the block across both reads.
        assert_eq!(dev.read_disturb(ppa.block_addr()).unwrap(), 2);
    }

    #[test]
    fn failed_submissions_surface_in_the_poll_stream() {
        let mut dev = faulty_device(certain_program_failure());
        dev.set_queue_depth(4);
        let data = page_of(&dev, 0x44);
        let ppa = Ppa::new(0, 0, 0, 0, 0);
        let ops: Vec<(Ppa, &[u8], Oob)> = vec![(ppa, data.as_slice(), Oob::data(1, 0))];
        let err = dev.submit_program_pages(0, &ops).unwrap_err();
        assert_eq!(err, FlashError::ProgramFailed(ppa));
        let polled = dev.poll_completions();
        assert_eq!(polled.len(), 1, "the failed command still completes");
        assert_eq!(polled[0].status, CommandStatus::ProgramFailed(ppa));
        assert_eq!(polled[0].result(), Err(FlashError::ProgramFailed(ppa)));
        assert_eq!(dev.stats().queued_submissions, 1);
    }

    #[test]
    fn same_fault_seed_reproduces_the_same_failures() {
        let run = |seed: u64| -> (Vec<bool>, FlashStats) {
            let mut plan = FaultPlan::seeded(seed);
            plan.program_fail_base = 0.3;
            plan.read_error_base = 0.3;
            let mut dev = faulty_device(plan);
            let data = page_of(&dev, 0x55);
            let block = BlockAddr::new(0, 0, 0, 0);
            let mut outcomes = Vec::new();
            let mut buf = page_of(&dev, 0);
            for p in 0..dev.geometry().pages_per_block {
                let ppa = block.page(p);
                let ok = dev.program_page(0, ppa, &data, Oob::data(p as u64, 0)).is_ok();
                outcomes.push(ok);
                if ok {
                    outcomes.push(dev.read_page(1_000, ppa, &mut buf).is_ok());
                }
            }
            (outcomes, dev.stats().clone())
        };
        let (a_out, a_stats) = run(42);
        let (b_out, b_stats) = run(42);
        assert_eq!(a_out, b_out);
        assert_eq!(a_stats.program_failures, b_stats.program_failures);
        assert_eq!(a_stats.uncorrectable_reads, b_stats.uncorrectable_reads);
        assert_eq!(a_stats.corrected_reads, b_stats.corrected_reads);
        // A different seed produces a different failure pattern (with these
        // probabilities the chance of an identical 64+-draw sequence is nil).
        let (c_out, _) = run(43);
        assert_ne!(a_out, c_out);
    }

    /// A small()-geometry device (4 dies) with every probabilistic failure
    /// mode zeroed, so only the deterministic kill specs of `plan` can fire.
    fn kill_only_device(plan: FaultPlan) -> NandDevice {
        let mut plan = plan;
        plan.program_fail_base = 0.0;
        plan.erase_fail_prob = 0.0;
        plan.read_error_base = 0.0;
        let mut cfg = DeviceConfig::new(FlashGeometry::small());
        cfg.faults = Some(plan);
        NandDevice::new(cfg)
    }

    #[test]
    fn die_kill_fires_at_the_seeded_command_index() {
        let plan = FaultPlan::seeded(1).with_die_kill(2, 1);
        let mut dev = kill_only_device(plan);
        let data = page_of(&dev, 0x11);
        // Command 0: die 0.  Command 1: die 1.  Command 2 fires the kill.
        dev.program_page(0, Ppa::new(0, 0, 0, 0, 0), &data, Oob::data(1, 0))
            .unwrap();
        dev.program_page(0, Ppa::new(0, 1, 0, 0, 0), &data, Oob::data(2, 0))
            .unwrap();
        let err = dev
            .program_page(0, Ppa::new(0, 1, 0, 0, 1), &data, Oob::data(3, 0))
            .unwrap_err();
        assert_eq!(err, FlashError::DieFailed(DieAddr::new(0, 1)));
        assert!(dev.is_die_dead(DieAddr::new(0, 1)));
        assert!(dev.any_die_dead());
        assert_eq!(dev.stats().die_failures, 1);
        assert_eq!(dev.stats().dead_die_rejections, 1);
        // The surviving dies keep working; the dead one rejects reads too.
        dev.program_page(0, Ppa::new(1, 0, 0, 0, 0), &data, Oob::data(4, 0))
            .unwrap();
        let mut buf = page_of(&dev, 0);
        let err = dev.read_page(0, Ppa::new(0, 1, 0, 0, 0), &mut buf).unwrap_err();
        assert_eq!(err, FlashError::DieFailed(DieAddr::new(0, 1)));
        assert_eq!(dev.stats().dead_die_rejections, 2);
        // Host bookkeeping on a dead die stays allowed.
        dev.invalidate_page(Ppa::new(0, 1, 0, 0, 0)).unwrap();
        dev.mark_block_bad(BlockAddr::new(0, 1, 0, 0)).unwrap();
    }

    #[test]
    fn channel_kill_takes_down_every_die_on_the_channel() {
        let plan = FaultPlan::seeded(1).with_channel_kill(0, 1);
        let mut dev = kill_only_device(plan);
        let data = page_of(&dev, 0x22);
        // The very first command fires the kill: channel 1 = flat dies 2, 3.
        let err = dev
            .program_page(0, Ppa::new(1, 0, 0, 0, 0), &data, Oob::data(1, 0))
            .unwrap_err();
        assert_eq!(err, FlashError::DieFailed(DieAddr::new(1, 0)));
        assert!(dev.is_die_dead(DieAddr::new(1, 0)));
        assert!(dev.is_die_dead(DieAddr::new(1, 1)));
        assert!(!dev.is_die_dead(DieAddr::new(0, 0)));
        assert_eq!(dev.stats().die_failures, 2);
        assert_eq!(dev.dead_dies(), &[false, false, true, true]);
        // Channel-0 dies are untouched.
        dev.program_page(0, Ppa::new(0, 0, 0, 0, 0), &data, Oob::data(2, 0))
            .unwrap();
    }

    #[test]
    fn die_kill_fails_inflight_queued_commands() {
        let plan = FaultPlan::seeded(1).with_die_kill(1, 1);
        let mut dev = kill_only_device(plan);
        dev.set_queue_depth(8);
        let data = page_of(&dev, 0x33);
        // Command 0: a queued 2-page program on die 1, in flight past t=0.
        let ops = [
            (Ppa::new(0, 1, 0, 0, 0), data.as_slice(), Oob::data(1, 0)),
            (Ppa::new(0, 1, 0, 0, 1), data.as_slice(), Oob::data(2, 0)),
        ];
        dev.submit_program_pages(0, &ops).unwrap();
        // Command 1 fires the kill; the submission itself is then rejected.
        let mut buf = page_of(&dev, 0);
        let err = dev
            .submit_read_page(0, Ppa::new(0, 1, 0, 0, 0), &mut buf)
            .unwrap_err();
        assert_eq!(err, FlashError::DieFailed(DieAddr::new(0, 1)));
        assert_eq!(dev.stats().die_failures, 1);
        assert_eq!(
            dev.stats().inflight_die_failures,
            1,
            "the in-flight program completes with an error"
        );
        let polled = dev.poll_completions();
        assert_eq!(polled.len(), 1);
        assert_eq!(
            polled[0].status,
            CommandStatus::DieFailed(DieAddr::new(0, 1)),
            "the poll stream reports the lost in-flight command"
        );
        assert_eq!(dev.inflight_on(DieAddr::new(0, 1), 0), 0);
    }

    #[test]
    fn faults_off_keeps_the_device_fault_free() {
        let mut cfg = DeviceConfig::new(FlashGeometry::tiny());
        cfg.faults = None;
        let mut dev = NandDevice::new(cfg);
        let data = page_of(&dev, 0x66);
        let block = BlockAddr::new(0, 0, 0, 0);
        let mut buf = page_of(&dev, 0);
        for p in 0..dev.geometry().pages_per_block {
            dev.program_page(0, block.page(p), &data, Oob::data(p as u64, 0))
                .unwrap();
            dev.read_page(1_000, block.page(p), &mut buf).unwrap();
        }
        dev.erase_block(2_000, block).unwrap();
        assert_eq!(dev.stats().program_failures, 0);
        assert_eq!(dev.stats().erase_failures, 0);
        assert_eq!(dev.stats().corrected_reads, 0);
        assert_eq!(dev.stats().uncorrectable_reads, 0);
        // Read-disturb bookkeeping is not even maintained when faults are off
        // (the hot read path must stay untouched).
        assert_eq!(dev.read_disturb(block).unwrap(), 0);
    }
}
