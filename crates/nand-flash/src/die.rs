//! Dies (LUNs): the unit of command parallelism.
//!
//! A die can execute one array operation at a time; different dies operate in
//! parallel.  The die keeps an occupancy [`Timeline`] so the device can model
//! queueing when several actors (db-writers, GC, foreground reads) target the
//! same die — the contention effect behind Figure 4 of the paper.  By default
//! the timeline is the pinned `busy_until` ratchet; the multi-client engine
//! enables gap backfilling so concurrent clients whose commands arrive out of
//! timestamp order are not penalised (see [`crate::timeline`]).

use sim_utils::time::{SimDuration, SimInstant};

use crate::block::Block;
use crate::timeline::Timeline;

/// A single NAND die (LUN) holding `planes × blocks_per_plane` erase blocks.
#[derive(Debug, Clone)]
pub struct Die {
    /// Blocks, indexed by `plane * blocks_per_plane + block`.
    blocks: Vec<Block>,
    /// Busy periods of the die's array (gap-aware).
    timeline: Timeline,
    /// Total busy time accumulated (for utilisation reporting).
    busy_time: SimDuration,
    /// Number of array operations executed.
    ops: u64,
}

impl Die {
    /// Create a die with `blocks` erase blocks of `pages_per_block` pages.
    pub fn new(blocks: u32, pages_per_block: u32) -> Self {
        Self {
            blocks: (0..blocks).map(|_| Block::new(pages_per_block)).collect(),
            timeline: Timeline::new(),
            busy_time: 0,
            ops: 0,
        }
    }

    /// Immutable access to a block by die-local index.
    pub fn block(&self, idx: u32) -> &Block {
        &self.blocks[idx as usize]
    }

    /// Mutable access to a block by die-local index.
    pub fn block_mut(&mut self, idx: u32) -> &mut Block {
        &mut self.blocks[idx as usize]
    }

    /// Number of blocks on the die.
    pub fn block_count(&self) -> u32 {
        self.blocks.len() as u32
    }

    /// The instant until which the die is occupied.
    pub fn busy_until(&self) -> SimInstant {
        self.timeline.busy_until()
    }

    /// Enable or disable gap-backfilling occupancy (default off: the
    /// pinned `busy_until` ratchet; see [`crate::timeline`]).
    pub fn set_backfill_occupancy(&mut self, on: bool) {
        self.timeline.set_backfill(on);
    }

    /// Total accumulated busy time.
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }

    /// Number of array operations executed on this die.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Reserve the die for an array operation of length `duration`, starting
    /// no earlier than `earliest_start`: at the tail by default, in the
    /// earliest idle gap that fits with backfill on. Returns `(start, end)`.
    pub fn occupy(
        &mut self,
        earliest_start: SimInstant,
        duration: SimDuration,
    ) -> (SimInstant, SimInstant) {
        let (start, end) = self.timeline.reserve(earliest_start, duration);
        self.busy_time += duration;
        self.ops += 1;
        (start, end)
    }

    /// Utilisation of the die over `[0, horizon]` (clamped to 1.0).
    pub fn utilisation(&self, horizon: SimInstant) -> f64 {
        if horizon == 0 {
            0.0
        } else {
            (self.busy_time as f64 / horizon as f64).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupy_serialises_operations() {
        let mut die = Die::new(4, 8);
        let (s1, e1) = die.occupy(100, 50);
        assert_eq!((s1, e1), (100, 150));
        // Second op issued "in the past" still has to wait for the die.
        let (s2, e2) = die.occupy(120, 30);
        assert_eq!((s2, e2), (150, 180));
        // Op issued after the die went idle starts immediately.
        let (s3, e3) = die.occupy(500, 10);
        assert_eq!((s3, e3), (500, 510));
        assert_eq!(die.ops(), 3);
        assert_eq!(die.busy_time(), 90);
    }

    #[test]
    fn utilisation_is_bounded() {
        let mut die = Die::new(1, 8);
        die.occupy(0, 100);
        assert!((die.utilisation(200) - 0.5).abs() < 1e-12);
        assert_eq!(die.utilisation(0), 0.0);
        assert!(die.utilisation(50) <= 1.0);
    }

    #[test]
    fn blocks_are_independent() {
        let mut die = Die::new(2, 4);
        die.block_mut(0)
            .record_program(0, None, crate::oob::Oob::data(1, 1));
        assert_eq!(die.block(0).valid_pages(), 1);
        assert_eq!(die.block(1).valid_pages(), 0);
    }
}
