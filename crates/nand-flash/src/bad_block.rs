//! Factory and grown bad-block modelling.
//!
//! Real NAND ships with a small fraction of factory-marked bad blocks and
//! grows more as blocks approach their endurance limit.  Under NoFTL the
//! *DBMS* owns the bad-block manager (paper, Figure 2), so the device model
//! must be able to produce both kinds of failures deterministically.

use serde::{Deserialize, Serialize};
use sim_utils::rng::SimRng;

use crate::geometry::FlashGeometry;

/// Configuration of bad-block injection.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BadBlockPolicy {
    /// Fraction of blocks marked bad at the factory (e.g. `0.002` = 0.2 %).
    pub factory_bad_fraction: f64,
    /// Probability that an erase of a block *beyond its endurance* fails and
    /// turns the block into a grown bad block.
    pub wear_out_failure_prob: f64,
    /// Random seed used for deterministic injection.
    pub seed: u64,
}

impl Default for BadBlockPolicy {
    fn default() -> Self {
        Self {
            factory_bad_fraction: 0.0,
            wear_out_failure_prob: 1.0,
            seed: 0xBAD_B10C,
        }
    }
}

impl BadBlockPolicy {
    /// A policy with no factory bad blocks and hard failure at the endurance
    /// limit (useful defaults for unit tests).
    pub fn none() -> Self {
        Self::default()
    }

    /// A policy resembling production MLC NAND: 0.2 % factory bad blocks and
    /// probabilistic failure past the endurance limit.
    pub fn realistic(seed: u64) -> Self {
        Self {
            factory_bad_fraction: 0.002,
            wear_out_failure_prob: 0.3,
            seed,
        }
    }

    /// Decide which flat block indices are factory-bad for `geometry`.
    pub fn factory_bad_blocks(&self, geometry: &FlashGeometry) -> Vec<u64> {
        if self.factory_bad_fraction <= 0.0 {
            return Vec::new();
        }
        let mut rng = SimRng::new(self.seed);
        let total = geometry.total_blocks();
        (0..total)
            .filter(|_| rng.bool_with_prob(self.factory_bad_fraction))
            .collect()
    }

    /// Decide whether an erase beyond the endurance limit kills the block.
    pub fn wears_out(&self, rng: &mut SimRng, erase_count: u64, endurance: u64) -> bool {
        if erase_count <= endurance {
            return false;
        }
        rng.bool_with_prob(self.wear_out_failure_prob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_policy_produces_no_factory_bads() {
        let g = FlashGeometry::small();
        let policy = BadBlockPolicy::none();
        assert!(policy.factory_bad_blocks(&g).is_empty());
    }

    #[test]
    fn realistic_policy_fraction_is_respected_roughly() {
        let mut g = FlashGeometry::small();
        g.blocks_per_plane = 4096; // enough blocks for the fraction to show
        let policy = BadBlockPolicy::realistic(7);
        let bads = policy.factory_bad_blocks(&g);
        let frac = bads.len() as f64 / g.total_blocks() as f64;
        assert!(frac > 0.0 && frac < 0.01, "factory bad fraction {frac}");
    }

    #[test]
    fn factory_bads_are_deterministic() {
        let g = FlashGeometry::small();
        let policy = BadBlockPolicy::realistic(42);
        assert_eq!(policy.factory_bad_blocks(&g), policy.factory_bad_blocks(&g));
    }

    #[test]
    fn wear_out_only_past_endurance() {
        let policy = BadBlockPolicy {
            factory_bad_fraction: 0.0,
            wear_out_failure_prob: 1.0,
            seed: 1,
        };
        let mut rng = SimRng::new(1);
        assert!(!policy.wears_out(&mut rng, 10, 100));
        assert!(!policy.wears_out(&mut rng, 100, 100));
        assert!(policy.wears_out(&mut rng, 101, 100));
    }
}
