//! Static wear leveling.
//!
//! Dynamic wear leveling falls out of the FIFO free-block pools (freshly
//! erased blocks go to the back of the queue).  Static wear leveling handles
//! *cold* data: blocks whose content never changes would otherwise never be
//! erased, concentrating wear on the remaining blocks.  When the spread
//! between the most- and least-worn block exceeds a threshold, the cold
//! block's content is migrated so the barely-used block re-enters circulation.

use nand_flash::{BlockAddr, NandDevice, NativeFlashInterface};
use serde::{Deserialize, Serialize};

use crate::regions::{RegionId, RegionManager};

/// A static wear-leveling migration decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WearMigration {
    /// The cold block whose (static) content should be moved away.
    pub cold_block: BlockAddr,
    /// Erase-count spread that triggered the migration.
    pub spread: u64,
}

/// Static wear-leveling policy.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WearLeveler {
    /// Trigger threshold: migrate when `max_erase − min_erase > threshold`.
    pub threshold: u64,
    /// Check cadence: evaluate the policy every `check_every` erases.
    pub check_every: u64,
    erases_since_check: u64,
}

impl WearLeveler {
    /// Create a leveler with the given threshold, checking every 64 erases.
    pub fn new(threshold: u64) -> Self {
        Self {
            threshold,
            check_every: 64,
            erases_since_check: 0,
        }
    }

    /// Notify the leveler that one erase happened; returns `true` when it is
    /// time to evaluate the policy.
    pub fn on_erase(&mut self) -> bool {
        self.erases_since_check += 1;
        if self.erases_since_check >= self.check_every {
            self.erases_since_check = 0;
            true
        } else {
            false
        }
    }

    /// Evaluate the policy for `region`: returns the cold block to migrate if
    /// the wear spread exceeds the threshold.
    pub fn select_migration(
        &self,
        device: &NandDevice,
        regions: &RegionManager,
        region: RegionId,
    ) -> Option<WearMigration> {
        let geometry = *device.geometry();
        let mut min: Option<(BlockAddr, u64)> = None;
        let mut max_erase = 0u64;
        for die in regions.dies_of(region) {
            for plane in 0..geometry.planes_per_die {
                for block in 0..geometry.blocks_per_plane {
                    let addr = BlockAddr::new(die.channel, die.die, plane, block);
                    let info = match device.block_info(addr) {
                        Ok(i) if i.usable => i,
                        _ => continue,
                    };
                    max_erase = max_erase.max(info.erase_count);
                    // Only closed blocks holding live data are migration
                    // candidates (free/active blocks recycle naturally).
                    if regions.is_active(addr) || regions.is_free(addr) {
                        continue;
                    }
                    if info.valid_pages == 0 {
                        continue;
                    }
                    if min.is_none_or(|(_, e)| info.erase_count < e) {
                        min = Some((addr, info.erase_count));
                    }
                }
            }
        }
        let (cold, min_erase) = min?;
        let spread = max_erase.saturating_sub(min_erase);
        (spread > self.threshold).then_some(WearMigration {
            cold_block: cold,
            spread,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regions::StripingMode;
    use nand_flash::{FlashGeometry, NativeFlashInterface, Oob};

    #[test]
    fn cadence_counter() {
        let mut wl = WearLeveler::new(10);
        wl.check_every = 3;
        assert!(!wl.on_erase());
        assert!(!wl.on_erase());
        assert!(wl.on_erase());
        assert!(!wl.on_erase());
    }

    #[test]
    fn no_migration_when_wear_is_even() {
        let g = FlashGeometry::tiny();
        let device = NandDevice::with_geometry(g);
        let regions = RegionManager::new(g, StripingMode::DieWise);
        let wl = WearLeveler::new(16);
        assert!(wl.select_migration(&device, &regions, 0).is_none());
    }

    #[test]
    fn migration_selected_when_spread_exceeds_threshold() {
        let g = FlashGeometry::tiny();
        let mut device = NandDevice::with_geometry(g);
        let mut regions = RegionManager::new(g, StripingMode::DieWise);
        let data = vec![0u8; g.page_size as usize];
        // A cold block with live data (allocated through the region manager so
        // it is not in the free pool), then another block erased many times.
        for _ in 0..g.pages_per_block {
            let ppa = regions.allocate_page_in(0).unwrap();
            device.program_page(0, ppa, &data, Oob::data(1, 0)).unwrap();
        }
        let _ = regions.allocate_page_in(0).unwrap(); // close the cold block
        let hot = BlockAddr::new(0, 0, 0, 7);
        for _ in 0..40 {
            device.erase_block(0, hot).unwrap();
        }
        let wl = WearLeveler::new(16);
        let migration = wl.select_migration(&device, &regions, 0).unwrap();
        assert_eq!(migration.cold_block, BlockAddr::new(0, 0, 0, 0));
        assert!(migration.spread >= 40);
    }
}
