//! NoFTL configuration.

use nand_flash::FlashGeometry;
use serde::{Deserialize, Serialize};

use crate::regions::StripingMode;

/// Per-region reliability policy — the configurable-storage axis of the
/// NoFTL argument applied to redundancy.  The DBMS, knowing what each region
/// holds, picks the protection level per region instead of paying one
/// device-wide scheme.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum RedundancyPolicy {
    /// No redundancy (the default — and the bit/cycle-equivalence baseline):
    /// a die failure loses the region's unprotected pages.
    #[default]
    None,
    /// XOR parity striping: every stripe of up to `k` data pages, each on a
    /// *distinct* die, carries one parity page on yet another die.  Any
    /// single lost page of a stripe is reconstructable from its peers.
    /// Overhead ≈ `1/k` extra page writes, taken out of OP headroom.
    Parity(usize),
    /// Full mirroring: every page write also writes a copy on a different
    /// die.  2× write overhead — meant for small, hot, critical regions
    /// (the WAL) where reconstruction latency matters more than space.
    Mirror,
}

impl RedundancyPolicy {
    /// Whether the policy adds any protection.
    pub fn is_protected(self) -> bool {
        self != RedundancyPolicy::None
    }
}

/// Configuration of the DBMS-integrated Flash management.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NoFtlConfig {
    /// Device geometry (normally obtained via IDENTIFY).
    pub geometry: FlashGeometry,
    /// Fraction of physical capacity kept as spare space for out-of-place
    /// updates and GC headroom.
    pub op_ratio: f64,
    /// How dies are grouped into regions (die-wise striping by default).
    pub striping: StripingMode,
    /// Per-region GC low watermark, in free blocks.
    pub gc_low_watermark: usize,
    /// Per-region GC high watermark, in free blocks.
    pub gc_high_watermark: usize,
    /// Wear-leveling trigger: when `max_erase − min_erase` exceeds this many
    /// cycles, cold data is migrated into the most-worn free block.
    pub wear_leveling_threshold: u64,
    /// Whether the underlying device stores page contents.
    pub store_data: bool,
    /// Per-die command-queue depth used by the asynchronous write path
    /// (`1` = synchronous dispatch; see [`crate::NoFtl::set_async_depth`]).
    pub async_queue_depth: usize,
    /// Maximum pages per batched GC relocation dispatch (`0`/`1` keeps the
    /// legacy one-relocation-at-a-time path, which is trace-identical).
    pub gc_batch_pages: usize,
    /// Read-heat penalty of GC victim scoring (`0.0` = off, the default:
    /// victim selection is read-blind and identical to the legacy scorer).
    /// When positive, a candidate block on a die whose
    /// [`nand_flash::FlashStats::per_die_reads`] occupancy is `h`× the
    /// per-die mean has its score divided by `1 + penalty × h`, steering
    /// reclamation toward read-cold dies so relocations interfere less with
    /// foreground read traffic.
    pub gc_read_heat_penalty: f64,
    /// Proactive GC scheduling threshold, in in-flight device reads
    /// (`0` = off, the default: GC only runs on demand from the allocator's
    /// low-watermark path).  When positive, [`crate::NoFtl::schedule_gc`]
    /// relocates one victim in a pressured region *only* while fewer than
    /// this many reads are queued device-wide, steering background
    /// reclamation into read-cold instants.
    pub gc_schedule_read_occupancy: usize,
    /// Override of the device's per-block P/E endurance (tests use tiny
    /// values so wear-out paths are reachable).
    pub endurance_override: Option<u64>,
    /// Read-disturb scrub threshold: when a block serves this many reads
    /// since its last erase, the scrubber relocates its live pages and
    /// erases it preventively.  Only consulted while the device runs with a
    /// fault plan (`NOFTL_FAULTS`); without one the device does not even
    /// maintain the counter.
    pub scrub_read_disturb_threshold: u64,
    /// Per-region redundancy policy (index = region id).  Empty — the
    /// default — means [`RedundancyPolicy::None`] everywhere, which keeps
    /// every write path bit- and cycle-identical to a build without the
    /// redundancy machinery.  A shorter-than-regions vector leaves the
    /// remaining regions unprotected.  The `NOFTL_REDUNDANCY` environment
    /// knob is parsed centrally in `storage_engine::backend` and applied to
    /// every region of instances configured without a policy.
    pub redundancy: Vec<RedundancyPolicy>,
}

impl NoFtlConfig {
    /// Defaults for `geometry`: 10 % spare space, die-wise striping, GC at
    /// 2 free blocks per region, wear-leveling threshold of 64 cycles.
    pub fn new(geometry: FlashGeometry) -> Self {
        Self {
            geometry,
            op_ratio: 0.10,
            striping: StripingMode::DieWise,
            gc_low_watermark: 2,
            gc_high_watermark: 4,
            wear_leveling_threshold: 64,
            store_data: true,
            async_queue_depth: 1,
            gc_batch_pages: 0,
            gc_read_heat_penalty: 0.0,
            gc_schedule_read_occupancy: 0,
            endurance_override: None,
            scrub_read_disturb_threshold: 10_000,
            redundancy: Vec::new(),
        }
    }

    /// Metadata-only configuration for trace replay experiments.
    pub fn metadata_only(geometry: FlashGeometry) -> Self {
        Self {
            store_data: false,
            ..Self::new(geometry)
        }
    }

    /// Number of logical pages exported to the DBMS.
    pub fn logical_pages(&self) -> u64 {
        ((self.geometry.total_pages() as f64) * (1.0 - self.op_ratio)).floor() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = NoFtlConfig::new(FlashGeometry::small());
        assert!(cfg.logical_pages() > 0);
        assert!(cfg.logical_pages() < FlashGeometry::small().total_pages());
        assert_eq!(cfg.striping, StripingMode::DieWise);
    }

    #[test]
    fn metadata_only_flips_store_data() {
        let cfg = NoFtlConfig::metadata_only(FlashGeometry::tiny());
        assert!(!cfg.store_data);
    }

    #[test]
    fn logical_pages_scale_with_op() {
        let mut cfg = NoFtlConfig::new(FlashGeometry::small());
        let at_10 = cfg.logical_pages();
        cfg.op_ratio = 0.30;
        let at_30 = cfg.logical_pages();
        assert!(at_30 < at_10);
    }
}
