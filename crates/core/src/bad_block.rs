//! DBMS-side bad-block management.
//!
//! Under NoFTL the DBMS owns the bad-block manager (paper, Figure 2): it keeps
//! the list of factory and grown bad blocks, removes them from the region
//! pools and remembers how much usable capacity remains.
//!
//! The sets are `BTreeSet`s, not hash sets: [`BadBlockManager::iter`] feeds
//! recovery reports and region rebuilds, so its order must be deterministic
//! across runs for the bit-identical-output guarantee (noftl-lint's
//! determinism pass enforces this crate-wide).

use std::collections::BTreeSet;

use nand_flash::BlockAddr;
use serde::{Deserialize, Serialize};

/// Why a block was retired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RetireReason {
    /// Marked bad by the manufacturer (discovered at format time).
    Factory,
    /// Failed in the field (program/erase failure or worn out).
    Grown,
}

/// Registry of retired blocks.
#[derive(Debug, Clone, Default)]
pub struct BadBlockManager {
    factory: BTreeSet<BlockAddr>,
    grown: BTreeSet<BlockAddr>,
}

impl BadBlockManager {
    /// Create an empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a retired block. Returns `false` if it was already known.
    ///
    /// A block can only ever be in one of the two sets: re-retiring a
    /// factory-bad block as grown is rejected, and a factory retirement of a
    /// block previously seen as grown *promotes* it (factory classification
    /// wins) without double counting it in [`BadBlockManager::total`].
    pub fn retire(&mut self, block: BlockAddr, reason: RetireReason) -> bool {
        match reason {
            RetireReason::Factory => {
                if self.grown.remove(&block) {
                    self.factory.insert(block);
                    return false;
                }
                self.factory.insert(block)
            }
            RetireReason::Grown => {
                if self.factory.contains(&block) {
                    return false;
                }
                self.grown.insert(block)
            }
        }
    }

    /// Whether a block is known bad.
    pub fn is_bad(&self, block: BlockAddr) -> bool {
        self.factory.contains(&block) || self.grown.contains(&block)
    }

    /// Number of factory bad blocks.
    pub fn factory_count(&self) -> usize {
        self.factory.len()
    }

    /// Number of grown bad blocks.
    pub fn grown_count(&self) -> usize {
        self.grown.len()
    }

    /// Total retired blocks.
    pub fn total(&self) -> usize {
        self.factory.len() + self.grown.len()
    }

    /// Iterate over all retired blocks.
    pub fn iter(&self) -> impl Iterator<Item = BlockAddr> + '_ {
        self.factory.iter().chain(self.grown.iter()).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retire_and_query() {
        let mut bbm = BadBlockManager::new();
        let b = BlockAddr::new(0, 0, 0, 5);
        assert!(!bbm.is_bad(b));
        assert!(bbm.retire(b, RetireReason::Grown));
        assert!(bbm.is_bad(b));
        assert!(!bbm.retire(b, RetireReason::Grown), "double retire rejected");
        assert_eq!(bbm.grown_count(), 1);
        assert_eq!(bbm.factory_count(), 0);
        assert_eq!(bbm.total(), 1);
    }

    #[test]
    fn factory_takes_precedence() {
        let mut bbm = BadBlockManager::new();
        let b = BlockAddr::new(0, 0, 0, 1);
        assert!(bbm.retire(b, RetireReason::Factory));
        assert!(!bbm.retire(b, RetireReason::Grown));
        assert_eq!(bbm.total(), 1);
    }

    #[test]
    fn iteration_covers_both_sets() {
        let mut bbm = BadBlockManager::new();
        bbm.retire(BlockAddr::new(0, 0, 0, 1), RetireReason::Factory);
        bbm.retire(BlockAddr::new(0, 0, 0, 2), RetireReason::Grown);
        assert_eq!(bbm.iter().count(), 2);
    }

    #[test]
    fn grown_then_factory_promotes_without_double_counting() {
        let mut bbm = BadBlockManager::new();
        let b = BlockAddr::new(0, 0, 0, 3);
        assert!(bbm.retire(b, RetireReason::Grown));
        // A later format-time scan classifies the same block factory-bad:
        // the block moves sets instead of being counted twice.
        assert!(!bbm.retire(b, RetireReason::Factory));
        assert_eq!(bbm.total(), 1);
        assert_eq!(bbm.factory_count(), 1);
        assert_eq!(bbm.grown_count(), 0);
        assert!(bbm.is_bad(b));
    }

    #[test]
    fn iteration_order_is_deterministic_and_sorted_within_each_set() {
        // Retire blocks in scrambled order; iter() must yield factory blocks
        // then grown blocks, each set in sorted address order, independent of
        // insertion order — recovery reports diff bit-identically across runs.
        let mut a = BadBlockManager::new();
        let mut b = BadBlockManager::new();
        let factory = [BlockAddr::new(1, 0, 0, 7), BlockAddr::new(0, 0, 0, 3)];
        let grown = [BlockAddr::new(0, 1, 0, 9), BlockAddr::new(0, 0, 1, 2)];
        for blk in factory.iter().chain(grown.iter().rev()) {
            a.retire(
                *blk,
                if factory.contains(blk) {
                    RetireReason::Factory
                } else {
                    RetireReason::Grown
                },
            );
        }
        for blk in factory.iter().rev().chain(grown.iter()) {
            b.retire(
                *blk,
                if factory.contains(blk) {
                    RetireReason::Factory
                } else {
                    RetireReason::Grown
                },
            );
        }
        let order_a: Vec<BlockAddr> = a.iter().collect();
        let order_b: Vec<BlockAddr> = b.iter().collect();
        assert_eq!(order_a, order_b, "iteration order must not depend on insertion order");
        let mut sorted_factory = factory.to_vec();
        sorted_factory.sort();
        let mut sorted_grown = grown.to_vec();
        sorted_grown.sort();
        let expected: Vec<BlockAddr> =
            sorted_factory.into_iter().chain(sorted_grown).collect();
        assert_eq!(order_a, expected, "factory first, then grown, each sorted");
    }

    #[test]
    fn total_is_monotone_under_any_retire_sequence() {
        // total() must never decrease and never exceed the number of
        // distinct blocks, whatever order retirements arrive in.
        let blocks = [
            (BlockAddr::new(0, 0, 0, 1), RetireReason::Grown),
            (BlockAddr::new(0, 0, 0, 1), RetireReason::Factory),
            (BlockAddr::new(0, 0, 0, 1), RetireReason::Grown),
            (BlockAddr::new(0, 0, 0, 2), RetireReason::Factory),
            (BlockAddr::new(0, 0, 0, 2), RetireReason::Factory),
            (BlockAddr::new(0, 0, 0, 2), RetireReason::Grown),
            (BlockAddr::new(0, 1, 0, 1), RetireReason::Grown),
        ];
        let mut bbm = BadBlockManager::new();
        let mut prev = 0;
        for (b, reason) in blocks {
            bbm.retire(b, reason);
            let t = bbm.total();
            assert!(t >= prev, "total went backwards: {prev} -> {t}");
            assert_eq!(t, bbm.factory_count() + bbm.grown_count());
            prev = t;
        }
        assert_eq!(prev, 3, "three distinct blocks were retired");
    }
}
