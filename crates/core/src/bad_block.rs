//! DBMS-side bad-block management.
//!
//! Under NoFTL the DBMS owns the bad-block manager (paper, Figure 2): it keeps
//! the list of factory and grown bad blocks, removes them from the region
//! pools and remembers how much usable capacity remains.

use std::collections::HashSet;

use nand_flash::BlockAddr;
use serde::{Deserialize, Serialize};

/// Why a block was retired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RetireReason {
    /// Marked bad by the manufacturer (discovered at format time).
    Factory,
    /// Failed in the field (program/erase failure or worn out).
    Grown,
}

/// Registry of retired blocks.
#[derive(Debug, Clone, Default)]
pub struct BadBlockManager {
    factory: HashSet<BlockAddr>,
    grown: HashSet<BlockAddr>,
}

impl BadBlockManager {
    /// Create an empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a retired block. Returns `false` if it was already known.
    pub fn retire(&mut self, block: BlockAddr, reason: RetireReason) -> bool {
        match reason {
            RetireReason::Factory => self.factory.insert(block),
            RetireReason::Grown => {
                if self.factory.contains(&block) {
                    return false;
                }
                self.grown.insert(block)
            }
        }
    }

    /// Whether a block is known bad.
    pub fn is_bad(&self, block: BlockAddr) -> bool {
        self.factory.contains(&block) || self.grown.contains(&block)
    }

    /// Number of factory bad blocks.
    pub fn factory_count(&self) -> usize {
        self.factory.len()
    }

    /// Number of grown bad blocks.
    pub fn grown_count(&self) -> usize {
        self.grown.len()
    }

    /// Total retired blocks.
    pub fn total(&self) -> usize {
        self.factory.len() + self.grown.len()
    }

    /// Iterate over all retired blocks.
    pub fn iter(&self) -> impl Iterator<Item = BlockAddr> + '_ {
        self.factory.iter().chain(self.grown.iter()).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retire_and_query() {
        let mut bbm = BadBlockManager::new();
        let b = BlockAddr::new(0, 0, 0, 5);
        assert!(!bbm.is_bad(b));
        assert!(bbm.retire(b, RetireReason::Grown));
        assert!(bbm.is_bad(b));
        assert!(!bbm.retire(b, RetireReason::Grown), "double retire rejected");
        assert_eq!(bbm.grown_count(), 1);
        assert_eq!(bbm.factory_count(), 0);
        assert_eq!(bbm.total(), 1);
    }

    #[test]
    fn factory_takes_precedence() {
        let mut bbm = BadBlockManager::new();
        let b = BlockAddr::new(0, 0, 0, 1);
        assert!(bbm.retire(b, RetireReason::Factory));
        assert!(!bbm.retire(b, RetireReason::Grown));
        assert_eq!(bbm.total(), 1);
    }

    #[test]
    fn iteration_covers_both_sets() {
        let mut bbm = BadBlockManager::new();
        bbm.retire(BlockAddr::new(0, 0, 0, 1), RetireReason::Factory);
        bbm.retire(BlockAddr::new(0, 0, 0, 2), RetireReason::Grown);
        assert_eq!(bbm.iter().count(), 2);
    }
}
