//! NoFTL statistics: host I/O, GC work, wear-leveling migrations and
//! dead-page hints honoured.

use serde::{Deserialize, Serialize};
use sim_utils::histogram::Histogram;

/// Counters maintained by [`crate::NoFtl`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NoFtlStats {
    /// Logical page reads issued by the DBMS.
    pub host_reads: u64,
    /// Logical page writes issued by the DBMS.
    pub host_writes: u64,
    /// Dead-page hints received from the DBMS free-space manager.
    pub dead_page_hints: u64,
    /// Pages GC relocated (copyback or read+program).
    pub gc_page_copies: u64,
    /// Pages GC *skipped* because the DBMS had declared them dead — the
    /// copy/erase savings that Figure 3 attributes to database integration.
    pub gc_dead_skipped: u64,
    /// Blocks erased by GC.
    pub gc_erases: u64,
    /// Multi-page relocation dispatches issued by batched GC (each covers
    /// two or more of the [`NoFtlStats::gc_page_copies`]).
    pub gc_batch_dispatches: u64,
    /// Synchronous GC invocations that stalled a host write.
    pub gc_stalls: u64,
    /// Proactive GC relocations [`crate::NoFtl::schedule_gc`] launched into
    /// read-cold instants.
    pub gc_scheduled_cold: u64,
    /// Proactive GC attempts deferred because the instant was read-hot
    /// (in-flight reads at or above the scheduling threshold).
    pub gc_deferred_hot: u64,
    /// Blocks migrated by static wear leveling.
    pub wear_migrations: u64,
    /// Blocks retired by the bad-block manager.
    pub retired_blocks: u64,
    /// Blocks retired because a PAGE PROGRAM into them reported failure
    /// (their still-valid pages were relocated first).
    pub program_fail_retirements: u64,
    /// Blocks retired because a BLOCK ERASE reported failure.
    pub erase_fail_retirements: u64,
    /// Additional read attempts issued by the read-retry ladder after an
    /// uncorrectable ECC result.
    pub read_retries: u64,
    /// Reads rescued by the retry ladder (an attempt after the first
    /// returned correctable data).
    pub read_retry_successes: u64,
    /// Blocks preventively rewritten by the read-disturb scrubber.
    pub scrubbed_blocks: u64,
    /// Pages the scrubber relocated.
    pub scrub_relocations: u64,
    /// Host-visible write latency (ns).
    pub write_latency: Histogram,
    /// Host-visible read latency (ns).
    pub read_latency: Histogram,
}

impl NoFtlStats {
    /// Create zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Write amplification: (host writes + GC copies) / host writes.
    pub fn write_amplification(&self) -> f64 {
        if self.host_writes == 0 {
            return 1.0;
        }
        (self.host_writes + self.gc_page_copies) as f64 / self.host_writes as f64
    }

    /// Reset all counters.
    pub fn clear(&mut self) {
        *self = NoFtlStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wa_baseline() {
        assert_eq!(NoFtlStats::new().write_amplification(), 1.0);
    }

    #[test]
    fn wa_counts_gc() {
        let mut s = NoFtlStats::new();
        s.host_writes = 100;
        s.gc_page_copies = 25;
        assert!((s.write_amplification() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn clear_resets() {
        let mut s = NoFtlStats::new();
        s.gc_erases = 3;
        s.read_latency.record(5);
        s.clear();
        assert_eq!(s.gc_erases, 0);
        assert_eq!(s.read_latency.count(), 0);
    }
}
