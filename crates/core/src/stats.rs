//! NoFTL statistics: host I/O, GC work, wear-leveling migrations and
//! dead-page hints honoured.

use serde::{Deserialize, Serialize};
use sim_utils::histogram::Histogram;

/// Counters maintained by [`crate::NoFtl`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NoFtlStats {
    /// Logical page reads issued by the DBMS.
    pub host_reads: u64,
    /// Logical page writes issued by the DBMS.
    pub host_writes: u64,
    /// Dead-page hints received from the DBMS free-space manager.
    pub dead_page_hints: u64,
    /// Pages GC relocated (copyback or read+program).
    pub gc_page_copies: u64,
    /// Pages GC *skipped* because the DBMS had declared them dead — the
    /// copy/erase savings that Figure 3 attributes to database integration.
    pub gc_dead_skipped: u64,
    /// Blocks erased by GC.
    pub gc_erases: u64,
    /// Multi-page relocation dispatches issued by batched GC (each covers
    /// two or more of the [`NoFtlStats::gc_page_copies`]).
    pub gc_batch_dispatches: u64,
    /// Synchronous GC invocations that stalled a host write.
    pub gc_stalls: u64,
    /// Proactive GC relocations [`crate::NoFtl::schedule_gc`] launched into
    /// read-cold instants.
    pub gc_scheduled_cold: u64,
    /// Proactive GC attempts deferred because the instant was read-hot
    /// (in-flight reads at or above the scheduling threshold).
    pub gc_deferred_hot: u64,
    /// Blocks migrated by static wear leveling.
    pub wear_migrations: u64,
    /// Blocks retired by the bad-block manager.
    pub retired_blocks: u64,
    /// Blocks retired because a PAGE PROGRAM into them reported failure
    /// (their still-valid pages were relocated first).
    pub program_fail_retirements: u64,
    /// Blocks retired because a BLOCK ERASE reported failure.
    pub erase_fail_retirements: u64,
    /// Additional read attempts issued by the read-retry ladder after an
    /// uncorrectable ECC result.
    pub read_retries: u64,
    /// Reads rescued by the retry ladder (an attempt after the first
    /// returned correctable data).
    pub read_retry_successes: u64,
    /// Blocks preventively rewritten by the read-disturb scrubber.
    pub scrubbed_blocks: u64,
    /// Pages the scrubber relocated.
    pub scrub_relocations: u64,
    /// Host-visible write latency (ns).
    pub write_latency: Histogram,
    /// Host-visible read latency (ns).
    pub read_latency: Histogram,
}

impl NoFtlStats {
    /// Create zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Write amplification: (host writes + GC copies) / host writes.
    pub fn write_amplification(&self) -> f64 {
        if self.host_writes == 0 {
            return 1.0;
        }
        (self.host_writes + self.gc_page_copies) as f64 / self.host_writes as f64
    }

    /// Reset all counters.
    pub fn clear(&mut self) {
        *self = NoFtlStats::default();
    }
}

/// Counters of the per-region redundancy machinery (`NOFTL_REDUNDANCY`):
/// parity striping, mirroring, and degraded reads that reconstruct pages
/// lost to a die failure.  All zero while every region runs
/// [`crate::config::RedundancyPolicy::None`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RedundancyStats {
    /// Parity pages programmed when a stripe sealed.
    pub parity_pages_written: u64,
    /// Stripes sealed (a parity page written covering ≥ 1 data member).
    pub stripes_sealed: u64,
    /// Stripes sealed with the parity page on a die that already holds a
    /// member (no disjoint die had space) — that stripe no longer survives
    /// every single-die failure, only block-level loss.
    pub stripes_sealed_degraded: u64,
    /// Open stripes discarded unsealed: no die anywhere had space for the
    /// parity page, or a dying member's content was unreadable and the
    /// in-memory XOR could not be repaired.  The pending members stay
    /// unprotected.
    pub stripes_abandoned: u64,
    /// Members of the still-open stripe backed out of the in-memory XOR
    /// because their block was erased or retired before the stripe sealed.
    pub open_members_purged: u64,
    /// Stripes broken because a member or parity page's block was erased or
    /// retired; surviving mapped members are re-protected.
    pub stripes_broken: u64,
    /// Still-mapped stripe members re-queued into the open stripe after
    /// their stripe broke.
    pub members_reprotected: u64,
    /// Mirror copies programmed for writes into `Mirror` regions.
    pub mirror_pages_written: u64,
    /// `Mirror`-region writes left with a single copy: no die other than
    /// the primary's had allocatable space, or the geometry has one die.
    pub mirror_skipped_no_space: u64,
    /// Host reads served degraded — the mapped page's die was dead and the
    /// content came from its mirror or stripe peers.
    pub degraded_reads: u64,
    /// Pages whose content was reconstructed (XOR of stripe survivors or a
    /// mirror copy), for degraded reads and rebuild combined.
    pub reconstructed_pages: u64,
}

impl RedundancyStats {
    /// Reset all counters.
    pub fn clear(&mut self) {
        *self = RedundancyStats::default();
    }
}

/// Counters of the online rebuild subsystem that re-homes pages lost to a
/// die failure onto surviving dies.  All zero until a die actually dies.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RebuildStats {
    /// Die failures the NoFTL layer detected and started a rebuild for.
    pub die_failures_detected: u64,
    /// Mapped-page slots of dead dies the rebuild walker examined.
    pub pages_scanned: u64,
    /// Lost pages reconstructed and rewritten onto surviving dies.
    pub pages_rebuilt: u64,
    /// Lost pages with no surviving redundancy — unrecoverable at this
    /// layer; the mapping is left pointing at the dead die so reads keep
    /// failing typed and WAL-replay page rebuild can take over.
    pub pages_lost: u64,
    /// Background rebuild steps that made progress
    /// ([`crate::NoFtl::schedule_rebuild`]).
    pub rebuild_scheduled: u64,
    /// Background rebuild attempts deferred because the instant was
    /// read-hot (in-flight reads at or above the GC scheduling threshold).
    pub rebuild_deferred_hot: u64,
}

impl RebuildStats {
    /// Reset all counters.
    pub fn clear(&mut self) {
        *self = RebuildStats::default();
    }

    /// Whether the one-pass rebuild walked every page it will ever walk
    /// (detected failures and finished cursors are reconciled by
    /// [`crate::NoFtl::schedule_rebuild`] returning no work).
    pub fn accounted(&self) -> bool {
        self.pages_rebuilt + self.pages_lost <= self.pages_scanned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redundancy_stats_clear_resets() {
        let mut s = RedundancyStats {
            parity_pages_written: 4,
            stripes_sealed: 2,
            stripes_sealed_degraded: 1,
            stripes_abandoned: 2,
            open_members_purged: 3,
            stripes_broken: 1,
            members_reprotected: 3,
            mirror_pages_written: 9,
            mirror_skipped_no_space: 2,
            degraded_reads: 5,
            reconstructed_pages: 6,
        };
        s.clear();
        assert_eq!(s.parity_pages_written, 0);
        assert_eq!(s.stripes_sealed, 0);
        assert_eq!(s.stripes_sealed_degraded, 0);
        assert_eq!(s.stripes_abandoned, 0);
        assert_eq!(s.open_members_purged, 0);
        assert_eq!(s.stripes_broken, 0);
        assert_eq!(s.members_reprotected, 0);
        assert_eq!(s.mirror_pages_written, 0);
        assert_eq!(s.mirror_skipped_no_space, 0);
        assert_eq!(s.degraded_reads, 0);
        assert_eq!(s.reconstructed_pages, 0);
    }

    #[test]
    fn rebuild_stats_reconcile() {
        let mut s = RebuildStats {
            die_failures_detected: 1,
            pages_scanned: 10,
            pages_rebuilt: 7,
            pages_lost: 2,
            rebuild_scheduled: 4,
            rebuild_deferred_hot: 3,
        };
        assert!(s.accounted());
        assert_eq!(s.die_failures_detected, 1);
        assert_eq!(s.rebuild_scheduled, 4);
        assert_eq!(s.rebuild_deferred_hot, 3);
        s.pages_rebuilt = 11;
        assert!(!s.accounted());
        s.clear();
        assert_eq!(s.pages_scanned, 0);
        assert_eq!(s.pages_rebuilt, 0);
        assert_eq!(s.pages_lost, 0);
    }

    #[test]
    fn wa_baseline() {
        assert_eq!(NoFtlStats::new().write_amplification(), 1.0);
    }

    #[test]
    fn wa_counts_gc() {
        let mut s = NoFtlStats::new();
        s.host_writes = 100;
        s.gc_page_copies = 25;
        assert!((s.write_amplification() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn clear_resets() {
        let mut s = NoFtlStats::new();
        s.gc_erases = 3;
        s.read_latency.record(5);
        s.clear();
        assert_eq!(s.gc_erases, 0);
        assert_eq!(s.read_latency.count(), 0);
    }
}
