//! Physical regions and Flash-aware writer assignment (§3.2 of the paper).
//!
//! A *region* is a set of NAND dies.  Under die-wise striping every die is
//! its own region and logical pages are striped over regions
//! (`region = lpn mod regions`), so a database page always lives on the same
//! die.  The DBMS assigns its background writers (db-writers) to regions:
//!
//! * [`FlusherAssignment::Global`] — the conventional scheme: every db-writer
//!   may flush any dirty page and therefore writes to every die, contending
//!   with the other writers for the same Flash chips;
//! * [`FlusherAssignment::DieWise`] — the paper's Flash-aware scheme: each
//!   db-writer owns a disjoint set of regions and only flushes pages that map
//!   to them, eliminating chip contention (up to 1.5× higher TPC-C
//!   throughput, Figure 4).
//!
//! ## Reader safety (concurrent engine)
//!
//! Placement *queries* ([`RegionManager::region_of_lpn`],
//! [`RegionManager::region_of_die`], [`RegionManager::region_of_block`],
//! [`RegionManager::free_blocks_in`], [`RegionManager::flusher_for_lpn`],
//! ...) are `&self` over precomputed dense tables — no interior mutability —
//! while allocator *mutation* ([`RegionManager::allocate_page_in`],
//! [`RegionManager::release_block`], ...) is `&mut self`.  The manager is
//! `Send + Sync`: under `NOFTL_THREADS` concurrent readers may resolve
//! placement behind an `RwLock` while block allocation stays single-writer
//! (in the concurrent storage engine it lives inside the NoFTL backend,
//! behind the backend lock).

use std::collections::VecDeque;

use nand_flash::{BlockAddr, DieAddr, FlashGeometry, Ppa};
use serde::{Deserialize, Serialize};

/// Identifier of a region (dense, `0..regions()`).
pub type RegionId = usize;

/// How dies are grouped into regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StripingMode {
    /// One region per die (the layout used throughout the paper's Figure 4).
    DieWise,
    /// One region per channel (all dies of a channel share a region).
    ChannelWise,
    /// A single region spanning the whole device (no placement control).
    Single,
}

/// How db-writers (background flushers) are associated with regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlusherAssignment {
    /// Any flusher may write to any region (the conventional scheme).
    Global,
    /// Flusher *i* owns regions `{r : r mod flushers == i}` (die-wise
    /// association).
    DieWise,
}

/// Per-region block pools and active write blocks, plus the
/// logical-page → region striping function.
///
/// All placement queries are backed by dense lookup tables: `region_of_die`
/// is one indexed load into a `die_flat → RegionId` table (the seed version
/// ran a nested `position(..contains(..))` scan), and free blocks are kept in
/// *per-die* queues so multi-die regions round-robin by popping the next
/// die's queue instead of scanning a region-wide list.
#[derive(Debug, Clone)]
pub struct RegionManager {
    geometry: FlashGeometry,
    striping: StripingMode,
    /// Dies belonging to each region.
    region_dies: Vec<Vec<DieAddr>>,
    /// Dense lookup table: flat die index → region.
    die_to_region: Vec<RegionId>,
    /// Free (erased) blocks per *die* (indexed by flat die index).
    free: Vec<VecDeque<BlockAddr>>,
    /// Free-block count per region, maintained incrementally so the
    /// per-write watermark check stays O(1).
    free_count: Vec<usize>,
    /// Active block and next page offset per region.
    active: Vec<Option<(BlockAddr, u32)>>,
    /// Round-robin cursor over each region's dies for block selection.
    die_cursor: Vec<usize>,
    /// Dies that failed permanently (flat index).  Dead dies hold no free
    /// blocks and are skipped by every allocator.
    dead_dies: Vec<bool>,
    /// Auxiliary die-targeted active block per die (flat index) — the write
    /// pointer used by [`RegionManager::allocate_page_on_die`] for parity
    /// and mirror pages, kept separate from the per-region pointer so
    /// redundancy placement never perturbs the region's data layout.
    aux_active: Vec<Option<(BlockAddr, u32)>>,
}

impl RegionManager {
    /// Build a region manager covering all blocks of `geometry`.  Runs in one
    /// pass over the dies plus one pass over the blocks (the seed version
    /// re-resolved every block's region by scanning the die lists).
    pub fn new(geometry: FlashGeometry, striping: StripingMode) -> Self {
        let total_dies = geometry.total_dies() as usize;
        let regions = match striping {
            StripingMode::DieWise => total_dies,
            StripingMode::ChannelWise => geometry.channels as usize,
            StripingMode::Single => 1,
        };
        let mut region_dies: Vec<Vec<DieAddr>> = vec![Vec::new(); regions];
        let mut die_to_region: Vec<RegionId> = Vec::with_capacity(total_dies);
        for die_flat in 0..total_dies {
            let die = DieAddr::from_flat(&geometry, die_flat as u64);
            let region = match striping {
                StripingMode::DieWise => die_flat,
                StripingMode::ChannelWise => die.channel as usize,
                StripingMode::Single => 0,
            };
            region_dies[region].push(die);
            die_to_region.push(region);
        }
        // Flat block indices are die-contiguous, so each die's blocks form one
        // run: fill the per-die free queues directly, in flat order.
        let blocks_per_die = geometry.blocks_per_die() as usize;
        let mut free: Vec<VecDeque<BlockAddr>> = (0..total_dies)
            .map(|_| VecDeque::with_capacity(blocks_per_die))
            .collect();
        let mut free_count = vec![0usize; regions];
        for flat in 0..geometry.total_blocks() {
            let addr = BlockAddr::from_flat(&geometry, flat);
            let die = flat as usize / blocks_per_die;
            free[die].push_back(addr);
            free_count[die_to_region[die]] += 1;
        }
        Self {
            geometry,
            striping,
            region_dies,
            die_to_region,
            free,
            free_count,
            active: vec![None; regions],
            die_cursor: vec![0; regions],
            dead_dies: vec![false; total_dies],
            aux_active: vec![None; total_dies],
        }
    }

    /// Number of regions.
    pub fn regions(&self) -> usize {
        self.region_dies.len()
    }

    /// Striping mode in effect.
    pub fn striping(&self) -> StripingMode {
        self.striping
    }

    /// The dies belonging to `region`.
    pub fn dies_of(&self, region: RegionId) -> &[DieAddr] {
        &self.region_dies[region]
    }

    /// Region a logical page is striped to.
    #[inline]
    pub fn region_of_lpn(&self, lpn: u64) -> RegionId {
        (lpn % self.regions() as u64) as usize
    }

    /// Region a physical die belongs to — a single table load.
    #[inline]
    pub fn region_of_die(&self, die: DieAddr) -> RegionId {
        self.die_to_region[die.flat(&self.geometry) as usize]
    }

    /// Region a physical block belongs to.
    #[inline]
    pub fn region_of_block(&self, block: BlockAddr) -> RegionId {
        self.region_of_die(block.die_addr())
    }

    #[inline]
    fn die_index(&self, die: DieAddr) -> usize {
        die.flat(&self.geometry) as usize
    }

    /// Number of free blocks in `region` — O(1), maintained incrementally.
    pub fn free_blocks_in(&self, region: RegionId) -> usize {
        self.free_count[region]
    }

    /// Total free blocks across regions.
    pub fn total_free_blocks(&self) -> usize {
        self.free_count.iter().sum()
    }

    /// Return an erased block to its die's pool.
    pub fn release_block(&mut self, block: BlockAddr) {
        let die = self.die_index(block.die_addr());
        if self.dead_dies[die] {
            return; // a dead die's blocks never re-enter circulation
        }
        self.free[die].push_back(block);
        self.free_count[self.die_to_region[die]] += 1;
    }

    /// Permanently remove a block (grown bad).
    pub fn retire_block(&mut self, block: BlockAddr) {
        let region = self.region_of_block(block);
        if let Some((active, _)) = self.active[region] {
            if active == block {
                self.active[region] = None;
            }
        }
        let die = self.die_index(block.die_addr());
        if let Some((aux, _)) = self.aux_active[die] {
            if aux == block {
                self.aux_active[die] = None;
            }
        }
        let before = self.free[die].len();
        self.free[die].retain(|&b| b != block);
        self.free_count[region] -= before - self.free[die].len();
    }

    /// Whether `block` is the active block of its region, or the auxiliary
    /// die-targeted active block redundancy placement writes through (GC
    /// must not erase a half-open parity/mirror block either).
    pub fn is_active(&self, block: BlockAddr) -> bool {
        let region = self.region_of_block(block);
        if matches!(self.active[region], Some((a, _)) if a == block) {
            return true;
        }
        let die = self.die_index(block.die_addr());
        matches!(self.aux_active[die], Some((a, _)) if a == block)
    }

    /// Mark a die permanently dead: its free blocks leave circulation, any
    /// active pointer on it is dropped, and every allocator skips it from
    /// now on.  Idempotent.
    pub fn mark_die_dead(&mut self, die_flat: usize) {
        if die_flat >= self.dead_dies.len() || self.dead_dies[die_flat] {
            return;
        }
        self.dead_dies[die_flat] = true;
        let region = self.die_to_region[die_flat];
        let drained = self.free[die_flat].len();
        self.free[die_flat].clear();
        self.free_count[region] -= drained;
        if let Some((b, _)) = self.active[region] {
            if self.die_index(b.die_addr()) == die_flat {
                self.active[region] = None;
            }
        }
        self.aux_active[die_flat] = None;
    }

    /// Whether the die (flat index) has been marked dead.
    #[inline]
    pub fn die_dead(&self, die_flat: usize) -> bool {
        self.dead_dies.get(die_flat).copied().unwrap_or(false)
    }

    /// Whether `region` still has at least one live die — a region whose
    /// every die died can neither allocate nor garbage-collect and must be
    /// skipped by GC scheduling.
    pub fn region_alive(&self, region: RegionId) -> bool {
        self.region_dies[region]
            .iter()
            .any(|d| !self.dead_dies[self.die_index(*d)])
    }

    /// Allocate the next physical page on a *specific* die, through the
    /// die's auxiliary active block — used for parity and mirror pages that
    /// must land on a die disjoint from the data they protect.  Returns
    /// `None` when the die is dead or out of free blocks.
    pub fn allocate_page_on_die(&mut self, die_flat: usize, reserve: usize) -> Option<Ppa> {
        if self.die_dead(die_flat) {
            return None;
        }
        let pages_per_block = self.geometry.pages_per_block;
        if let Some((addr, next)) = self.aux_active[die_flat] {
            if next < pages_per_block {
                self.aux_active[die_flat] = Some((addr, next + 1));
                return Some(addr.page(next));
            }
        }
        // Opening a fresh aux block is refused while the die's free pool is
        // at or below `reserve`: auxiliary (parity/mirror) traffic bypasses
        // the demand-GC watermark path, so without this floor it would
        // drain the emergency blocks GC needs to relocate survivors into.
        if self.free[die_flat].len() <= reserve {
            return None;
        }
        let block = self.free[die_flat].pop_front()?;
        self.free_count[self.die_to_region[die_flat]] -= 1;
        self.aux_active[die_flat] = Some((block, 1));
        Some(block.page(0))
    }

    /// Whether `block` sits in a free pool.
    pub fn is_free(&self, block: BlockAddr) -> bool {
        let die = self.die_index(block.die_addr());
        self.free[die].contains(&block)
    }

    /// Allocate the next physical page in `region`, opening a new active
    /// block when needed (round-robin over the region's dies).  Returns
    /// `None` when the region has no space left — GC must run.
    #[inline]
    pub fn allocate_page_in(&mut self, region: RegionId) -> Option<Ppa> {
        let pages_per_block = self.geometry.pages_per_block;
        if let Some((addr, next)) = self.active[region] {
            if next < pages_per_block {
                self.active[region] = Some((addr, next + 1));
                return Some(addr.page(next));
            }
        }
        // Open a fresh block on the region's next die (striping inside
        // multi-die regions); fall back to any die of the region with blocks.
        let fresh = self.take_free_block_round_robin(region)?;
        self.active[region] = Some((fresh, 1));
        Some(fresh.page(0))
    }

    /// Allocate a run of up to `count` physical pages in `region`, in the
    /// exact order [`RegionManager::allocate_page_in`] would hand them out
    /// one by one.  Stops early when the region is exhausted, so the returned
    /// run may be shorter than `count` (possibly empty) — the caller falls
    /// back to per-page allocation with cross-region spill for the rest.
    ///
    /// Within a die-wise region the run is sequential inside the active
    /// block and rolls over to fresh blocks of the same die, which is what
    /// lets the batch write path hand the whole run to one multi-page
    /// program dispatch per die.
    pub fn allocate_run_in(&mut self, region: RegionId, count: usize) -> Vec<Ppa> {
        let mut run = Vec::with_capacity(count);
        while run.len() < count {
            match self.allocate_page_in(region) {
                Some(ppa) => run.push(ppa),
                None => break,
            }
        }
        run
    }

    /// Roll back the un-programmed tail of an aborted multi-page dispatch.
    ///
    /// A failed PAGE PROGRAM aborts its run: the device consumed the pages up
    /// to and including the failing one, but the allocations past it were
    /// never transferred.  Left alone they would desynchronise the allocator
    /// from the device's sequential write pointer — the next program into one
    /// of those blocks would land past page 0 on an untouched block.  The
    /// caller passes the leaked suffix in allocation order, *excluding* pages
    /// of the failing block (that block is retired wholesale); this unwinds
    /// the active block's pointer and returns blocks the run opened but never
    /// touched to the free pool.
    pub fn rollback_unprogrammed(&mut self, leaked: &[Ppa]) {
        for &ppa in leaked.iter().rev() {
            let block = ppa.block_addr();
            let region = self.region_of_block(block);
            let is_active_tail = matches!(
                self.active[region],
                Some((b, next)) if b == block && next == ppa.page + 1
            );
            if is_active_tail {
                if ppa.page == 0 {
                    // Fully unwound: the block was opened during the aborted
                    // run and no page of it was consumed.
                    self.active[region] = None;
                    self.release_block(block);
                } else {
                    self.active[region] = Some((block, ppa.page));
                }
            } else if ppa.page == 0 && !self.is_active(block) {
                // A non-active block of the aborted run was fully allocated
                // (the run rolled past it); reaching its first page means
                // every page was leaked — return it to the pool untouched.
                self.release_block(block);
            }
        }
    }

    fn take_free_block_round_robin(&mut self, region: RegionId) -> Option<BlockAddr> {
        let dies = &self.region_dies[region];
        if dies.len() == 1 {
            let die = self.die_index(dies[0]);
            let block = self.free[die].pop_front()?;
            self.free_count[region] -= 1;
            return Some(block);
        }
        let start = self.die_cursor[region];
        for i in 0..dies.len() {
            let which = (start + i) % dies.len();
            let die = self.die_index(self.region_dies[region][which]);
            if let Some(block) = self.free[die].pop_front() {
                self.die_cursor[region] = (which + 1) % self.region_dies[region].len();
                self.free_count[region] -= 1;
                return Some(block);
            }
        }
        None
    }

    /// Regions owned by flusher `flusher_id` out of `flushers` under the given
    /// assignment policy.
    pub fn regions_for_flusher(
        &self,
        assignment: FlusherAssignment,
        flusher_id: usize,
        flushers: usize,
    ) -> Vec<RegionId> {
        assert!(flushers > 0);
        match assignment {
            FlusherAssignment::Global => (0..self.regions()).collect(),
            FlusherAssignment::DieWise => (0..self.regions())
                .filter(|r| r % flushers == flusher_id % flushers)
                .collect(),
        }
    }

    /// Which flusher is responsible for a logical page under the given
    /// assignment (for `Global` the pages are spread round-robin regardless of
    /// region; for `DieWise` the flusher owning the page's region).
    pub fn flusher_for_lpn(
        &self,
        assignment: FlusherAssignment,
        lpn: u64,
        flushers: usize,
    ) -> usize {
        assert!(flushers > 0);
        match assignment {
            FlusherAssignment::Global => (lpn % flushers as u64) as usize,
            FlusherAssignment::DieWise => self.region_of_lpn(lpn) % flushers,
        }
    }
}

// Reader-safety invariant: placement queries are `&self` over precomputed
// tables with no interior mutability, so shared references are safe across
// threads (concurrent readers under an RwLock).
const _: () = {
    fn assert_send_sync<T: Send + Sync>() {}
    let _ = assert_send_sync::<RegionManager>;
};

#[cfg(test)]
mod tests {
    use super::*;
    use nand_flash::FlashGeometry;

    #[test]
    fn concurrent_placement_readers_share_the_manager_with_one_allocator() {
        // The NOFTL_THREADS reader-safety contract: placement queries from N
        // threads share the manager under an RwLock while a single writer
        // allocates pages.  Readers must see consistent placement (striping
        // and die tables are immutable) and a free-block count that only
        // moves by whole allocator steps.
        use parking_lot::RwLock;
        use std::sync::Arc;

        let g = FlashGeometry::small();
        let rm = Arc::new(RwLock::new(RegionManager::new(g, StripingMode::DieWise)));
        let regions = rm.read().regions();
        let readers: Vec<_> = (0..4)
            .map(|r| {
                let rm = Arc::clone(&rm);
                std::thread::spawn(move || {
                    for lpn in 0..4_000u64 {
                        let guard = rm.read();
                        let region = guard.region_of_lpn(lpn + r);
                        assert!(region < regions);
                        assert_eq!(guard.dies_of(region).len(), 1, "die-wise: one die per region");
                        let f = guard.flusher_for_lpn(FlusherAssignment::DieWise, lpn + r, 2);
                        assert_eq!(f, region % 2, "placement must be stable under readers");
                    }
                })
            })
            .collect();
        let writer = {
            let rm = Arc::clone(&rm);
            std::thread::spawn(move || {
                for i in 0..200u64 {
                    let mut guard = rm.write();
                    let region = (i as usize) % regions;
                    let _ = guard.allocate_page_in(region);
                }
            })
        };
        for h in readers {
            h.join().unwrap();
        }
        writer.join().unwrap();
        assert!(rm.read().total_free_blocks() > 0);
    }

    #[test]
    fn die_wise_striping_one_region_per_die() {
        let g = FlashGeometry::small(); // 4 dies
        let rm = RegionManager::new(g, StripingMode::DieWise);
        assert_eq!(rm.regions(), 4);
        for r in 0..rm.regions() {
            assert_eq!(rm.dies_of(r).len(), 1);
        }
        assert_eq!(rm.total_free_blocks() as u64, g.total_blocks());
    }

    #[test]
    fn channel_wise_groups_dies() {
        let g = FlashGeometry::small(); // 2 channels x 2 dies
        let rm = RegionManager::new(g, StripingMode::ChannelWise);
        assert_eq!(rm.regions(), 2);
        assert_eq!(rm.dies_of(0).len(), 2);
    }

    #[test]
    fn single_region_spans_everything() {
        let g = FlashGeometry::small();
        let rm = RegionManager::new(g, StripingMode::Single);
        assert_eq!(rm.regions(), 1);
        assert_eq!(rm.dies_of(0).len(), 4);
    }

    #[test]
    fn lpn_striping_is_balanced() {
        let g = FlashGeometry::small();
        let rm = RegionManager::new(g, StripingMode::DieWise);
        let mut counts = vec![0u32; rm.regions()];
        for lpn in 0..1000u64 {
            counts[rm.region_of_lpn(lpn)] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max - min <= 1, "striping imbalance: {counts:?}");
    }

    #[test]
    fn allocation_stays_inside_region() {
        let g = FlashGeometry::small();
        let mut rm = RegionManager::new(g, StripingMode::DieWise);
        for region in 0..rm.regions() {
            for _ in 0..10 {
                let ppa = rm.allocate_page_in(region).unwrap();
                assert_eq!(rm.region_of_die(ppa.die_addr()), region);
            }
        }
    }

    #[test]
    fn allocation_exhausts_region_independently() {
        let g = FlashGeometry::tiny(); // 1 die, 8 blocks x 8 pages
        let mut rm = RegionManager::new(g, StripingMode::DieWise);
        assert_eq!(rm.regions(), 1);
        for _ in 0..g.total_pages() {
            assert!(rm.allocate_page_in(0).is_some());
        }
        assert!(rm.allocate_page_in(0).is_none());
    }

    #[test]
    fn release_and_retire_blocks() {
        let g = FlashGeometry::tiny();
        let mut rm = RegionManager::new(g, StripingMode::DieWise);
        let b = BlockAddr::new(0, 0, 0, 2);
        assert!(rm.is_free(b));
        // Drain the pool, then give the block back.
        while rm.allocate_page_in(0).is_some() {}
        assert!(!rm.is_free(b));
        rm.release_block(b);
        assert!(rm.is_free(b));
        rm.retire_block(b);
        assert!(!rm.is_free(b));
    }

    #[test]
    fn allocate_run_matches_page_at_a_time_order() {
        let g = FlashGeometry::small();
        let mut a = RegionManager::new(g, StripingMode::DieWise);
        let mut b = RegionManager::new(g, StripingMode::DieWise);
        // A run crossing a block boundary (32 pages per block).
        let run = a.allocate_run_in(1, 40);
        let singles: Vec<Ppa> = (0..40).filter_map(|_| b.allocate_page_in(1)).collect();
        assert_eq!(run, singles, "batched allocation must preserve the layout");
        assert_eq!(run.len(), 40);
        assert!(run.iter().all(|p| a.region_of_die(p.die_addr()) == 1));
    }

    #[test]
    fn allocate_run_stops_at_region_exhaustion() {
        let g = FlashGeometry::tiny(); // 64 pages total, one region
        let mut rm = RegionManager::new(g, StripingMode::DieWise);
        let run = rm.allocate_run_in(0, 100);
        assert_eq!(run.len() as u64, g.total_pages());
        assert!(rm.allocate_run_in(0, 4).is_empty());
    }

    #[test]
    fn rollback_unwinds_active_block_pointer() {
        let g = FlashGeometry::small(); // 32 pages per block
        let mut rm = RegionManager::new(g, StripingMode::DieWise);
        let run = rm.allocate_run_in(0, 8);
        // Abort after 3 programmed pages: pages 3..8 leaked.
        rm.rollback_unprogrammed(&run[3..]);
        // The next allocations replay the leaked tail exactly.
        let replay = rm.allocate_run_in(0, 5);
        assert_eq!(replay, run[3..].to_vec());
    }

    #[test]
    fn rollback_releases_blocks_opened_by_the_aborted_run() {
        let g = FlashGeometry::small();
        let mut rm = RegionManager::new(g, StripingMode::DieWise);
        // Position the active block near its end, then allocate a run that
        // rolls over into two fresh blocks.
        let ppb = g.pages_per_block as usize;
        let head = rm.allocate_run_in(0, ppb - 2);
        let free_before = rm.free_blocks_in(0);
        let run = rm.allocate_run_in(0, 2 + 2 * ppb);
        assert_eq!(rm.free_blocks_in(0), free_before - 2);
        // The whole rolled-over tail aborts un-programmed.
        rm.rollback_unprogrammed(&run[2..]);
        assert_eq!(rm.free_blocks_in(0), free_before, "fresh blocks returned");
        // The committed prefix consumed the old active block, so the next
        // allocation opens a fresh block at page 0 — never a mid-block page
        // of an untouched block.
        let replay = rm.allocate_run_in(0, 2);
        assert_eq!(replay[0].page, 0, "reopened allocation starts a fresh block");
        assert_eq!(head.len(), ppb - 2);
    }

    #[test]
    fn rollback_of_whole_active_block_closes_it() {
        let g = FlashGeometry::small();
        let mut rm = RegionManager::new(g, StripingMode::DieWise);
        let free_before = rm.free_blocks_in(0);
        let run = rm.allocate_run_in(0, 4);
        assert_eq!(run[0].page, 0);
        rm.rollback_unprogrammed(&run);
        assert_eq!(rm.free_blocks_in(0), free_before);
        assert!(!rm.is_active(run[0].block_addr()));
    }

    #[test]
    fn die_wise_flusher_assignment_partitions_regions() {
        let g = FlashGeometry::with_dies(8, 512, 32, 4096);
        let rm = RegionManager::new(g, StripingMode::DieWise);
        let flushers = 4;
        let mut seen = vec![false; rm.regions()];
        for f in 0..flushers {
            for r in rm.regions_for_flusher(FlusherAssignment::DieWise, f, flushers) {
                assert!(!seen[r], "region {r} owned by two flushers");
                seen[r] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every region must have an owner");
    }

    #[test]
    fn global_assignment_gives_everyone_everything() {
        let g = FlashGeometry::small();
        let rm = RegionManager::new(g, StripingMode::DieWise);
        let all = rm.regions_for_flusher(FlusherAssignment::Global, 2, 4);
        assert_eq!(all.len(), rm.regions());
    }

    #[test]
    fn flusher_for_lpn_consistent_with_region_ownership() {
        let g = FlashGeometry::small();
        let rm = RegionManager::new(g, StripingMode::DieWise);
        let flushers = 2;
        for lpn in 0..100u64 {
            let f = rm.flusher_for_lpn(FlusherAssignment::DieWise, lpn, flushers);
            let owned = rm.regions_for_flusher(FlusherAssignment::DieWise, f, flushers);
            assert!(owned.contains(&rm.region_of_lpn(lpn)));
        }
    }

    #[test]
    fn channel_wise_assigns_every_die_to_its_channel_region() {
        let g = FlashGeometry::small(); // 2 channels x 2 dies
        let rm = RegionManager::new(g, StripingMode::ChannelWise);
        for die_flat in 0..g.total_dies() as u64 {
            let die = DieAddr::from_flat(&g, die_flat);
            assert_eq!(rm.region_of_die(die), die.channel as usize);
            assert!(rm.dies_of(die.channel as usize).contains(&die));
        }
    }

    #[test]
    fn single_mode_assigns_every_die_to_region_zero() {
        let g = FlashGeometry::with_dies(8, 512, 32, 4096);
        let rm = RegionManager::new(g, StripingMode::Single);
        for die_flat in 0..g.total_dies() as u64 {
            let die = DieAddr::from_flat(&g, die_flat);
            assert_eq!(rm.region_of_die(die), 0);
        }
        assert_eq!(rm.dies_of(0).len(), g.total_dies() as usize);
        assert_eq!(rm.total_free_blocks() as u64, g.total_blocks());
    }

    #[test]
    fn region_of_lpn_invariants_across_striping_modes() {
        let g = FlashGeometry::small();
        for striping in [
            StripingMode::DieWise,
            StripingMode::ChannelWise,
            StripingMode::Single,
        ] {
            let rm = RegionManager::new(g, striping);
            for lpn in 0..500u64 {
                let r = rm.region_of_lpn(lpn);
                assert!(r < rm.regions(), "{striping:?}: region out of range");
                // Striding by the region count stays in the same region —
                // the invariant the db-writer partitioning relies on.
                assert_eq!(rm.region_of_lpn(lpn + rm.regions() as u64), r);
            }
            // Consecutive logical pages land on consecutive regions.
            for lpn in 0..rm.regions() as u64 {
                assert_eq!(rm.region_of_lpn(lpn), lpn as usize);
            }
        }
    }

    #[test]
    fn region_of_block_matches_every_block() {
        // The dense die table must agree with the per-block die derivation
        // for every block in every mode.
        let g = FlashGeometry::small();
        for striping in [
            StripingMode::DieWise,
            StripingMode::ChannelWise,
            StripingMode::Single,
        ] {
            let rm = RegionManager::new(g, striping);
            for flat in 0..g.total_blocks() {
                let block = BlockAddr::from_flat(&g, flat);
                let region = rm.region_of_block(block);
                assert!(rm.dies_of(region).contains(&block.die_addr()));
            }
        }
    }

    #[test]
    fn exhausted_region_recovers_after_release() {
        let g = FlashGeometry::tiny(); // 1 die, 8 blocks x 8 pages
        let mut rm = RegionManager::new(g, StripingMode::DieWise);
        let mut blocks = std::collections::HashSet::new();
        while let Some(ppa) = rm.allocate_page_in(0) {
            blocks.insert(ppa.block_addr());
        }
        assert_eq!(rm.free_blocks_in(0), 0);
        assert_eq!(blocks.len() as u64, g.total_blocks());
        // Refill: releasing erased blocks makes allocation succeed again,
        // and the refilled pool serves exactly the released capacity.
        let released: Vec<BlockAddr> = blocks.iter().copied().take(2).collect();
        for &b in &released {
            rm.release_block(b);
        }
        assert_eq!(rm.free_blocks_in(0), 2);
        let mut refilled = 0;
        while rm.allocate_page_in(0).is_some() {
            refilled += 1;
        }
        assert_eq!(refilled, 2 * g.pages_per_block);
        assert_eq!(rm.free_blocks_in(0), 0);
    }

    #[test]
    fn channel_wise_exhaustion_drains_all_dies_of_the_region() {
        let g = FlashGeometry::small(); // 2 channels x 2 dies
        let mut rm = RegionManager::new(g, StripingMode::ChannelWise);
        let pages_in_region = g.pages_per_die() * 2;
        let mut allocated = 0u64;
        while rm.allocate_page_in(0).is_some() {
            allocated += 1;
        }
        assert_eq!(allocated, pages_in_region);
        // Region 1 is untouched by region 0's exhaustion.
        assert_eq!(rm.free_blocks_in(1) as u64, g.total_blocks() / 2);
    }

    #[test]
    fn mark_die_dead_drains_pool_and_stops_allocation() {
        let g = FlashGeometry::small(); // 4 dies, die-wise: 1 die per region
        let mut rm = RegionManager::new(g, StripingMode::DieWise);
        let free_before = rm.free_blocks_in(1);
        assert!(free_before > 0);
        let ppa = rm.allocate_page_in(1).unwrap();
        assert!(!rm.die_dead(1));
        assert!(rm.region_alive(1));
        rm.mark_die_dead(1);
        assert!(rm.die_dead(1));
        assert!(!rm.region_alive(1), "die-wise region dies with its die");
        assert_eq!(rm.free_blocks_in(1), 0, "pool drained");
        assert!(rm.allocate_page_in(1).is_none());
        assert!(rm.allocate_page_on_die(1, 0).is_none());
        // A release of the dead die's block must not resurrect the pool.
        rm.release_block(ppa.block_addr());
        assert_eq!(rm.free_blocks_in(1), 0);
        // Idempotent.
        rm.mark_die_dead(1);
        assert_eq!(rm.free_blocks_in(1), 0);
        // Other regions are untouched.
        assert!(rm.region_alive(0));
        assert!(rm.allocate_page_in(0).is_some());
    }

    #[test]
    fn multi_die_region_survives_one_dead_die() {
        let g = FlashGeometry::small(); // 2 channels x 2 dies
        let mut rm = RegionManager::new(g, StripingMode::ChannelWise);
        rm.mark_die_dead(0);
        assert!(rm.region_alive(0), "one die of the channel region survives");
        // Every allocation now lands on the surviving die.
        for _ in 0..(g.pages_per_block * 3) {
            let ppa = rm.allocate_page_in(0).unwrap();
            assert_eq!(ppa.die_addr().flat(&g), 1);
        }
    }

    #[test]
    fn die_targeted_allocation_keeps_its_own_write_pointer() {
        let g = FlashGeometry::small();
        let mut rm = RegionManager::new(g, StripingMode::DieWise);
        // Interleave region and die-targeted allocations on the same die:
        // each stream must stay block-sequential on its own.
        let r0 = rm.allocate_page_in(0).unwrap();
        let a0 = rm.allocate_page_on_die(0, 0).unwrap();
        let r1 = rm.allocate_page_in(0).unwrap();
        let a1 = rm.allocate_page_on_die(0, 0).unwrap();
        assert_ne!(r0.block_addr(), a0.block_addr());
        assert_eq!(r1.block_addr(), r0.block_addr());
        assert_eq!(r1.page, r0.page + 1);
        assert_eq!(a1.block_addr(), a0.block_addr());
        assert_eq!(a1.page, a0.page + 1);
        assert_eq!(a0.page, 0);
        // The half-open aux block counts as active (GC must skip it); a
        // retire clears the pointer.
        assert!(rm.is_active(a0.block_addr()));
        rm.retire_block(a0.block_addr());
        assert!(!rm.is_active(a0.block_addr()));
        let a2 = rm.allocate_page_on_die(0, 0).unwrap();
        assert_ne!(a2.block_addr(), a0.block_addr());
        assert_eq!(a2.page, 0);
    }

    #[test]
    fn multi_die_region_round_robins_over_dies() {
        let g = FlashGeometry::small();
        let mut rm = RegionManager::new(g, StripingMode::ChannelWise);
        // Allocate enough pages to open several blocks and check both dies of
        // the region get used.
        let mut dies_used = std::collections::HashSet::new();
        for _ in 0..(g.pages_per_block * 3) {
            let ppa = rm.allocate_page_in(0).unwrap();
            dies_used.insert(ppa.die_addr());
        }
        assert!(dies_used.len() >= 2, "expected striping over the region's dies");
    }
}
