//! DBMS-integrated garbage collection: victim selection policies.
//!
//! Compared with an on-device FTL, NoFTL's GC sees more information: the
//! host-resident mapping table tells it exactly which pages are live, and the
//! DBMS free-space manager has already invalidated pages it knows are dead
//! (dropped extents, superseded page versions, truncated WAL segments).  GC
//! therefore copies strictly fewer pages — the source of the ≈2× reduction in
//! copybacks and erases reported in Figure 3.

use nand_flash::{BlockAddr, NandDevice, NativeFlashInterface};
use serde::{Deserialize, Serialize};

use crate::regions::{RegionId, RegionManager};

/// Victim-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GcPolicy {
    /// Pick the block with the most invalid pages (minimises copies now).
    Greedy,
    /// Weigh invalid pages against block wear: prefers less-worn blocks when
    /// the garbage counts are similar, folding dynamic wear leveling into GC.
    CostBenefit,
}

/// Select a GC victim inside `region`.
///
/// Only usable, non-free, non-active blocks that contain at least one invalid
/// page are candidates. Returns `None` when the region has no reclaimable
/// garbage.
///
/// `read_heat_penalty` folds per-die read heat into the score: a candidate
/// on a die whose entry in `read_heat` is `h`× the per-die mean has its
/// score divided by `1 + penalty × h`, so GC prefers reclaiming blocks on
/// read-cold dies — relocations and erases then interfere less with
/// foreground reads queued on the hot dies.  `read_heat` is indexed by flat
/// die (callers pass *recent* read counts — [`crate::NoFtl`] maintains a
/// decaying accumulator over [`nand_flash::FlashStats::per_die_reads`]
/// deltas, so stale skew from hours ago cannot bias victims forever); an
/// empty slice or a penalty of `0.0` (the default) leaves every score
/// untouched, identical to the read-blind scorer — a regression test pins
/// this.
pub fn select_victim(
    device: &NandDevice,
    regions: &RegionManager,
    region: RegionId,
    policy: GcPolicy,
    read_heat_penalty: f64,
    read_heat: &[u64],
) -> Option<BlockAddr> {
    let geometry = *device.geometry();
    let die_count = read_heat.len().max(1);
    let mean_reads = read_heat.iter().sum::<u64>() as f64 / die_count as f64;
    let mut best: Option<(BlockAddr, f64)> = None;
    for die in regions.dies_of(region) {
        if regions.die_dead(die.flat(&geometry) as usize) {
            // A dead die can be neither read from nor erased — nothing on it
            // is reclaimable.
            continue;
        }
        for plane in 0..geometry.planes_per_die {
            for block in 0..geometry.blocks_per_plane {
                let addr = BlockAddr::new(die.channel, die.die, plane, block);
                if regions.is_active(addr) || regions.is_free(addr) {
                    continue;
                }
                let info = match device.block_info(addr) {
                    Ok(i) if i.usable => i,
                    _ => continue,
                };
                if info.invalid_pages == 0 {
                    continue;
                }
                let base = match policy {
                    GcPolicy::Greedy => info.invalid_pages as f64,
                    GcPolicy::CostBenefit => {
                        // Invalid pages are the benefit; wear is a penalty so
                        // heavily-cycled blocks are rested when possible.
                        let wear_penalty = 1.0 + info.erase_count as f64 / 64.0;
                        info.invalid_pages as f64 / wear_penalty
                    }
                };
                let score = if read_heat_penalty > 0.0 && mean_reads > 0.0 {
                    let die_flat = addr.die_addr().flat(&geometry) as usize;
                    let heat =
                        read_heat.get(die_flat).copied().unwrap_or(0) as f64 / mean_reads;
                    base / (1.0 + read_heat_penalty * heat)
                } else {
                    base
                };
                if best.is_none_or(|(_, s)| score > s) {
                    best = Some((addr, score));
                }
            }
        }
    }
    best.map(|(a, _)| a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regions::StripingMode;
    use nand_flash::{FlashGeometry, NativeFlashInterface, Oob};

    fn setup() -> (NandDevice, RegionManager) {
        let g = FlashGeometry::tiny();
        (
            NandDevice::with_geometry(g),
            RegionManager::new(g, StripingMode::DieWise),
        )
    }

    #[test]
    fn no_garbage_means_no_victim() {
        let (device, regions) = setup();
        assert!(select_victim(&device, &regions, 0, GcPolicy::Greedy, 0.0, &device.stats().per_die_reads).is_none());
    }

    #[test]
    fn greedy_prefers_most_invalid() {
        let (mut device, mut regions) = setup();
        let g = *device.geometry();
        let data = vec![0u8; g.page_size as usize];
        // Fill two blocks via the region manager so they are not "free".
        let mut ppas = Vec::new();
        for _ in 0..(g.pages_per_block * 2) {
            let ppa = regions.allocate_page_in(0).unwrap();
            device.program_page(0, ppa, &data, Oob::data(0, 0)).unwrap();
            ppas.push(ppa);
        }
        // Close the second (active) block by allocating one page into a third.
        let _ = regions.allocate_page_in(0).unwrap();
        let block_a = ppas[0].block_addr();
        let block_b = ppas[g.pages_per_block as usize].block_addr();
        // Invalidate 2 pages in block_a and 5 in block_b.
        for p in ppas.iter().take(2) {
            device.invalidate_page(*p).unwrap();
        }
        for p in ppas.iter().skip(g.pages_per_block as usize).take(5) {
            device.invalidate_page(*p).unwrap();
        }
        let victim = select_victim(&device, &regions, 0, GcPolicy::Greedy, 0.0, &device.stats().per_die_reads).unwrap();
        assert_eq!(victim, block_b);
        assert_ne!(victim, block_a);
    }

    #[test]
    fn cost_benefit_penalises_worn_blocks() {
        let (mut device, mut regions) = setup();
        let g = *device.geometry();
        let data = vec![0u8; g.page_size as usize];
        // Two closed blocks with equal garbage, but one heavily erased before.
        let worn = nand_flash::BlockAddr::new(0, 0, 0, 0);
        for _ in 0..200 {
            device.erase_block(0, worn).unwrap();
        }
        let mut ppas = Vec::new();
        for _ in 0..(g.pages_per_block * 2) {
            let ppa = regions.allocate_page_in(0).unwrap();
            device.program_page(0, ppa, &data, Oob::data(0, 0)).unwrap();
            ppas.push(ppa);
        }
        let _ = regions.allocate_page_in(0).unwrap();
        // Equal numbers of invalid pages in both blocks.
        for p in ppas.iter().take(3) {
            device.invalidate_page(*p).unwrap();
        }
        for p in ppas.iter().skip(g.pages_per_block as usize).take(3) {
            device.invalidate_page(*p).unwrap();
        }
        let fresh_block = ppas[g.pages_per_block as usize].block_addr();
        let victim = select_victim(&device, &regions, 0, GcPolicy::CostBenefit, 0.0, &device.stats().per_die_reads).unwrap();
        // The first block allocated is block 0 (the worn one), so cost-benefit
        // must pick the other block.
        assert_eq!(ppas[0].block_addr(), worn);
        assert_eq!(victim, fresh_block);
    }

    /// Two closed blocks with equal garbage on different dies, with all read
    /// traffic hammering the first block's die.  Returns (device, regions,
    /// block on the read-hot die, block on the read-cold die).
    fn read_skewed_fixture() -> (NandDevice, RegionManager, BlockAddr, BlockAddr) {
        let g = FlashGeometry::small(); // 4 dies
        let mut device = NandDevice::with_geometry(g);
        let mut regions = RegionManager::new(g, StripingMode::Single);
        let data = vec![0u8; g.page_size as usize];
        // Single striping round-robins dies at block boundaries: the first
        // block lands on die 0, the second on die 1.
        let mut ppas = Vec::new();
        for _ in 0..(g.pages_per_block * 2) {
            let ppa = regions.allocate_page_in(0).unwrap();
            device.program_page(0, ppa, &data, Oob::data(0, 0)).unwrap();
            ppas.push(ppa);
        }
        let _ = regions.allocate_page_in(0).unwrap(); // close the second block
        let hot_block = ppas[0].block_addr();
        let cold_block = ppas[g.pages_per_block as usize].block_addr();
        assert_ne!(hot_block.die_addr(), cold_block.die_addr());
        // Equal garbage in both blocks.
        for p in ppas.iter().take(4) {
            device.invalidate_page(*p).unwrap();
        }
        for p in ppas.iter().skip(g.pages_per_block as usize).take(4) {
            device.invalidate_page(*p).unwrap();
        }
        // Hammer reads on the first block's die only.
        let mut buf = vec![0u8; g.page_size as usize];
        for _ in 0..10 {
            for p in ppas.iter().skip(4).take(4) {
                device.read_page(0, *p, &mut buf).unwrap();
            }
        }
        (device, regions, hot_block, cold_block)
    }

    #[test]
    fn read_heat_penalty_off_leaves_victims_identical_under_skewed_reads() {
        // Regression: the read-blind scorer picks the first best candidate in
        // die order; with the penalty off that choice must be unchanged no
        // matter how skewed the per-die read traffic is.
        let (device, regions, hot_block, _) = read_skewed_fixture();
        assert!(device.stats().per_die_reads.iter().any(|&r| r > 0));
        let victim = select_victim(&device, &regions, 0, GcPolicy::Greedy, 0.0, &device.stats().per_die_reads).unwrap();
        assert_eq!(
            victim, hot_block,
            "penalty 0.0 must reproduce the read-blind choice exactly"
        );
        let cb = select_victim(&device, &regions, 0, GcPolicy::CostBenefit, 0.0, &device.stats().per_die_reads).unwrap();
        assert_eq!(cb, hot_block);
    }

    #[test]
    fn read_heat_penalty_steers_gc_to_read_cold_dies() {
        let (device, regions, hot_block, cold_block) = read_skewed_fixture();
        let victim = select_victim(&device, &regions, 0, GcPolicy::Greedy, 4.0, &device.stats().per_die_reads).unwrap();
        assert_eq!(
            victim, cold_block,
            "with the penalty on, equal garbage must reclaim from the read-cold die"
        );
        assert_ne!(victim, hot_block);
    }
}
