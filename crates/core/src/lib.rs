//! # noftl-core
//!
//! The paper's primary contribution: **NoFTL**, DBMS-integrated Flash
//! management over native Flash storage (EDBT 2015, §3).
//!
//! Instead of hiding NAND behind an on-device FTL and the legacy block
//! interface, NoFTL lets the database operate on the native Flash interface
//! directly and moves the Flash-maintenance functionality into the DBMS:
//!
//! * **address translation** in host memory ([`mapping::HostMappingTable`]) —
//!   the host has enough RAM for a full page-level table, unlike the device
//!   (§3.1);
//! * **out-of-place updates, garbage collection and wear leveling**
//!   ([`NoFtl`], [`gc`], [`wear`]) — driven by DBMS knowledge: pages the
//!   free-space manager reports dead are never relocated;
//! * **bad-block management** ([`bad_block::BadBlockManager`]);
//! * **physical regions and Flash-aware writer assignment**
//!   ([`regions::RegionManager`]) — dies are grouped into regions,
//!   db-writers are bound to regions, and data placement follows die-wise
//!   striping (§3.2, the mechanism behind Figure 4).
//!
//! The crate depends only on the `nand-flash` device model; the Shore-MT-like
//! storage engine (`storage-engine` crate) plugs it in as one of its storage
//! back ends.
//!
//! ## Hot-path data structures
//!
//! The §3.1 resource argument — the *host* can afford dense per-page tables
//! where an SSD controller cannot — is applied literally to every per-page
//! code path in this crate.  Nothing on a write, GC-relocation or flusher
//! path hashes or scans:
//!
//! * [`mapping::HostMappingTable`] keeps **both** directions as dense arrays:
//!   logical→physical indexed by LPN, physical→logical indexed by flat
//!   physical page ([`sim_utils::flatmap::FlatMap`]).  GC's "which LPN lives
//!   here?" is one indexed load.
//! * [`regions::RegionManager`] precomputes a `die_flat → RegionId` table, so
//!   `region_of_die` / `region_of_block` are one load instead of a scan over
//!   the region lists; free blocks are queued **per die**, so opening a fresh
//!   block in a multi-die region pops the next die's queue instead of
//!   scanning a region-wide list.
//! * Sparse-keyed hot structures elsewhere in the stack (buffer-pool resident
//!   table, DFTL's CMT directory) use [`sim_utils::intmap::IntMap`], an
//!   open-addressing integer table with Fibonacci hashing — no SipHash.
//!
//! The before/after numbers for each structure are recorded in
//! `BENCH_pr1.json` at the repository root.
//!
//! ## Asynchronous write path (completion-poll interface)
//!
//! [`NoFtl::write_batch`] normally dispatches its per-die program runs
//! synchronously.  With [`NoFtl::set_async_depth`] above 1 the runs are
//! *submitted* into the device's bounded per-die command queues
//! (`nand_flash::NandDevice::submit_program_pages`) instead: a dispatch no
//! longer waits for commands still in flight on other dies, and runs from
//! **different submissions** — successive flush cycles, WAL group commits —
//! pipeline behind each other on the die they target.  Completions are
//! deterministic and travel with each submission; [`NoFtl::drain`] is the
//! barrier the storage engine uses at checkpoints.  Depth 1 is bit- and
//! cycle-identical to the synchronous dispatch (the `NOFTL_ASYNC=1`
//! equivalence leg in `tests/equivalence.rs`).  GC and wear leveling stay on
//! the synchronous region timeline: they are already parallel across regions
//! and must observe their own relocations.
//!
//! ## GC relocation batching
//!
//! GC relocates a victim's survivors plane-locally via COPYBACK when it can.
//! Cross-plane survivors go through read + program; with
//! [`NoFtl::set_gc_batch_pages`] ≥ 2 consecutive cross-plane survivors are
//! routed through one multi-page program dispatch per same-die run (pending
//! runs flush before any interleaved copyback so the destination block's
//! sequential-programming order holds).  Batch size 1 is command- and
//! cycle-identical to the legacy per-relocation path.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bad_block;
pub mod config;
pub mod gc;
pub mod mapping;
pub mod noftl;
pub mod regions;
pub mod stats;
pub mod wear;

pub use config::NoFtlConfig;
pub use noftl::NoFtl;
pub use regions::{FlusherAssignment, RegionId, RegionManager, StripingMode};
pub use stats::NoFtlStats;
