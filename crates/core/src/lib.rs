//! # noftl-core
//!
//! The paper's primary contribution: **NoFTL**, DBMS-integrated Flash
//! management over native Flash storage (EDBT 2015, §3).
//!
//! Instead of hiding NAND behind an on-device FTL and the legacy block
//! interface, NoFTL lets the database operate on the native Flash interface
//! directly and moves the Flash-maintenance functionality into the DBMS:
//!
//! * **address translation** in host memory ([`mapping::HostMappingTable`]) —
//!   the host has enough RAM for a full page-level table, unlike the device
//!   (§3.1);
//! * **out-of-place updates, garbage collection and wear leveling**
//!   ([`NoFtl`], [`gc`], [`wear`]) — driven by DBMS knowledge: pages the
//!   free-space manager reports dead are never relocated;
//! * **bad-block management** ([`bad_block::BadBlockManager`]);
//! * **physical regions and Flash-aware writer assignment**
//!   ([`regions::RegionManager`]) — dies are grouped into regions,
//!   db-writers are bound to regions, and data placement follows die-wise
//!   striping (§3.2, the mechanism behind Figure 4).
//!
//! The crate depends only on the `nand-flash` device model; the Shore-MT-like
//! storage engine (`storage-engine` crate) plugs it in as one of its storage
//! back ends.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bad_block;
pub mod config;
pub mod gc;
pub mod mapping;
pub mod noftl;
pub mod regions;
pub mod stats;
pub mod wear;

pub use config::NoFtlConfig;
pub use noftl::NoFtl;
pub use regions::{FlusherAssignment, RegionId, RegionManager, StripingMode};
pub use stats::NoFtlStats;
