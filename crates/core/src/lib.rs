//! # noftl-core
//!
//! The paper's primary contribution: **NoFTL**, DBMS-integrated Flash
//! management over native Flash storage (EDBT 2015, §3).
//!
//! Instead of hiding NAND behind an on-device FTL and the legacy block
//! interface, NoFTL lets the database operate on the native Flash interface
//! directly and moves the Flash-maintenance functionality into the DBMS:
//!
//! * **address translation** in host memory ([`mapping::HostMappingTable`]) —
//!   the host has enough RAM for a full page-level table, unlike the device
//!   (§3.1);
//! * **out-of-place updates, garbage collection and wear leveling**
//!   ([`NoFtl`], [`gc`], [`wear`]) — driven by DBMS knowledge: pages the
//!   free-space manager reports dead are never relocated;
//! * **bad-block management** ([`bad_block::BadBlockManager`]);
//! * **physical regions and Flash-aware writer assignment**
//!   ([`regions::RegionManager`]) — dies are grouped into regions,
//!   db-writers are bound to regions, and data placement follows die-wise
//!   striping (§3.2, the mechanism behind Figure 4).
//!
//! The crate depends only on the `nand-flash` device model; the Shore-MT-like
//! storage engine (`storage-engine` crate) plugs it in as one of its storage
//! back ends.
//!
//! ## Hot-path data structures
//!
//! The §3.1 resource argument — the *host* can afford dense per-page tables
//! where an SSD controller cannot — is applied literally to every per-page
//! code path in this crate.  Nothing on a write, GC-relocation or flusher
//! path hashes or scans:
//!
//! * [`mapping::HostMappingTable`] keeps **both** directions as dense arrays:
//!   logical→physical indexed by LPN, physical→logical indexed by flat
//!   physical page ([`sim_utils::flatmap::FlatMap`]).  GC's "which LPN lives
//!   here?" is one indexed load.
//! * [`regions::RegionManager`] precomputes a `die_flat → RegionId` table, so
//!   `region_of_die` / `region_of_block` are one load instead of a scan over
//!   the region lists; free blocks are queued **per die**, so opening a fresh
//!   block in a multi-die region pops the next die's queue instead of
//!   scanning a region-wide list.
//! * Sparse-keyed hot structures elsewhere in the stack (buffer-pool resident
//!   table, DFTL's CMT directory) use [`sim_utils::intmap::IntMap`], an
//!   open-addressing integer table with Fibonacci hashing — no SipHash.
//!
//! The before/after numbers for each structure are recorded in
//! `BENCH_pr1.json` at the repository root.
//!
//! ## Asynchronous I/O path (completion-poll interface)
//!
//! [`NoFtl::write_batch`] normally dispatches its per-die program runs
//! synchronously.  With [`NoFtl::set_async_depth`] above 1 the runs are
//! *submitted* into the device's bounded per-die command queues
//! (`nand_flash::NandDevice::submit_program_pages`) instead: a dispatch no
//! longer waits for commands still in flight on other dies, and runs from
//! **different submissions** — successive flush cycles, WAL group commits —
//! pipeline behind each other on the die they target.  Completions are
//! deterministic and travel with each submission; [`NoFtl::drain`] is the
//! barrier the storage engine uses at checkpoints, and
//! [`NoFtl::poll_completions`] drains the completion stream a poll-driven
//! engine scheduler advances its clock off.  Depth 1 is bit- and
//! cycle-identical to the synchronous dispatch (the `NOFTL_ASYNC=1`
//! equivalence leg in `tests/equivalence.rs`).
//!
//! Since PR 4 **reads ride the same queues**: [`NoFtl::read`] submits its
//! PAGE READ into the target die's queue at depth > 1, so a foreground point
//! read honestly waits its turn behind in-flight program/erase/GC commands
//! (the recorded read latency includes the queueing delay), and
//! [`NoFtl::read_batch`] groups a read burst by die and hands each die one
//! pipelined multi-page read dispatch
//! (`nand_flash::NativeFlashInterface::read_pages`: one command overhead,
//! array senses overlapping channel transfers).  GC is no longer a silent
//! bystander either: at depth > 1 its relocations (source reads, victim
//! programs, copybacks) and erases submit through the same queues, so
//! background GC visibly delays — and is delayed by — foreground traffic,
//! which is exactly the interference the paper's native-interface argument
//! is about.  GC still *chains* its own commands (it must observe its own
//! relocations); only the queue admission is shared.
//!
//! ## GC relocation batching
//!
//! GC relocates a victim's survivors plane-locally via COPYBACK when it can.
//! Cross-plane survivors go through read + program; with
//! [`NoFtl::set_gc_batch_pages`] ≥ 2 consecutive cross-plane survivors are
//! routed through one multi-page program dispatch per same-die run (pending
//! runs flush before any interleaved copyback so the destination block's
//! sequential-programming order holds).  Batch size 1 is command- and
//! cycle-identical to the legacy per-relocation path.
//!
//! ## Flash-fault recovery (PR 6)
//!
//! With NoFTL there is no device firmware to paper over media errors — the
//! DBMS layer *is* the error-handling layer.  The device model injects
//! deterministic, seeded program/erase/read failures
//! (`nand_flash::fault::FaultPlan`, enabled via the `NOFTL_FAULTS` knob;
//! off is bit- and cycle-identical to a fault-free build), and this crate
//! recovers from every class without losing committed data:
//!
//! * **Program failure** — the failing page is consumed by the device and its
//!   block is worn out for writes.  [`NoFtl::write_batch`] commits the
//!   mappings of the pages that landed, rolls the un-programmed tail of the
//!   aborted run back into the allocator
//!   ([`regions::RegionManager::rollback_unprogrammed`] — otherwise the
//!   region's write pointer desynchronises from the device's sequential
//!   programming rule), retires the block (relocating its live pages), and
//!   re-programs the remainder on fresh blocks.  GC's batched relocation path
//!   does the same unwind for its pending destination runs.
//! * **Erase failure** — the victim block is retired permanently through
//!   [`bad_block::BadBlockManager`] (grown defect, spare capacity shrinks);
//!   already-relocated survivors keep their new homes and GC restarts victim
//!   selection rather than aborting the collection.
//! * **Read errors** — correctable ECC flips are counted and served; an
//!   uncorrectable page gets a bounded retry ladder
//!   (`NoFtl::read_page_retrying`), and only a page that stays unreadable
//!   surfaces a typed error for the storage engine's WAL-replay page rebuild.
//!   Blocks whose read-disturb counters cross
//!   [`NoFtlConfig`]`::scrub_read_disturb_threshold` are scrubbed in the
//!   background (live pages relocated, block erased) before disturb
//!   accumulates into data loss.
//!
//! [`stats::NoFtlStats`] reports the recovery truthfully (retirement counts
//! per failure class, retry/scrub counters) — the chaos storms in
//! `tests/chaos.rs` drive TPC-B/TPC-C mixes under seeded fault plans, with
//! and without crash-recovery at commit boundaries, and assert zero
//! committed-data loss against those stats.
//!
//! ## Concurrency model (PR 7)
//!
//! The crate's hot tables split cleanly into `&self` readers and `&mut self`
//! writers with no interior mutability: [`mapping::HostMappingTable`]
//! lookups and [`regions::RegionManager`] placement queries are safe for any
//! number of concurrent readers (`Send + Sync`, shareable behind an
//! `RwLock`), while mapping updates and block allocation stay single-writer.
//! The concurrent storage engine (`storage-engine`'s `ConcurrentEngine`,
//! gated by `NOFTL_THREADS`) relies on exactly that split: device-state
//! mutation is serialised behind its backend lock — last in the engine's
//! lock order — and everything `&self` may be read concurrently.  See the
//! reader-safety sections of [`mapping`] and [`regions`].
//!
//! ## Die-level reliability (PR 10)
//!
//! Block retirement (PR 6) recovers from failures the size of one erase
//! block; a *die* failure takes out every block of a plane group at once,
//! and without an FTL the DBMS again is the layer that must answer for it.
//! Each region carries a [`RedundancyPolicy`] (config field
//! [`NoFtlConfig::redundancy`], or the `NOFTL_REDUNDANCY` knob parsed by the
//! storage engine; default `None` is bit- and cycle-identical to a build
//! without the feature):
//!
//! * **`Parity(k)`** — writes into the region accumulate an open stripe of
//!   `k` data pages on *pairwise-distinct dies* plus one XOR parity page on
//!   yet another die, sealed as the stripe fills.  One die failure costs at
//!   most one page per stripe, which the survivors reconstruct exactly.  GC
//!   and block retirement keep stripes honest: erasing or retiring a block
//!   holding a member (or the parity) breaks the stripe and re-queues the
//!   still-mapped members into the open stripe (`members_reprotected`).
//!   Space cost is `1/k` extra programs plus stale-stripe parity pinned
//!   until its members' blocks erase — over-provision accordingly
//!   (`storage_engine::backend::redundancy_op_ratio` computes the floor).
//! * **`Mirror`** — every program is duplicated onto a second die; the
//!   mirror serves reads of the primary's die after it fails, at 2x space.
//!
//! A die kill (deterministic `nand_flash::fault::KillSpec`, or wear) flows
//! through three stages: **degraded reads** ([`NoFtl::read`] reconstructs a
//! lost page bit-identical from its stripe or mirror, counting
//! `degraded_reads`), **online rebuild** ([`NoFtl::schedule_rebuild`] walks
//! the dead die's mapped pages in bounded background steps through the PR 9
//! SLO hook, deferring read-hot instants; [`NoFtl::rebuild_all`] is the
//! foreground variant), and **honest loss accounting** (unprotected pages
//! keep their dead mapping, reads fail typed `DieFailed` so WAL-replay can
//! take over, and [`stats::RebuildStats`]`::pages_lost` counts them —
//! truthfulness is pinned by `tests/chaos.rs`' die-failure storms).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bad_block;
pub mod config;
pub mod gc;
pub mod mapping;
pub mod noftl;
pub mod regions;
pub mod stats;
pub mod wear;

pub use config::{NoFtlConfig, RedundancyPolicy};
pub use noftl::NoFtl;
pub use regions::{FlusherAssignment, RegionId, RegionManager, StripingMode};
pub use stats::{NoFtlStats, RebuildStats, RedundancyStats};
