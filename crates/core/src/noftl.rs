//! The NoFTL storage manager: DBMS-integrated Flash management over the
//! native Flash interface.
//!
//! [`NoFtl`] is the component a database storage manager embeds when it runs
//! on native Flash (Figure 2 of the paper).  It owns the device, the
//! host-resident mapping table, the region manager, GC, wear leveling and the
//! bad-block manager, and exposes a logical-page read/write interface plus
//! the DBMS-specific hooks that an on-device FTL can never have:
//!
//! * [`NoFtl::mark_dead`] — the free-space manager declares a page dead so GC
//!   never copies it;
//! * [`NoFtl::region_of_lpn`] / [`NoFtl::regions`] — exposes the physical
//!   layout so the buffer manager can bind db-writers to regions (§3.2);
//! * [`NoFtl::write_in_region`] — placement-aware writes used by the
//!   Flash-aware flusher assignment.

use nand_flash::{
    BlockAddr, DeviceConfig, DeviceIdentification, FaultPlan, FlashError, FlashGeometry,
    FlashResult, FlashStats, NandDevice, NativeFlashInterface, Oob, OpCompletion, PageState, Ppa,
    QueuedCompletion,
};
use sim_utils::flatmap::FlatBitSet;
use sim_utils::time::SimInstant;

use crate::bad_block::{BadBlockManager, RetireReason};
use crate::config::{NoFtlConfig, RedundancyPolicy};
use crate::gc::{select_victim, GcPolicy};
use crate::mapping::HostMappingTable;
use crate::regions::{RegionId, RegionManager};
use crate::stats::{NoFtlStats, RebuildStats, RedundancyStats};
use crate::wear::WearLeveler;

/// Sentinel: "this physical page is not in any parity stripe".
const NO_STRIPE: u32 = u32::MAX;
/// Sentinel: "this physical page has no mirror copy".
const NO_MIRROR: u64 = u64::MAX;

/// A sealed parity stripe: up to `k` data pages on pairwise-distinct dies
/// plus one XOR parity page on yet another die.  The stripe covers the
/// *flash contents* of its pages — content survives logical invalidation
/// (NAND keeps it until the block erases), so a stripe only breaks when one
/// of its blocks is erased or retired.
#[derive(Debug, Clone)]
struct Stripe {
    /// Flat physical addresses of the data members.
    members: Vec<u64>,
    /// Flat physical address of the parity page.
    parity: u64,
}

/// DBMS-integrated Flash management (the paper's contribution).
pub struct NoFtl {
    device: NandDevice,
    map: HostMappingTable,
    regions: RegionManager,
    bad_blocks: BadBlockManager,
    wear: WearLeveler,
    gc_policy: GcPolicy,
    stats: NoFtlStats,
    /// Physical pages invalidated through dead-page hints (distinguished from
    /// ordinary superseded pages for reporting).
    dead_hinted: FlatBitSet,
    logical_pages: u64,
    gc_low: usize,
    gc_high: usize,
    page_size: usize,
    scratch: Vec<u8>,
    /// Per-die command-queue depth of the asynchronous write path (1 = every
    /// dispatch waits for its predecessor: the synchronous semantics).
    async_depth: usize,
    /// Pages per batched GC relocation dispatch (<= 1 = legacy per-page path).
    gc_batch_pages: usize,
    /// Read-heat penalty of GC victim scoring (0.0 = read-blind, identical
    /// to the legacy scorer; see [`crate::gc::select_victim`]).
    gc_read_heat_penalty: f64,
    /// Decaying per-die recent-read accumulator feeding victim scoring:
    /// halved and topped up with the [`FlashStats::per_die_reads`] delta at
    /// every victim selection, so heat tracks *current* interference rather
    /// than lifetime totals (stale skew decays away).  Maintained only while
    /// the penalty is on.
    gc_read_heat: Vec<u64>,
    /// `per_die_reads` snapshot the last heat update was taken against.
    gc_read_marker: Vec<u64>,
    /// Proactive GC read-occupancy threshold (0 = scheduling off; see
    /// [`NoFtl::schedule_gc`]).
    gc_schedule_read_occupancy: usize,
    /// Whether the device runs with a fault plan (cached at construction so
    /// the fault-free hot paths pay nothing for the recovery machinery).
    faults_active: bool,
    /// Read-disturb scrub threshold (see
    /// [`NoFtlConfig::scrub_read_disturb_threshold`]).
    scrub_threshold: u64,
    /// Per-region redundancy policy (empty = unconfigured, all `None`).
    redundancy: Vec<RedundancyPolicy>,
    /// Cached "any region is protected" gate: when false every redundancy
    /// hook is a single branch, keeping the unprotected build bit- and
    /// cycle-identical to one without the machinery.
    redundancy_active: bool,
    /// Open parity stripe: flat addresses of data members accumulated so
    /// far.  Global — under die-wise striping a region is a single die, so
    /// die-disjoint stripes necessarily span regions.
    open_stripe: Vec<u64>,
    /// Running XOR of the open stripe members' contents, kept in host
    /// memory so the stripe can seal without re-reading members (even ones
    /// on a die that just died).
    open_stripe_xor: Vec<u8>,
    /// Flat physical page → sealed stripe id ([`NO_STRIPE`] = none).
    /// Dense `Vec` rather than a hash map per the determinism rules of the
    /// simulation crates; sized lazily when redundancy first activates.
    stripe_of: Vec<u32>,
    /// Sealed stripes by id; `None` slots are free for reuse.
    stripes: Vec<Option<Stripe>>,
    /// Free-list of reusable stripe ids.
    stripe_free_ids: Vec<u32>,
    /// Flat physical page ↔ flat physical page mirror links, both
    /// directions ([`NO_MIRROR`] = none).
    mirror_of: Vec<u64>,
    /// Dies this layer has already reacted to as dead (flat index), diffed
    /// against [`NandDevice::dead_dies`] on each failure notification.
    known_dead: Vec<bool>,
    /// Online-rebuild cursors: `(die_flat, next page offset inside the
    /// die)` for every dead die whose mapped pages are still being walked.
    rebuild_cursors: Vec<(usize, u64)>,
    /// Redundancy counters (parity/mirror/degraded reads).
    redundancy_stats: RedundancyStats,
    /// Rebuild counters.
    rebuild_stats: RebuildStats,
    /// Cumulative device reads issued by reconstruction / rebuild /
    /// redundancy maintenance, per die — subtracted from the GC read-heat
    /// deltas so rebuild traffic cannot bias victim selection.
    rebuild_reads_per_die: Vec<u64>,
    /// `rebuild_reads_per_die` snapshot of the last heat update.
    rebuild_read_marker: Vec<u64>,
    /// Completion instant of re-protection work done while unwinding the
    /// committed prefix of a failed batched relocation.  The error path
    /// cannot carry a timestamp, so the work is stashed here and folded
    /// into the retirement that always follows the failure
    /// ([`NoFtl::retire_failed_block`] takes it).  Stays 0 with redundancy
    /// off, keeping the off leg cycle-identical.
    unwind_horizon: SimInstant,
}

/// Additional read attempts the retry ladder issues after an uncorrectable
/// ECC result before giving up (each attempt draws the read-error model
/// independently, the way real controllers step through retry voltages).
const READ_RETRY_LIMIT: u32 = 3;

/// Mapped pages one background rebuild step reconstructs before yielding —
/// small so foreground traffic slips between steps (the SLO scheduler
/// additionally defers steps into read-cold instants).
const REBUILD_BATCH_PAGES: u64 = 8;

/// XOR `data` into `acc` (parity accumulation and reconstruction).
fn xor_into(acc: &mut [u8], data: &[u8]) {
    for (a, b) in acc.iter_mut().zip(data.iter()) {
        *a ^= *b;
    }
}

impl NoFtl {
    /// Build a NoFTL instance and its backing device from `config`.
    pub fn new(config: NoFtlConfig) -> Self {
        let geometry = config.geometry;
        let mut dev_cfg = DeviceConfig::new(geometry);
        dev_cfg.store_data = config.store_data;
        dev_cfg.endurance_override = config.endurance_override;
        let device = NandDevice::new(dev_cfg);
        Self::with_device(device, config)
    }

    /// Build NoFTL on top of an existing device (e.g. one shared with an
    /// emulator front-end).
    ///
    /// Blocks the device reports as factory-bad are retired up front, and
    /// the exported logical capacity (and thus the OP headroom the GC
    /// watermarks defend) is derived from the *post-retirement* physical
    /// capacity — a device shipped with bad blocks must not promise logical
    /// pages it cannot back.
    pub fn with_device(device: NandDevice, config: NoFtlConfig) -> Self {
        let geometry = *device.geometry();
        let mut regions = RegionManager::new(geometry, config.striping);
        let mut bad_blocks = BadBlockManager::new();
        let mut factory_bad_pages: u64 = 0;
        for channel in 0..geometry.channels {
            for die in 0..geometry.dies_per_channel {
                for plane in 0..geometry.planes_per_die {
                    for block in 0..geometry.blocks_per_plane {
                        let addr = BlockAddr::new(channel, die, plane, block);
                        let usable = device.block_info(addr).map(|i| i.usable).unwrap_or(false);
                        if !usable {
                            bad_blocks.retire(addr, RetireReason::Factory);
                            regions.retire_block(addr);
                            factory_bad_pages += geometry.pages_per_block as u64;
                        }
                    }
                }
            }
        }
        let usable_pages = geometry.total_pages() - factory_bad_pages;
        let logical_pages = config
            .logical_pages()
            .min(((usable_pages as f64) * (1.0 - config.op_ratio)).floor() as u64);
        assert!(logical_pages > 0, "no logical capacity left after OP");
        let mut device = device;
        device.set_queue_depth(config.async_queue_depth.max(1));
        let faults_active = device.faults_enabled();
        let redundancy = config.redundancy.clone();
        let redundancy_active = redundancy.iter().any(|p| p.is_protected());
        let (stripe_of, mirror_of) = if redundancy_active {
            let total = geometry.total_pages() as usize;
            (vec![NO_STRIPE; total], vec![NO_MIRROR; total])
        } else {
            (Vec::new(), Vec::new())
        };
        Self {
            faults_active,
            redundancy,
            redundancy_active,
            open_stripe: Vec::new(),
            open_stripe_xor: Vec::new(),
            stripe_of,
            stripes: Vec::new(),
            stripe_free_ids: Vec::new(),
            mirror_of,
            known_dead: Vec::new(),
            rebuild_cursors: Vec::new(),
            redundancy_stats: RedundancyStats::default(),
            rebuild_stats: RebuildStats::default(),
            rebuild_reads_per_die: Vec::new(),
            rebuild_read_marker: Vec::new(),
            unwind_horizon: 0,
            scrub_threshold: config.scrub_read_disturb_threshold.max(1),
            device,
            map: HostMappingTable::with_physical_pages(logical_pages, geometry.total_pages()),
            regions,
            bad_blocks,
            wear: WearLeveler::new(config.wear_leveling_threshold),
            gc_policy: GcPolicy::Greedy,
            stats: NoFtlStats::new(),
            dead_hinted: FlatBitSet::with_index_capacity(geometry.total_pages() as usize),
            logical_pages,
            gc_low: config.gc_low_watermark.max(1),
            gc_high: config.gc_high_watermark.max(config.gc_low_watermark + 1),
            page_size: geometry.page_size as usize,
            scratch: vec![0u8; geometry.page_size as usize],
            async_depth: config.async_queue_depth.max(1),
            gc_batch_pages: config.gc_batch_pages,
            gc_read_heat_penalty: config.gc_read_heat_penalty,
            gc_read_heat: Vec::new(),
            gc_read_marker: Vec::new(),
            gc_schedule_read_occupancy: config.gc_schedule_read_occupancy,
        }
    }

    /// Convenience constructor with the default configuration for `geometry`.
    pub fn with_geometry(geometry: FlashGeometry) -> Self {
        Self::new(NoFtlConfig::new(geometry))
    }

    /// Number of logical pages exported to the DBMS.
    pub fn logical_pages(&self) -> u64 {
        self.logical_pages
    }

    /// Device identification (geometry, endurance, capabilities) — what the
    /// DBMS learns through the native interface's IDENTIFY command.
    pub fn identify(&self) -> DeviceIdentification {
        self.device.identify()
    }

    /// Number of physical regions (die-wise striping ⇒ number of dies).
    pub fn regions(&self) -> usize {
        self.regions.regions()
    }

    /// Region a logical page is striped to.
    pub fn region_of_lpn(&self, lpn: u64) -> RegionId {
        self.regions.region_of_lpn(lpn)
    }

    /// Borrow the region manager (placement queries by the buffer manager).
    pub fn region_manager(&self) -> &RegionManager {
        &self.regions
    }

    /// GC victim-selection policy (greedy by default).
    pub fn set_gc_policy(&mut self, policy: GcPolicy) {
        self.gc_policy = policy;
    }

    /// Per-die queue depth of the asynchronous write path.
    pub fn async_depth(&self) -> usize {
        self.async_depth
    }

    /// Set the per-die queue depth for batched write dispatches.  At depth 1
    /// every dispatch takes the synchronous `program_pages` path — commands,
    /// timing and statistics are identical to the pre-async code.  Deeper
    /// queues route dispatches through the device's submit/poll interface so
    /// runs from *different* submissions (successive flush cycles, WAL group
    /// commits) pipeline on the per-die command queues.
    pub fn set_async_depth(&mut self, depth: usize) {
        self.async_depth = depth.max(1);
        self.device.set_queue_depth(self.async_depth);
    }

    /// Enable or disable gap-backfilling die/channel occupancy on the
    /// device (default off: the pinned `busy_until` ratchet).  The
    /// multi-client engine turns it on so concurrent clients whose
    /// commands arrive out of timestamp order are not charged queue-wait
    /// on provably-idle resources.
    pub fn set_backfill_occupancy(&mut self, on: bool) {
        self.device.set_backfill_occupancy(on);
    }

    /// Set the maximum pages per batched GC relocation dispatch (`0`/`1`
    /// keeps the legacy per-relocation path).
    pub fn set_gc_batch_pages(&mut self, pages: usize) {
        self.gc_batch_pages = pages;
    }

    /// Set the read-heat penalty of GC victim scoring (`0.0` restores the
    /// read-blind legacy scorer; see [`crate::gc::select_victim`]).
    pub fn set_gc_read_heat_penalty(&mut self, penalty: f64) {
        self.gc_read_heat_penalty = penalty;
    }

    /// Current read-heat penalty of GC victim scoring.
    pub fn gc_read_heat_penalty(&self) -> f64 {
        self.gc_read_heat_penalty
    }

    /// Proactive GC scheduling threshold (`0` = off; see
    /// [`NoFtl::schedule_gc`]).
    pub fn gc_schedule_read_occupancy(&self) -> usize {
        self.gc_schedule_read_occupancy
    }

    /// Set the proactive GC scheduling threshold, in in-flight device reads
    /// (`0` disables [`NoFtl::schedule_gc`] entirely).
    pub fn set_gc_schedule_read_occupancy(&mut self, occupancy: usize) {
        self.gc_schedule_read_occupancy = occupancy;
    }

    /// Commands in flight across every die as of `now` — the foreground-load
    /// signal DBMS-side schedulers (flusher throttle, proactive GC) consult.
    pub fn queue_occupancy(&self, now: SimInstant) -> usize {
        self.device.inflight_total(now)
    }

    /// Read commands in flight across every die as of `now`.
    pub fn read_occupancy(&self, now: SimInstant) -> usize {
        self.device.inflight_reads(now)
    }

    /// Proactively reclaim one victim block in the most-pressured region,
    /// but only during a *read-cold* instant: when
    /// [`NoFtl::read_occupancy`] is at or above the configured threshold the
    /// relocation is deferred (counted in
    /// [`NoFtlStats::gc_deferred_hot`]), so background copies do not land in
    /// the middle of a foreground read burst.  Demand GC on the allocator's
    /// low-watermark path ([`ensure_region_space`](NoFtl) internals) remains
    /// the emergency backstop and is unchanged.
    ///
    /// Returns `Ok(None)` when scheduling is off (threshold 0), no region is
    /// under pressure (every region is above the high watermark), the
    /// instant is read-hot, or the chosen region holds no reclaimable
    /// garbage.
    pub fn schedule_gc(&mut self, now: SimInstant) -> FlashResult<Option<SimInstant>> {
        if self.gc_schedule_read_occupancy == 0 {
            return Ok(None);
        }
        let Some(region) = (0..self.regions.regions())
            .filter(|&r| self.regions.region_alive(r))
            .min_by_key(|&r| self.regions.free_blocks_in(r))
        else {
            return Ok(None);
        };
        if self.regions.free_blocks_in(region) >= self.gc_high {
            return Ok(None);
        }
        if self.read_occupancy(now) >= self.gc_schedule_read_occupancy {
            self.stats.gc_deferred_hot += 1;
            return Ok(None);
        }
        let end = self.gc_region_once(now, region)?;
        if end.is_some() {
            self.stats.gc_scheduled_cold += 1;
        }
        Ok(end)
    }

    /// Barrier over the device command queues: the instant by which every
    /// in-flight dispatch has completed (at least `now`).
    pub fn drain(&mut self, now: SimInstant) -> SimInstant {
        self.device.drain_queues(now)
    }

    /// Drain every queued completion recorded since the last poll, in submit
    /// order — the completion stream a poll-driven engine scheduler advances
    /// its clock off.
    pub fn poll_completions(&mut self) -> Vec<QueuedCompletion> {
        self.device.poll_completions()
    }

    /// NoFTL-level statistics.
    pub fn stats(&self) -> &NoFtlStats {
        &self.stats
    }

    /// Native-command statistics of the device.
    pub fn flash_stats(&self) -> &FlashStats {
        self.device.stats()
    }

    /// Borrow the underlying device.
    pub fn device(&self) -> &NandDevice {
        &self.device
    }

    /// Whether the underlying device runs with a fault-injection plan.
    pub fn faults_enabled(&self) -> bool {
        self.faults_active
    }

    /// Install (or clear) the device's fault-injection plan, keeping the
    /// cached fault-path gate in sync.  The DBMS-side knob wiring
    /// (`storage_engine::backend`) uses this to inject the centrally parsed
    /// `NOFTL_FAULTS` plan into a device configured without one; an
    /// explicitly configured plan is never overridden there.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.device.set_fault_plan(plan);
        self.faults_active = self.device.faults_enabled();
    }

    /// Bad-block registry.
    pub fn bad_blocks(&self) -> &BadBlockManager {
        &self.bad_blocks
    }

    /// Whether a redundancy policy vector was configured (even all-`None`).
    /// The DBMS-side knob wiring uses this to avoid overriding an
    /// explicitly configured instance with the `NOFTL_REDUNDANCY` default.
    pub fn redundancy_configured(&self) -> bool {
        !self.redundancy.is_empty()
    }

    /// Redundancy policy of `region` (`None` when unconfigured).
    pub fn redundancy_policy(&self, region: RegionId) -> RedundancyPolicy {
        self.redundancy
            .get(region)
            .copied()
            .unwrap_or(RedundancyPolicy::None)
    }

    /// Apply one redundancy policy to every region.
    pub fn set_redundancy_all(&mut self, policy: RedundancyPolicy) {
        self.redundancy = vec![policy; self.regions.regions()];
        self.refresh_redundancy();
    }

    /// Set the redundancy policy of a single region (unset regions stay
    /// `None`) — e.g. `Mirror` for the small hot WAL region, `Parity` for
    /// the data regions.
    pub fn set_redundancy_policy(&mut self, region: RegionId, policy: RedundancyPolicy) {
        if self.redundancy.len() < self.regions.regions() {
            self.redundancy
                .resize(self.regions.regions(), RedundancyPolicy::None);
        }
        if region < self.redundancy.len() {
            self.redundancy[region] = policy;
        }
        self.refresh_redundancy();
    }

    fn refresh_redundancy(&mut self) {
        self.redundancy_active = self.redundancy.iter().any(|p| p.is_protected());
        if self.redundancy_active && self.stripe_of.is_empty() {
            let total = self.device.geometry().total_pages() as usize;
            self.stripe_of = vec![NO_STRIPE; total];
            self.mirror_of = vec![NO_MIRROR; total];
        }
    }

    /// Redundancy counters (parity, mirroring, degraded reads).
    pub fn redundancy_stats(&self) -> &RedundancyStats {
        &self.redundancy_stats
    }

    /// Online-rebuild counters.
    pub fn rebuild_stats(&self) -> &RebuildStats {
        &self.rebuild_stats
    }

    /// Whether any die of the device has failed permanently.
    pub fn any_die_dead(&self) -> bool {
        self.device.any_die_dead()
    }

    /// Reset NoFTL and device statistics.
    pub fn reset_stats(&mut self) {
        self.stats.clear();
        self.device.reset_stats();
        self.redundancy_stats.clear();
        self.rebuild_stats.clear();
    }

    fn check_lpn(&self, lpn: u64) -> FlashResult<()> {
        if lpn < self.logical_pages {
            Ok(())
        } else {
            Err(FlashError::InvalidAddress {
                what: format!(
                    "logical page {lpn} out of range (capacity {})",
                    self.logical_pages
                ),
            })
        }
    }

    fn check_buf(&self, len: usize) -> FlashResult<()> {
        if len == self.page_size {
            Ok(())
        } else {
            Err(FlashError::BufferSizeMismatch {
                expected: self.page_size,
                actual: len,
            })
        }
    }

    /// Read logical page `lpn`.
    ///
    /// At [`NoFtl::async_depth`] 1 this is the synchronous PAGE READ —
    /// identical commands, timing and statistics to the pre-async code.  At
    /// deeper settings the read is *submitted* into its die's command queue,
    /// so it honestly queues behind whatever program/erase/GC commands are
    /// already in flight there; the returned completion (a ticket on the
    /// deterministic virtual clock) says when the data may be used, and the
    /// recorded read latency includes the queueing delay — the paper's
    /// foreground-read interference, now observable.
    pub fn read(&mut self, now: SimInstant, lpn: u64, buf: &mut [u8]) -> FlashResult<OpCompletion> {
        self.check_lpn(lpn)?;
        self.check_buf(buf.len())?;
        let g = *self.device.geometry();
        let Some(flat) = self.map.get(lpn) else {
            return Err(FlashError::ReadOfUnwrittenPage(Ppa::from_flat(&g, 0)));
        };
        let ppa = Ppa::from_flat(&g, flat);
        let completion = match self.read_page_retrying(now, ppa, buf) {
            Ok((_, c)) => c,
            Err(FlashError::DieFailed(_)) => {
                // The page's die failed.  Mark the loss, then serve the read
                // degraded through the page's redundancy; unprotected pages
                // surface the typed failure to the engine's WAL-replay
                // rebuild.
                self.note_die_failures(now)?;
                self.read_degraded(now, flat, buf)?
            }
            Err(e) => return Err(e),
        };
        self.stats.host_reads += 1;
        self.stats.read_latency.record(completion.latency_from(now));
        self.maybe_scrub(completion.completed_at, ppa.block_addr())?;
        Ok(completion)
    }

    /// One logical read with the bounded read-retry ladder: an uncorrectable
    /// ECC result is re-attempted up to [`READ_RETRY_LIMIT`] more times (each
    /// attempt draws the error model independently and charges real device
    /// time) before the failure is surfaced to the caller.  Fault-free
    /// devices never retry, so this is exactly the legacy single read.
    fn read_page_retrying(
        &mut self,
        now: SimInstant,
        ppa: Ppa,
        buf: &mut [u8],
    ) -> FlashResult<(Oob, OpCompletion)> {
        let mut attempt = 0;
        loop {
            let res = if self.async_depth > 1 {
                self.device
                    .submit_read_page(now, ppa, buf)
                    .map(|(oob, q)| (oob, q.completion))
            } else {
                self.device.read_page(now, ppa, buf)
            };
            match res {
                Ok(oc) => {
                    if attempt > 0 {
                        self.stats.read_retry_successes += 1;
                    }
                    return Ok(oc);
                }
                Err(FlashError::UncorrectableEcc(_)) if attempt < READ_RETRY_LIMIT => {
                    attempt += 1;
                    self.stats.read_retries += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Read a batch of logical pages as die-wise multi-page read dispatches —
    /// the read-side sibling of [`NoFtl::write_batch`].
    ///
    /// The batch is grouped by die in arrival order; each die's run is handed
    /// to the device as one multi-page read command dispatched at `now`, so
    /// runs on different dies overlap and within a die the array senses
    /// pipeline with the channel transfers.  At [`NoFtl::async_depth`] > 1
    /// each run is *submitted* into its die's command queue and therefore
    /// queues behind in-flight flush/GC traffic instead of ignoring it.
    ///
    /// Invariants: a 1-page batch takes exactly the [`NoFtl::read`] path
    /// (identical commands, timing, statistics); reading the same LPN twice
    /// returns the same content twice; an invalid entry (unknown LPN, wrong
    /// buffer size) fails the whole batch before any device command issues.
    ///
    /// Returns the virtual time when the last dispatch completed.
    pub fn read_batch(
        &mut self,
        now: SimInstant,
        reqs: &mut [(u64, &mut [u8])],
    ) -> FlashResult<SimInstant> {
        match reqs {
            [] => return Ok(now),
            [(lpn, buf)] => {
                let lpn = *lpn;
                return Ok(self.read(now, lpn, buf)?.completed_at);
            }
            _ => {}
        }
        let g = *self.device.geometry();
        // Validate the whole batch (and resolve every mapping) up front: a
        // bad entry must not leave a partially issued batch behind.
        let mut ppas = Vec::with_capacity(reqs.len());
        for (lpn, buf) in reqs.iter() {
            self.check_lpn(*lpn)?;
            self.check_buf(buf.len())?;
            let Some(flat) = self.map.get(*lpn) else {
                return Err(FlashError::ReadOfUnwrittenPage(Ppa::from_flat(&g, 0)));
            };
            ppas.push(Ppa::from_flat(&g, flat));
        }
        let dies = g.total_dies() as usize;
        let mut by_die: Vec<Vec<(Ppa, &mut [u8])>> = (0..dies).map(|_| Vec::new()).collect();
        for ((_, buf), ppa) in reqs.iter_mut().zip(ppas.iter()) {
            by_die[ppa.die_addr().flat(&g) as usize].push((*ppa, &mut **buf));
        }
        let mut end = now;
        for mut ops in by_die {
            if ops.is_empty() {
                continue;
            }
            let pages = ops.len() as u64;
            let res = if self.async_depth > 1 {
                self.device.submit_read_pages(now, &mut ops).map(|q| q.completion)
            } else {
                self.device.read_pages(now, &mut ops)
            };
            match res {
                Ok(completion) => {
                    end = end.max(completion.completed_at);
                    self.stats.host_reads += pages;
                    for _ in 0..pages {
                        self.stats
                            .read_latency
                            .record(completion.completed_at.saturating_sub(now));
                    }
                }
                Err(FlashError::UncorrectableEcc(_)) => {
                    // One page of the run overwhelmed ECC; the multi-page
                    // dispatch aborted there.  Fall back to per-page reads so
                    // a single bad page cannot fail the whole run — each page
                    // gets its own retry ladder.  The fallback is itself a
                    // retry of the failed run (each per-page read re-senses),
                    // so it counts even when every page then reads clean on
                    // its first attempt.
                    self.stats.read_retries += 1;
                    for (ppa, buf) in ops.iter_mut() {
                        let (_, c) = self.read_page_retrying(now, *ppa, buf)?;
                        end = end.max(c.completed_at);
                        self.stats.host_reads += 1;
                        self.stats
                            .read_latency
                            .record(c.completed_at.saturating_sub(now));
                    }
                    self.stats.read_retry_successes += 1;
                }
                Err(FlashError::DieFailed(_)) => {
                    // The run's die failed: nothing of it transferred.  Serve
                    // each page individually, degraded where redundancy
                    // covers it.
                    self.note_die_failures(now)?;
                    for (ppa, buf) in ops.iter_mut() {
                        let c = match self.read_page_retrying(now, *ppa, buf) {
                            Ok((_, c)) => c,
                            Err(FlashError::DieFailed(_)) => {
                                self.read_degraded(now, ppa.flat(&g), buf)?
                            }
                            Err(e) => return Err(e),
                        };
                        end = end.max(c.completed_at);
                        self.stats.host_reads += 1;
                        self.stats
                            .read_latency
                            .record(c.completed_at.saturating_sub(now));
                    }
                }
                Err(e) => return Err(e),
            }
            if self.faults_active {
                let mut seen: Vec<BlockAddr> = Vec::new();
                for (ppa, _) in ops.iter() {
                    let block = ppa.block_addr();
                    if !seen.contains(&block) {
                        seen.push(block);
                        self.maybe_scrub(end, block)?;
                    }
                }
            }
        }
        Ok(end)
    }

    /// Write logical page `lpn`, placing it in the region its address stripes
    /// to (die-wise striping).
    pub fn write(&mut self, now: SimInstant, lpn: u64, data: &[u8]) -> FlashResult<OpCompletion> {
        let region = self.regions.region_of_lpn(lpn);
        self.write_in_region(now, region, lpn, data)
    }

    /// Write logical page `lpn` into an explicitly chosen region.  Used by
    /// the Flash-aware flusher experiments where placement is driven by the
    /// db-writer that owns the page.
    pub fn write_in_region(
        &mut self,
        now: SimInstant,
        region: RegionId,
        lpn: u64,
        data: &[u8],
    ) -> FlashResult<OpCompletion> {
        self.check_lpn(lpn)?;
        self.check_buf(data.len())?;
        let g = *self.device.geometry();
        let start = now;
        let mut t = now;
        // Program-failure recovery loop: a failed PAGE PROGRAM consumes the
        // attempted page, so the block is retired (after relocating its
        // still-valid pages) and the write repeats on a fresh allocation.
        // The loop terminates because every retry removes a block; when the
        // device runs out the allocation itself fails.
        let (ppa, completion) = loop {
            match self.ensure_region_space(t, region) {
                Ok(end) => t = end,
                Err(FlashError::ProgramFailed(failed)) => {
                    // GC relocation hit a failing destination block.
                    t = self.retire_failed_block(t, failed.block_addr())?;
                    continue;
                }
                Err(FlashError::DieFailed(_)) => {
                    // A die died under GC.  Mark it; dead regions stop
                    // garbage-collecting and the allocator routes around
                    // them.
                    t = self.note_die_failures(t)?;
                    continue;
                }
                Err(e) => return Err(e),
            }
            let ppa = match self.regions.allocate_page_in(region) {
                Some(p) => p,
                None => {
                    // The region is genuinely full (e.g. severely skewed
                    // placement): fall back to any region with space.
                    let mut found = None;
                    for r in 0..self.regions.regions() {
                        if let Some(p) = self.regions.allocate_page_in(r) {
                            found = Some(p);
                            break;
                        }
                    }
                    found.ok_or(FlashError::OutOfSpareBlocks)?
                }
            };
            match self.device.program_page(t, ppa, data, Oob::data(lpn, 0)) {
                Ok(c) => break (ppa, c),
                Err(FlashError::ProgramFailed(failed)) => {
                    t = self.retire_failed_block(t, failed.block_addr())?;
                }
                Err(FlashError::DieFailed(_)) => {
                    // The target die died between allocation and program:
                    // the page never transferred.  Mark the die dead (which
                    // also drops its allocation state) and re-allocate.
                    t = self.note_die_failures(t)?;
                }
                Err(e) => return Err(e),
            }
        };
        t = t.max(completion.completed_at);
        if let Some(old) = self.map.update(lpn, ppa.flat(&g)) {
            self.device.invalidate_page(Ppa::from_flat(&g, old))?;
            self.dead_hinted.remove(old);
            if self.redundancy_active {
                self.drop_mirror_of(old)?;
            }
        }
        if self.redundancy_active {
            t = self.protect_written(t, lpn, ppa, data)?;
        }
        self.stats.host_writes += 1;
        self.stats.write_latency.record(t.saturating_sub(start));
        Ok(OpCompletion {
            started_at: completion.started_at,
            completed_at: t,
        })
    }

    /// Write a batch of logical pages as die-wise multi-page program
    /// dispatches.
    ///
    /// The batch is grouped by region (die under die-wise striping) in
    /// arrival order; each region's run is allocated contiguously
    /// ([`RegionManager::allocate_run_in`]) and handed to the device as one
    /// multi-page program command per die, all dispatched at `now` — so runs
    /// on different dies overlap, and within a die the data transfers
    /// pipeline with the cell programs.  GC, when a region is below its
    /// watermark, runs on that region's own timeline before its dispatch.
    ///
    /// Invariants:
    /// * a 1-page batch takes exactly the [`NoFtl::write`] path — identical
    ///   commands, timing and statistics;
    /// * absent GC pressure, page placement is identical to issuing the
    ///   batch as sequential single-page writes (same allocation order per
    ///   region).  When a region crosses its GC watermark *mid-run* the
    ///   paths may place differently: the sequential path re-checks GC
    ///   before every page, while the batch path runs GC once per region
    ///   per submission and spills a drained region's remainder to other
    ///   regions (batched GC relocation is a ROADMAP follow-on);
    /// * if the same LPN appears twice, the later entry supersedes the
    ///   earlier one, exactly as sequential writes would.
    ///
    /// Returns the virtual time when the last dispatch completed.
    pub fn write_batch(&mut self, now: SimInstant, pages: &[(u64, &[u8])]) -> FlashResult<SimInstant> {
        match pages {
            [] => return Ok(now),
            [(lpn, data)] => return Ok(self.write(now, *lpn, data)?.completed_at),
            _ => {}
        }
        for (lpn, data) in pages {
            self.check_lpn(*lpn)?;
            self.check_buf(data.len())?;
        }
        let g = *self.device.geometry();
        let regions_n = self.regions.regions();
        let mut by_region: Vec<Vec<usize>> = vec![Vec::new(); regions_n];
        for (i, (lpn, _)) in pages.iter().enumerate() {
            by_region[self.regions.region_of_lpn(*lpn)].push(i);
        }
        let start = now;
        let mut end = now;
        for (region, idxs) in by_region.into_iter().enumerate() {
            if idxs.is_empty() {
                continue;
            }
            // Each region is a disjoint die set: its GC (if needed) and its
            // program dispatch run on their own timeline starting at `now`.
            let mut t0 = now;
            loop {
                match self.ensure_region_space(t0, region) {
                    Ok(end) => {
                        t0 = end;
                        break;
                    }
                    Err(FlashError::ProgramFailed(failed)) => {
                        // GC relocation hit a failing destination block.
                        t0 = self.retire_failed_block(t0, failed.block_addr())?;
                    }
                    Err(FlashError::DieFailed(_)) => {
                        t0 = self.note_die_failures(t0)?;
                    }
                    Err(e) => return Err(e),
                }
            }
            let run = self.regions.allocate_run_in(region, idxs.len());
            let mut allocs: Vec<(Ppa, usize)> = run
                .iter()
                .zip(idxs.iter())
                .map(|(&ppa, &i)| (ppa, i))
                .collect();
            // The region filled up mid-run (severely skewed placement): spill
            // the rest to any region with space, like write_in_region does.
            for &i in &idxs[allocs.len()..] {
                let mut found = None;
                for r in 0..regions_n {
                    if let Some(p) = self.regions.allocate_page_in(r) {
                        found = Some(p);
                        break;
                    }
                }
                allocs.push((found.ok_or(FlashError::OutOfSpareBlocks)?, i));
            }
            // Dispatch maximal same-die runs (a spill may change the die, and
            // multi-die regions round-robin dies at block boundaries).
            let mut j = 0;
            while j < allocs.len() {
                let die = allocs[j].0.die_addr();
                let mut k = j + 1;
                while k < allocs.len() && allocs[k].0.die_addr() == die {
                    k += 1;
                }
                let ops: Vec<(Ppa, &[u8], Oob)> = allocs[j..k]
                    .iter()
                    .map(|&(ppa, i)| (ppa, pages[i].1, Oob::data(pages[i].0, 0)))
                    .collect();
                // Depth 1: the synchronous dispatch (identical commands and
                // stamps).  Deeper: submit into the die's command queue, so
                // this run pipelines behind whatever earlier submissions
                // (previous flush cycles, WAL forces) still occupy the die.
                let res = if self.async_depth > 1 {
                    self.device.submit_program_pages(t0, &ops).map(|q| q.completion)
                } else {
                    self.device.program_pages(t0, &ops)
                };
                match res {
                    Ok(completion) => {
                        let t_run = completion.completed_at;
                        end = end.max(t_run);
                        for &(ppa, i) in &allocs[j..k] {
                            let lpn = pages[i].0;
                            if let Some(old) = self.map.update(lpn, ppa.flat(&g)) {
                                self.device.invalidate_page(Ppa::from_flat(&g, old))?;
                                self.dead_hinted.remove(old);
                                if self.redundancy_active {
                                    self.drop_mirror_of(old)?;
                                }
                            }
                            if self.redundancy_active {
                                end = end
                                    .max(self.protect_written(t_run, lpn, ppa, pages[i].1)?);
                            }
                            self.stats.host_writes += 1;
                            self.stats.write_latency.record(t_run.saturating_sub(start));
                        }
                    }
                    Err(FlashError::ProgramFailed(failed)) => {
                        // The run aborted at `failed`; the pages before it
                        // are committed on the device, so commit their
                        // mappings, then retire the failing block and
                        // re-write the rest of the run one page at a time.
                        // The tail's allocations must be unwound first:
                        // leaked pages in blocks the device never touched
                        // would desynchronise the allocator from the blocks'
                        // sequential write pointers (the failing block's own
                        // pages are covered by its retirement).
                        let fail_pos = allocs[j..k]
                            .iter()
                            .position(|&(ppa, _)| ppa == failed)
                            .unwrap_or(0);
                        // The aborted dispatch charged its partial timing up
                        // to the failing page.
                        let t_run = t0.max(self.device.die_busy_until(die));
                        end = end.max(t_run);
                        for &(ppa, i) in &allocs[j..j + fail_pos] {
                            let lpn = pages[i].0;
                            if let Some(old) = self.map.update(lpn, ppa.flat(&g)) {
                                self.device.invalidate_page(Ppa::from_flat(&g, old))?;
                                self.dead_hinted.remove(old);
                                if self.redundancy_active {
                                    self.drop_mirror_of(old)?;
                                }
                            }
                            if self.redundancy_active {
                                end = end
                                    .max(self.protect_written(t_run, lpn, ppa, pages[i].1)?);
                            }
                            self.stats.host_writes += 1;
                            self.stats.write_latency.record(t_run.saturating_sub(start));
                        }
                        let leaked: Vec<Ppa> = allocs[j + fail_pos..k]
                            .iter()
                            .map(|&(ppa, _)| ppa)
                            .filter(|p| p.block_addr() != failed.block_addr())
                            .collect();
                        self.regions.rollback_unprogrammed(&leaked);
                        let t_retired = self.retire_failed_block(t_run, failed.block_addr())?;
                        end = end.max(t_retired);
                        for &(_, i) in &allocs[j + fail_pos..k] {
                            let (lpn, data) = pages[i];
                            let c = self.write_in_region(t_retired, region, lpn, data)?;
                            end = end.max(c.completed_at);
                        }
                    }
                    Err(FlashError::DieFailed(_)) => {
                        // The run's die failed before any page transferred
                        // (a dead-die submission is rejected up front).
                        // Unwind the whole run's allocations, mark the die,
                        // and re-write every page through the per-page path,
                        // which routes around dead regions.
                        let leaked: Vec<Ppa> =
                            allocs[j..k].iter().map(|&(ppa, _)| ppa).collect();
                        self.regions.rollback_unprogrammed(&leaked);
                        let t_noted = self.note_die_failures(t0)?;
                        end = end.max(t_noted);
                        for &(_, i) in &allocs[j..k] {
                            let (lpn, data) = pages[i];
                            let c = self.write_in_region(t_noted, region, lpn, data)?;
                            end = end.max(c.completed_at);
                        }
                    }
                    Err(e) => return Err(e),
                }
                j = k;
            }
        }
        Ok(end)
    }

    /// Dead-page hint from the DBMS free-space manager: the logical page no
    /// longer holds useful data (dropped table, freed extent, superseded
    /// version).  Its physical page becomes garbage immediately and GC will
    /// never copy it.
    pub fn mark_dead(&mut self, lpn: u64) -> FlashResult<()> {
        self.check_lpn(lpn)?;
        let g = *self.device.geometry();
        if let Some(old) = self.map.unmap(lpn) {
            self.device.invalidate_page(Ppa::from_flat(&g, old))?;
            self.dead_hinted.insert(old);
            if self.redundancy_active {
                self.drop_mirror_of(old)?;
            }
        }
        self.stats.dead_page_hints += 1;
        Ok(())
    }

    /// Redundancy policy governing logical page `lpn` — the page's striping
    /// region decides, regardless of where a spill placed the physical copy,
    /// so a page's protection level is a stable function of its address.
    #[inline]
    fn policy_of_lpn(&self, lpn: u64) -> RedundancyPolicy {
        self.redundancy
            .get(self.regions.region_of_lpn(lpn))
            .copied()
            .unwrap_or(RedundancyPolicy::None)
    }

    /// A device read issued for reconstruction / redundancy maintenance /
    /// rebuild: identical to [`NoFtl::read_page_retrying`], but the per-die
    /// read counts it adds are shadow-tracked so GC's read-heat accumulator
    /// can subtract them ([`NoFtl::gc_region_once`]) — rebuild traffic must
    /// not masquerade as foreground heat and bias victim selection.
    fn reconstruction_read(
        &mut self,
        now: SimInstant,
        ppa: Ppa,
        buf: &mut [u8],
    ) -> FlashResult<(Oob, OpCompletion)> {
        let g = *self.device.geometry();
        let die = ppa.die_addr().flat(&g) as usize;
        let before = self
            .device
            .stats()
            .per_die_reads
            .get(die)
            .copied()
            .unwrap_or(0);
        let res = self.read_page_retrying(now, ppa, buf);
        let after = self
            .device
            .stats()
            .per_die_reads
            .get(die)
            .copied()
            .unwrap_or(0);
        if self.rebuild_reads_per_die.len() <= die {
            self.rebuild_reads_per_die.resize(die + 1, 0);
        }
        self.rebuild_reads_per_die[die] += after.saturating_sub(before);
        res
    }

    /// Post-commit protection hook: `lpn` just landed at `ppa` with content
    /// `data`.  Depending on the page's policy this mirrors it onto another
    /// die or joins it to the open parity stripe.  Must be called *after*
    /// the mapping committed.  No-op (one branch) when no region is
    /// protected.
    fn protect_written(
        &mut self,
        now: SimInstant,
        lpn: u64,
        ppa: Ppa,
        data: &[u8],
    ) -> FlashResult<SimInstant> {
        match self.policy_of_lpn(lpn) {
            RedundancyPolicy::None => Ok(now),
            RedundancyPolicy::Mirror => self.mirror_write(now, ppa, data),
            RedundancyPolicy::Parity(k) => {
                let g = *self.device.geometry();
                self.stripe_join(now, ppa.flat(&g), data, k)
            }
        }
    }

    /// Program a mirror copy of the page at `primary` onto a different die.
    /// The copy is an unmapped `Valid` page linked through `mirror_of`; GC
    /// treats it as garbage once the link is dropped.  When no other die has
    /// space the write stays unmirrored (allocation pressure must not fail
    /// the foreground write).
    fn mirror_write(&mut self, now: SimInstant, primary: Ppa, data: &[u8]) -> FlashResult<SimInstant> {
        let g = *self.device.geometry();
        let total = g.total_dies() as usize;
        if total < 2 {
            // A single-die geometry has no disjoint die to place the copy
            // on; a same-die "mirror" would survive no die failure.
            self.redundancy_stats.mirror_skipped_no_space += 1;
            return Ok(now);
        }
        let src_die = primary.die_addr().flat(&g) as usize;
        let mut t = now;
        for off in 1..total {
            let d = (src_die + off) % total;
            while let Some(mp) = self.regions.allocate_page_on_die(d, self.gc_low) {
                match self.device.program_page(t, mp, data, Oob::meta(0)) {
                    Ok(c) => {
                        t = t.max(c.completed_at);
                        let pf = primary.flat(&g) as usize;
                        let mf = mp.flat(&g) as usize;
                        self.mirror_of[pf] = mf as u64;
                        self.mirror_of[mf] = pf as u64;
                        self.redundancy_stats.mirror_pages_written += 1;
                        return Ok(t);
                    }
                    Err(FlashError::ProgramFailed(failed)) => {
                        t = self.retire_failed_block(t, failed.block_addr())?;
                    }
                    Err(FlashError::DieFailed(_)) => {
                        t = self.note_die_failures(t)?;
                        break;
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        self.redundancy_stats.mirror_skipped_no_space += 1;
        Ok(t)
    }

    /// Add a just-written data page to the open parity stripe, sealing first
    /// when its die collides with an existing member (stripes must stay
    /// die-disjoint — one die failure may cost at most one page per stripe)
    /// and sealing after the join once `k` members accumulated.
    fn stripe_join(
        &mut self,
        now: SimInstant,
        flat: u64,
        data: &[u8],
        k: usize,
    ) -> FlashResult<SimInstant> {
        let g = *self.device.geometry();
        let mut t = now;
        let die = Ppa::from_flat(&g, flat).die_addr().flat(&g);
        let collides = self
            .open_stripe
            .iter()
            .any(|&m| Ppa::from_flat(&g, m).die_addr().flat(&g) == die);
        if collides {
            t = self.seal_open_stripe(t)?;
        }
        if self.open_stripe_xor.len() != self.page_size {
            self.open_stripe_xor = vec![0u8; self.page_size];
        }
        xor_into(&mut self.open_stripe_xor, data);
        self.open_stripe.push(flat);
        if self.open_stripe.len() >= k.max(1) {
            t = self.seal_open_stripe(t)?;
        }
        Ok(t)
    }

    /// Seal the open stripe: program its in-memory XOR as a parity page on a
    /// die disjoint from every member (falling back to any die with space)
    /// and record the stripe.  Taking the member list out *first* makes the
    /// seal re-entrancy-safe — nested failure handling may notify die
    /// deaths, which themselves try to seal.
    fn seal_open_stripe(&mut self, now: SimInstant) -> FlashResult<SimInstant> {
        if self.open_stripe.is_empty() {
            return Ok(now);
        }
        let g = *self.device.geometry();
        let members = std::mem::take(&mut self.open_stripe);
        let xor = std::mem::take(&mut self.open_stripe_xor);
        let member_dies: Vec<u64> = members
            .iter()
            .map(|&m| Ppa::from_flat(&g, m).die_addr().flat(&g))
            .collect();
        let total = g.total_dies() as usize;
        let mut t = now;
        let mut parity: Option<Ppa> = None;
        let mut degraded = false;
        'search: for pass in 0..2 {
            for d in 0..total {
                if pass == 0 && member_dies.contains(&(d as u64)) {
                    continue;
                }
                if pass == 1 && !member_dies.contains(&(d as u64)) {
                    continue; // already tried in pass 0
                }
                while let Some(pp) = self.regions.allocate_page_on_die(d, self.gc_low) {
                    match self.device.program_page(t, pp, &xor, Oob::meta(0)) {
                        Ok(c) => {
                            t = t.max(c.completed_at);
                            parity = Some(pp);
                            // A pass-1 placement shares a die with a member:
                            // the stripe survives block loss but no longer
                            // every single-die failure.
                            degraded = pass == 1;
                            break 'search;
                        }
                        Err(FlashError::ProgramFailed(failed)) => {
                            t = self.retire_failed_block(t, failed.block_addr())?;
                        }
                        Err(FlashError::DieFailed(_)) => {
                            t = self.note_die_failures(t)?;
                            break;
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
        }
        let Some(pp) = parity else {
            // No die anywhere has spare pages: the members stay unprotected
            // rather than failing the foreground write that triggered the
            // seal.
            self.redundancy_stats.stripes_abandoned += 1;
            return Ok(t);
        };
        let pflat = pp.flat(&g);
        let id = match self.stripe_free_ids.pop() {
            Some(id) => id,
            None => {
                self.stripes.push(None);
                (self.stripes.len() - 1) as u32
            }
        };
        for &m in &members {
            self.stripe_of[m as usize] = id;
        }
        self.stripe_of[pflat as usize] = id;
        self.stripes[id as usize] = Some(Stripe {
            members,
            parity: pflat,
        });
        self.redundancy_stats.parity_pages_written += 1;
        self.redundancy_stats.stripes_sealed += 1;
        if degraded {
            self.redundancy_stats.stripes_sealed_degraded += 1;
        }
        Ok(t)
    }

    /// A mapped page at `old_flat` was superseded (overwrite or dead-page
    /// hint): its mirror copy, if any, is garbage too.  Stripe membership is
    /// deliberately *kept* — the superseded flash content persists until its
    /// block erases, so the stripe stays XOR-consistent until then.
    fn drop_mirror_of(&mut self, old_flat: u64) -> FlashResult<()> {
        let other = self
            .mirror_of
            .get(old_flat as usize)
            .copied()
            .unwrap_or(NO_MIRROR);
        if other == NO_MIRROR {
            return Ok(());
        }
        self.mirror_of[old_flat as usize] = NO_MIRROR;
        self.mirror_of[other as usize] = NO_MIRROR;
        let g = *self.device.geometry();
        self.device.invalidate_page(Ppa::from_flat(&g, other))?;
        Ok(())
    }

    /// Redundancy bookkeeping for a GC/scrub/wear relocation that moved
    /// `lpn` from `src` to `dst`.  Mirror links travel with the page (no new
    /// writes).  A parity-protected page *re-joins* the open stripe at its
    /// new address — the old stripe keeps covering the source flash content
    /// until that block erases, so protection never lapses mid-move;
    /// `data` carries the relocated content (the relocation path reads
    /// instead of copyback for parity regions exactly so it is available).
    fn relink_redundancy(
        &mut self,
        now: SimInstant,
        src_flat: u64,
        dst_flat: u64,
        lpn: u64,
        data: Option<&[u8]>,
    ) -> FlashResult<SimInstant> {
        let mut t = now;
        let other = self
            .mirror_of
            .get(src_flat as usize)
            .copied()
            .unwrap_or(NO_MIRROR);
        if other != NO_MIRROR {
            self.mirror_of[src_flat as usize] = NO_MIRROR;
            self.mirror_of[dst_flat as usize] = other;
            self.mirror_of[other as usize] = dst_flat;
        }
        if let RedundancyPolicy::Parity(k) = self.policy_of_lpn(lpn) {
            if let Some(data) = data {
                // If the source still sat in the open stripe, back its
                // content (identical to the relocated `data`) out of the
                // in-memory XOR and drop the stale member — otherwise the
                // stripe could later seal over a flat whose block was
                // erased and re-programmed in the meantime.
                if let Some(pos) = self.open_stripe.iter().position(|&m| m == src_flat) {
                    self.open_stripe.remove(pos);
                    xor_into(&mut self.open_stripe_xor, data);
                    self.redundancy_stats.open_members_purged += 1;
                }
                t = self.stripe_join(t, dst_flat, data, k)?;
            }
        }
        Ok(t)
    }

    /// Pre-erase/retirement hook: every stripe with a member or parity page
    /// in `block` breaks (the erase destroys its flash content), and every
    /// mirror pair with a copy in `block` re-mirrors.  Still-mapped stripe
    /// members elsewhere are re-protected through the open stripe; members
    /// marooned on a *dead* die are reconstructed right now — this is the
    /// last instant their parity still exists.
    fn break_redundancy_in_block(
        &mut self,
        now: SimInstant,
        block: BlockAddr,
    ) -> FlashResult<SimInstant> {
        let g = *self.device.geometry();
        // The still-open stripe is tracked only in memory (`stripe_of` is
        // assigned at seal time), so it must be purged separately: any
        // pending member inside this block loses its flash content to the
        // erase, and a later seal would otherwise cover re-programmed data.
        let mut t = self.purge_open_stripe_in_block(now, block)?;
        for off in 0..g.pages_per_block {
            let flat = block.page(off).flat(&g);
            let other = self
                .mirror_of
                .get(flat as usize)
                .copied()
                .unwrap_or(NO_MIRROR);
            if other != NO_MIRROR {
                self.mirror_of[flat as usize] = NO_MIRROR;
                self.mirror_of[other as usize] = NO_MIRROR;
                t = self.remirror_survivor(t, flat, other)?;
            }
            let sid = self
                .stripe_of
                .get(flat as usize)
                .copied()
                .unwrap_or(NO_STRIPE);
            if sid != NO_STRIPE {
                t = self.break_stripe(t, sid, Some(block))?;
            }
        }
        Ok(t)
    }

    /// Back every still-open stripe member inside `block` out of the
    /// in-memory XOR before the block's erase destroys its flash content:
    /// re-read the stored content (invalidated pages stay readable until the
    /// erase lands) and re-XOR it, then drop the member.  Members end up
    /// here stale — superseded by an overwrite/dead-page hint, or left
    /// behind by a relocation whose re-join went to the new address.  When a
    /// member's content is unreadable (e.g. its die died) the XOR cannot be
    /// repaired, so the whole open stripe is abandoned rather than sealed
    /// over garbage.
    fn purge_open_stripe_in_block(
        &mut self,
        now: SimInstant,
        block: BlockAddr,
    ) -> FlashResult<SimInstant> {
        if self.open_stripe.is_empty() {
            return Ok(now);
        }
        let g = *self.device.geometry();
        let dying: Vec<u64> = self
            .open_stripe
            .iter()
            .copied()
            .filter(|&m| Ppa::from_flat(&g, m).block_addr() == block)
            .collect();
        let mut t = now;
        let mut buf = vec![0u8; self.page_size];
        for m in dying {
            match self.reconstruction_read(t, Ppa::from_flat(&g, m), &mut buf) {
                Ok((_, c)) => {
                    t = t.max(c.completed_at);
                    xor_into(&mut self.open_stripe_xor, &buf);
                    self.open_stripe.retain(|&x| x != m);
                    self.redundancy_stats.open_members_purged += 1;
                }
                Err(_) => {
                    self.open_stripe.clear();
                    self.open_stripe_xor.clear();
                    self.redundancy_stats.stripes_abandoned += 1;
                    return Ok(t);
                }
            }
        }
        Ok(t)
    }

    /// One side of a mirror pair (`dying_flat`) is about to be erased.  If
    /// the pair still backs a mapped page, restore two-copy protection: read
    /// the surviving mapped side and mirror it again — or, when the mapped
    /// side sits on a dead die, rescue the content from the dying copy
    /// *before* the erase destroys the last readable instance.
    fn remirror_survivor(
        &mut self,
        now: SimInstant,
        dying_flat: u64,
        other_flat: u64,
    ) -> FlashResult<SimInstant> {
        let g = *self.device.geometry();
        let mut t = now;
        let Some(lpn) = self.map.reverse(other_flat) else {
            // Neither side is mapped any more (the data was superseded or
            // relocated); nothing worth protecting.
            return Ok(t);
        };
        let other = Ppa::from_flat(&g, other_flat);
        let other_die = other.die_addr().flat(&g) as usize;
        let mut buf = vec![0u8; self.page_size];
        if !self.regions.die_dead(other_die) {
            if let Ok((_, c)) = self.reconstruction_read(t, other, &mut buf) {
                t = t.max(c.completed_at);
                t = self.mirror_write(t, other, &buf)?;
            }
            return Ok(t);
        }
        // The mapped side is on a dead die: the dying copy is the last
        // readable instance.  Rescue it through the normal write path (which
        // updates the mapping off the dead die and re-protects).
        let dying = Ppa::from_flat(&g, dying_flat);
        if let Ok((_, c)) = self.reconstruction_read(t, dying, &mut buf) {
            t = t.max(c.completed_at);
            self.redundancy_stats.reconstructed_pages += 1;
            let w = self.write(t, lpn, &buf)?;
            t = t.max(w.completed_at);
        }
        Ok(t)
    }

    /// Break stripe `sid` (a member or parity block is going away) and
    /// re-protect its still-mapped members: live-die members re-join the
    /// open stripe; dead-die members are reconstructed from the stripe now,
    /// while the parity still exists, and rewritten onto surviving dies.
    fn break_stripe(
        &mut self,
        now: SimInstant,
        sid: u32,
        dying_block: Option<BlockAddr>,
    ) -> FlashResult<SimInstant> {
        let Some(stripe) = self.stripes.get_mut(sid as usize).and_then(|s| s.take()) else {
            return Ok(now);
        };
        self.stripe_free_ids.push(sid);
        self.redundancy_stats.stripes_broken += 1;
        for &p in stripe.members.iter().chain(std::iter::once(&stripe.parity)) {
            self.stripe_of[p as usize] = NO_STRIPE;
        }
        let g = *self.device.geometry();
        let mut t = now;
        for &m in &stripe.members {
            let pm = Ppa::from_flat(&g, m);
            if dying_block == Some(pm.block_addr()) {
                // Members inside the dying block were either relocated (and
                // re-protected at their new home) or superseded — the erase
                // only destroys garbage there.
                continue;
            }
            let Some(lpn) = self.map.reverse(m) else {
                continue;
            };
            let die = pm.die_addr().flat(&g) as usize;
            let mut buf = vec![0u8; self.page_size];
            if self.regions.die_dead(die) {
                // Last chance: every other stripe page (including any inside
                // the dying block — still readable until the erase lands) can
                // serve the XOR reconstruction.
                if let Ok(end) = self.reconstruct_from_stripe(t, &stripe, m, &mut buf) {
                    t = t.max(end);
                    let w = self.write(t, lpn, &buf)?;
                    t = t.max(w.completed_at);
                }
                // Unrecoverable members stay mapped to the dead die: reads
                // keep failing typed and the rebuild walker counts the loss.
                continue;
            }
            if let Ok((_, c)) = self.reconstruction_read(t, pm, &mut buf) {
                t = t.max(c.completed_at);
                if let RedundancyPolicy::Parity(k) = self.policy_of_lpn(lpn) {
                    t = self.stripe_join(t, m, &buf, k)?;
                    self.redundancy_stats.members_reprotected += 1;
                }
            }
        }
        // The parity page is garbage the instant the stripe dissolves —
        // invalidated last, because the reconstructions above may still have
        // needed to read it.  Without this, blocks full of live parity pages
        // would count zero invalid pages and never become GC victims.
        self.device
            .invalidate_page(Ppa::from_flat(&g, stripe.parity))?;
        Ok(t)
    }

    /// XOR-reconstruct the content of stripe page `exclude` from every other
    /// page of `stripe`.  Fails if any needed page is unreadable (e.g. a
    /// second die failure) — single-failure tolerance, per parity design.
    fn reconstruct_from_stripe(
        &mut self,
        now: SimInstant,
        stripe: &Stripe,
        exclude: u64,
        buf: &mut [u8],
    ) -> FlashResult<SimInstant> {
        buf.fill(0);
        let g = *self.device.geometry();
        let mut t = now;
        let mut tmp = vec![0u8; self.page_size];
        for &p in stripe.members.iter().chain(std::iter::once(&stripe.parity)) {
            if p == exclude {
                continue;
            }
            let (_, c) = self.reconstruction_read(t, Ppa::from_flat(&g, p), &mut tmp)?;
            t = t.max(c.completed_at);
            xor_into(buf, &tmp);
        }
        self.redundancy_stats.reconstructed_pages += 1;
        Ok(t)
    }

    /// Reconstruct the content of the mapped-but-unreadable page `flat`
    /// (its die died) from its mirror or parity stripe.  Fails typed with
    /// [`FlashError::DieFailed`] when no redundancy covers it.
    fn reconstruct_flat(
        &mut self,
        now: SimInstant,
        flat: u64,
        buf: &mut [u8],
    ) -> FlashResult<SimInstant> {
        let g = *self.device.geometry();
        let other = self
            .mirror_of
            .get(flat as usize)
            .copied()
            .unwrap_or(NO_MIRROR);
        if other != NO_MIRROR {
            let (_, c) = self.reconstruction_read(now, Ppa::from_flat(&g, other), buf)?;
            self.redundancy_stats.reconstructed_pages += 1;
            return Ok(c.completed_at);
        }
        let sid = self
            .stripe_of
            .get(flat as usize)
            .copied()
            .unwrap_or(NO_STRIPE);
        if sid != NO_STRIPE {
            if let Some(stripe) = self.stripes.get(sid as usize).cloned().flatten() {
                return self.reconstruct_from_stripe(now, &stripe, flat, buf);
            }
        }
        Err(FlashError::DieFailed(Ppa::from_flat(&g, flat).die_addr()))
    }

    /// Serve a host read of the page at `flat` degraded — through its
    /// redundancy instead of the dead die.
    fn read_degraded(
        &mut self,
        now: SimInstant,
        flat: u64,
        buf: &mut [u8],
    ) -> FlashResult<OpCompletion> {
        let end = self.reconstruct_flat(now, flat, buf)?;
        self.redundancy_stats.degraded_reads += 1;
        Ok(OpCompletion {
            started_at: now,
            completed_at: end,
        })
    }

    /// React to die failures the device reported: diff the device's dead-die
    /// set against what this layer already handled, and for each *new* death
    /// mark the die dead in the allocator, open a rebuild cursor over its
    /// page range, and seal the open stripe (its in-memory XOR still covers
    /// members whose program was swallowed by the failure).  Cheap no-op
    /// when no die is dead.
    fn note_die_failures(&mut self, now: SimInstant) -> FlashResult<SimInstant> {
        let mut t = now;
        if !self.device.any_die_dead() {
            return Ok(t);
        }
        let dead: Vec<bool> = self.device.dead_dies().to_vec();
        if self.known_dead.len() < dead.len() {
            self.known_dead.resize(dead.len(), false);
        }
        let mut newly = false;
        for (d, &is_dead) in dead.iter().enumerate() {
            if is_dead && !self.known_dead[d] {
                self.known_dead[d] = true;
                self.regions.mark_die_dead(d);
                self.rebuild_stats.die_failures_detected += 1;
                self.rebuild_cursors.push((d, 0));
                newly = true;
            }
        }
        if newly && self.redundancy_active && !self.open_stripe.is_empty() {
            t = self.seal_open_stripe(t)?;
        }
        Ok(t)
    }

    /// One background rebuild step, gated like [`NoFtl::schedule_gc`]: when
    /// the instant is read-hot (in-flight reads at or above the GC
    /// scheduling threshold) the step defers instead of competing with
    /// foreground traffic.  Walks the next dead die's mapped pages,
    /// reconstructing up to [`REBUILD_BATCH_PAGES`] of them per call onto
    /// surviving dies through the normal write path.  Returns `Ok(None)`
    /// when there is nothing to do — in particular, a single cheap check
    /// when no die has failed.
    pub fn schedule_rebuild(&mut self, now: SimInstant) -> FlashResult<Option<SimInstant>> {
        if !self.device.any_die_dead() {
            return Ok(None);
        }
        let mut t = self.note_die_failures(now)?;
        if self.rebuild_cursors.is_empty() {
            return Ok(None);
        }
        if self.gc_schedule_read_occupancy > 0
            && self.read_occupancy(now) >= self.gc_schedule_read_occupancy
        {
            self.rebuild_stats.rebuild_deferred_hot += 1;
            return Ok(None);
        }
        let (end, progressed) = self.rebuild_step(t, REBUILD_BATCH_PAGES)?;
        t = t.max(end);
        if progressed {
            self.rebuild_stats.rebuild_scheduled += 1;
            Ok(Some(t))
        } else {
            Ok(None)
        }
    }

    /// Synchronous full rebuild: loop [`NoFtl::rebuild_step`] until every
    /// dead die's page range has been walked.  The naive foreground
    /// alternative to [`NoFtl::schedule_rebuild`] (used by the availability
    /// benchmark's unscheduled leg and by tests).
    pub fn rebuild_all(&mut self, now: SimInstant) -> FlashResult<SimInstant> {
        let mut t = self.note_die_failures(now)?;
        while !self.rebuild_cursors.is_empty() {
            let (end, _) = self.rebuild_step(t, u64::MAX)?;
            t = t.max(end);
        }
        Ok(t)
    }

    /// Walk the first rebuild cursor, reconstructing up to `budget` mapped
    /// pages.  Returns `(end, progressed)`.
    fn rebuild_step(&mut self, now: SimInstant, budget: u64) -> FlashResult<(SimInstant, bool)> {
        let Some(&(die, start)) = self.rebuild_cursors.first() else {
            return Ok((now, false));
        };
        let g = *self.device.geometry();
        let ppd = g.pages_per_die();
        let base = die as u64 * ppd;
        let mut offset = start;
        let mut t = now;
        let mut processed = 0u64;
        while offset < ppd && processed < budget {
            let flat = base + offset;
            offset += 1;
            let Some(lpn) = self.map.reverse(flat) else {
                continue;
            };
            processed += 1;
            self.rebuild_stats.pages_scanned += 1;
            let mut buf = vec![0u8; self.page_size];
            match self.reconstruct_flat(t, flat, &mut buf) {
                Ok(end) => {
                    t = t.max(end);
                    let w = self.write(t, lpn, &buf)?;
                    t = t.max(w.completed_at);
                    self.rebuild_stats.pages_rebuilt += 1;
                }
                Err(_) => {
                    // No surviving redundancy: the mapping stays pointed at
                    // the dead die so reads keep failing typed (WAL-replay
                    // page rebuild is the layer above).
                    self.rebuild_stats.pages_lost += 1;
                }
            }
        }
        if offset >= ppd {
            self.rebuild_cursors.remove(0);
        } else {
            self.rebuild_cursors[0] = (die, offset);
        }
        Ok((t, processed > 0))
    }

    /// Run GC in `region` until it is back above the high watermark.  Returns
    /// the time at which the caller may proceed.
    fn ensure_region_space(&mut self, now: SimInstant, region: RegionId) -> FlashResult<SimInstant> {
        let mut t = now;
        if self.regions.free_blocks_in(region) > self.gc_low {
            return Ok(t);
        }
        // A stall is only counted when GC actually attempts work: a region
        // that is low on free blocks but holds no reclaimable garbage (all
        // pages live) never delays the write, so it must not inflate the
        // Figure 3 stall statistic.
        let mut attempted = false;
        while self.regions.free_blocks_in(region) < self.gc_high {
            match self.gc_region_once(t, region)? {
                Some(end) => {
                    attempted = true;
                    t = end;
                }
                None => break,
            }
        }
        if attempted {
            self.stats.gc_stalls += 1;
        }
        Ok(t)
    }

    /// Unwind the destination allocations of a relocation run that errored
    /// out: `pending` holds the entries that were never committed (after a
    /// failed dispatch, [`NoFtl::flush_relocations`] commits and drains the
    /// prefix, so what remains is the failing entry and everything after it),
    /// and `extra` is a destination allocated *after* the run.  Pages of a
    /// failing block are skipped — that block is retired wholesale by the
    /// caller — while the rest must be returned to the allocator so it stays
    /// in lockstep with the blocks' sequential write pointers.
    fn rollback_pending_relocations(
        &mut self,
        err: &FlashError,
        pending: &[(Ppa, Ppa, u64, Vec<u8>, Oob)],
        extra: Option<Ppa>,
    ) {
        let failed_block = match err {
            FlashError::ProgramFailed(p) => Some(p.block_addr()),
            _ => None,
        };
        let leaked: Vec<Ppa> = pending
            .iter()
            .map(|(_, dst, _, _, _)| *dst)
            .chain(extra)
            .filter(|p| Some(p.block_addr()) != failed_block)
            .collect();
        self.regions.rollback_unprogrammed(&leaked);
    }

    /// Relocate `survivors` — (source page, logical page) pairs — into
    /// `region`, invalidating each source *as it moves* so an interrupted
    /// migration can never leave stale-`Valid` pages whose reverse mappings
    /// are gone (those would permanently skew `invalid_pages` counts and GC
    /// victim scoring).
    ///
    /// With `gc_batch_pages <= 1` every survivor moves one command at a time
    /// — copyback when plane-local, read + program otherwise — exactly the
    /// legacy path (trace-identical).  Larger settings batch consecutive
    /// cross-plane survivors through one multi-page program dispatch per
    /// same-die run ([`nand_flash::NativeFlashInterface::program_pages`]);
    /// plane-local survivors still use copyback, and any pending run is
    /// flushed before a copyback so the destination block's sequential
    /// programming order is preserved.
    ///
    /// When the region runs out of space mid-relocation: with
    /// `abort_on_full` the already-moved prefix is kept (sources
    /// invalidated) and `(t, false)` is returned; otherwise the relocation
    /// fails with [`FlashError::OutOfSpareBlocks`].
    fn relocate_survivors(
        &mut self,
        now: SimInstant,
        region: RegionId,
        survivors: &[(Ppa, u64)],
        abort_on_full: bool,
    ) -> FlashResult<(SimInstant, bool)> {
        let g = *self.device.geometry();
        let mut t = now;
        let cap = self.gc_batch_pages.max(1);
        // Pending cross-plane relocations awaiting one batched dispatch:
        // (src, dst, lpn, data, oob), plus the completion horizon of their
        // source reads — the dispatch may not issue before the data exists
        // (the destination die can differ from the source die, so die
        // occupancy alone does not order them).
        let mut pending: Vec<(Ppa, Ppa, u64, Vec<u8>, Oob)> = Vec::new();
        let mut pending_ready: SimInstant = 0;
        for &(src, lpn) in survivors {
            let dst = match self.regions.allocate_page_in(region) {
                Some(p) => p,
                None => {
                    t = match self.flush_relocations(t.max(pending_ready), &mut pending) {
                        Ok(end) => end,
                        Err(e) => {
                            self.rollback_pending_relocations(&e, &pending, None);
                            return Err(e);
                        }
                    };
                    if abort_on_full {
                        return Ok((t, false));
                    }
                    return Err(FlashError::OutOfSpareBlocks);
                }
            };
            // A parity-protected page must re-join the open stripe at its
            // new address, which needs the host-side content — so its
            // relocation always goes read + program, never copyback.  With
            // redundancy off this gate is a single false branch and the
            // copyback decision is untouched.
            let parity_protected = self.redundancy_active
                && matches!(self.policy_of_lpn(lpn), RedundancyPolicy::Parity(_));
            let same_plane = !parity_protected
                && dst.channel == src.channel
                && dst.die == src.die
                && dst.plane == src.plane;
            // At depth 1 every relocation command is the synchronous legacy
            // dispatch (the trace-equality baseline); deeper settings submit
            // the same commands through the per-die queues, so background GC
            // queues behind — and delays — foreground flush/read traffic.
            let queued = self.async_depth > 1;
            if self.gc_batch_pages <= 1 {
                // Legacy per-relocation path.
                let res = if same_plane {
                    if queued {
                        self.device.submit_copyback(t, src, dst, None).map(|q| q.completion)
                    } else {
                        self.device.copyback(t, src, dst, None)
                    }
                } else {
                    let mut buf = std::mem::take(&mut self.scratch);
                    // The source read gets the retry ladder: a survivor whose
                    // first read overwhelms ECC is usually recoverable on a
                    // re-sense, and GC must not lose it over one bad draw.
                    let c = match self.read_page_retrying(t, src, &mut buf) {
                        Ok((oob, rc)) => {
                            if queued {
                                // The program may not issue before its source
                                // read produced the data (the destination die
                                // can differ).
                                self.device
                                    .submit_program_pages(
                                        rc.completed_at,
                                        &[(dst, buf.as_slice(), oob)],
                                    )
                                    .map(|p| p.completion)
                            } else {
                                self.device.program_page(t, dst, &buf, oob)
                            }
                        }
                        Err(e) => Err(e),
                    };
                    self.scratch = buf;
                    c
                };
                let completion = match res {
                    Ok(c) => c,
                    Err(e) => {
                        // A failed program consumed `dst` (its block is
                        // retired by the caller); any other error — e.g. an
                        // unreadable source — leaves `dst` un-programmed and
                        // it must go back to the allocator.
                        self.rollback_pending_relocations(&e, &pending, Some(dst));
                        return Err(e);
                    }
                };
                t = t.max(completion.completed_at);
                self.map.update(lpn, dst.flat(&g));
                self.device.invalidate_page(src)?;
                self.stats.gc_page_copies += 1;
                if self.redundancy_active {
                    let content = std::mem::take(&mut self.scratch);
                    let data = (!same_plane).then_some(content.as_slice());
                    t = self.relink_redundancy(t, src.flat(&g), dst.flat(&g), lpn, data)?;
                    self.scratch = content;
                }
            } else if same_plane {
                // A copyback programs the destination block's next page, so
                // the pending run must land first to keep program order.
                t = match self.flush_relocations(t.max(pending_ready), &mut pending) {
                    Ok(end) => end,
                    Err(e) => {
                        self.rollback_pending_relocations(&e, &pending, Some(dst));
                        return Err(e);
                    }
                };
                pending_ready = 0;
                let res = if queued {
                    self.device.submit_copyback(t, src, dst, None).map(|q| q.completion)
                } else {
                    self.device.copyback(t, src, dst, None)
                };
                let c = match res {
                    Ok(c) => c,
                    Err(e) => {
                        self.rollback_pending_relocations(&e, &pending, Some(dst));
                        return Err(e);
                    }
                };
                t = t.max(c.completed_at);
                self.map.update(lpn, dst.flat(&g));
                self.device.invalidate_page(src)?;
                self.stats.gc_page_copies += 1;
                if self.redundancy_active {
                    // Copyback is only taken for non-parity pages; a mirror
                    // link just travels with the page.
                    t = self.relink_redundancy(t, src.flat(&g), dst.flat(&g), lpn, None)?;
                }
            } else {
                // Batched: read now, program as part of a same-die run.
                if pending.len() >= cap
                    || pending
                        .last()
                        .is_some_and(|(_, d, _, _, _)| d.die_addr() != dst.die_addr())
                {
                    t = match self.flush_relocations(t.max(pending_ready), &mut pending) {
                        Ok(end) => end,
                        Err(e) => {
                            self.rollback_pending_relocations(&e, &pending, Some(dst));
                            return Err(e);
                        }
                    };
                    pending_ready = 0;
                }
                let mut buf = vec![0u8; self.page_size];
                let (oob, c) = match self.read_page_retrying(t, src, &mut buf) {
                    Ok(r) => r,
                    Err(e) => {
                        // Nothing dispatched: the whole pending run plus this
                        // destination goes back to the allocator.
                        self.rollback_pending_relocations(&e, &pending, Some(dst));
                        return Err(e);
                    }
                };
                pending_ready = pending_ready.max(c.completed_at);
                pending.push((src, dst, lpn, buf, oob));
            }
        }
        t = match self.flush_relocations(t.max(pending_ready), &mut pending) {
            Ok(end) => end,
            Err(e) => {
                self.rollback_pending_relocations(&e, &pending, None);
                return Err(e);
            }
        };
        Ok((t, true))
    }

    /// Dispatch the pending cross-plane relocations as one multi-page
    /// program run and commit their mapping/bookkeeping updates.
    fn flush_relocations(
        &mut self,
        now: SimInstant,
        pending: &mut Vec<(Ppa, Ppa, u64, Vec<u8>, Oob)>,
    ) -> FlashResult<SimInstant> {
        if pending.is_empty() {
            return Ok(now);
        }
        let g = *self.device.geometry();
        let ops: Vec<(Ppa, &[u8], Oob)> = pending
            .iter()
            .map(|(_, dst, _, data, oob)| (*dst, data.as_slice(), *oob))
            .collect();
        let res = if self.async_depth > 1 {
            self.device.submit_program_pages(now, &ops).map(|q| q.completion)
        } else {
            self.device.program_pages(now, &ops)
        };
        let completion = match res {
            Ok(c) => c,
            Err(FlashError::ProgramFailed(failed)) => {
                // The dispatch aborted at `failed`: the pages before it are
                // committed on the device, so their mapping updates must land
                // now (a valid page without a reverse mapping would never be
                // reclaimed).  The failing relocation and the rest of the
                // run stay uncommitted — their sources are still valid and
                // mapped, so the caller can re-collect them after retiring
                // the failed block, and it rolls their un-programmed
                // destination allocations back
                // ([`NoFtl::rollback_pending_relocations`] — the drained
                // `pending` suffix is exactly that leaked set).
                let pos = ops
                    .iter()
                    .position(|&(dst, _, _)| dst == failed)
                    .unwrap_or(0);
                let committed: Vec<(Ppa, Ppa, u64, Vec<u8>)> = pending
                    .drain(..pos)
                    .map(|(src, dst, lpn, data, _)| (src, dst, lpn, data))
                    .collect();
                let mut t = now;
                for (src, dst, lpn, data) in committed {
                    self.map.update(lpn, dst.flat(&g));
                    self.device.invalidate_page(src)?;
                    self.stats.gc_page_copies += 1;
                    if self.redundancy_active {
                        t = self.relink_redundancy(
                            t,
                            src.flat(&g),
                            dst.flat(&g),
                            lpn,
                            Some(&data),
                        )?;
                    }
                }
                if self.redundancy_active {
                    // The re-protection work above must still land on the GC
                    // timeline even though this path propagates an error:
                    // the retirement that follows picks the horizon up.
                    self.unwind_horizon = self.unwind_horizon.max(t);
                }
                return Err(FlashError::ProgramFailed(failed));
            }
            Err(e) => return Err(e),
        };
        let mut t = now.max(completion.completed_at);
        if pending.len() > 1 {
            self.stats.gc_batch_dispatches += 1;
        }
        for (src, dst, lpn, data, _) in pending.drain(..) {
            self.map.update(lpn, dst.flat(&g));
            self.device.invalidate_page(src)?;
            self.stats.gc_page_copies += 1;
            if self.redundancy_active {
                t = self.relink_redundancy(t, src.flat(&g), dst.flat(&g), lpn, Some(&data))?;
            }
        }
        Ok(t)
    }

    /// Erase a reclaimed block, retiring it when it is worn out.  The erase
    /// attempt's latency is charged even on failure — a worn-out erase
    /// occupied the die exactly like a successful one before reporting its
    /// status, so it must never be free on the virtual clock.
    fn erase_reclaimed(
        &mut self,
        now: SimInstant,
        block: BlockAddr,
    ) -> FlashResult<(SimInstant, bool)> {
        // Erasing is the one operation that destroys flash content, so any
        // stripe with a member or parity page in this block — and any mirror
        // copy stored here — must be dissolved and its survivors
        // re-protected *before* the erase is attempted (the hook also covers
        // the failure path: a worn-out erase still retires the block).
        let mut now = now;
        if self.redundancy_active {
            now = self.break_redundancy_in_block(now, block)?;
        }
        // Under async the erase is submitted into the die queue like every
        // other GC command (a failed submission cannot evict in-flight
        // commands, and a worn-out attempt still charges its die occupancy).
        let result = if self.async_depth > 1 {
            self.device.submit_erase(now, block).map(|q| q.completion)
        } else {
            self.device.erase_block(now, block)
        };
        match result {
            Ok(c) => {
                self.stats.gc_erases += 1;
                self.regions.release_block(block);
                Ok((now.max(c.completed_at), true))
            }
            Err(FlashError::WornOut(b)) => Ok(self.retire_failed_erase(now, b)),
            Err(FlashError::EraseFailed(b)) => {
                self.stats.erase_fail_retirements += 1;
                Ok(self.retire_failed_erase(now, b))
            }
            Err(e) => Err(e),
        }
    }

    /// Shared tail of erase-failure handling: the block is grown-bad, its
    /// region drops it, and the failed erase still held the die until it
    /// reported its status.
    fn retire_failed_erase(&mut self, now: SimInstant, b: BlockAddr) -> (SimInstant, bool) {
        let t = now.max(self.device.die_busy_until(b.die_addr()));
        self.bad_blocks.retire(b, RetireReason::Grown);
        self.regions.retire_block(b);
        self.stats.retired_blocks += 1;
        (t, false)
    }

    /// Retire a block one of whose PAGE PROGRAMs reported failure.  The
    /// failed page is consumed but the rest of the block stays readable, so
    /// its still-valid pages are relocated into the block's region first —
    /// only then is the block handed to the bad-block manager.  A *nested*
    /// program failure during the relocation retires that block too
    /// (recursively) and the relocation resumes with whatever survivors
    /// remain; the recursion is bounded because every level permanently
    /// removes one block.
    fn retire_failed_block(
        &mut self,
        now: SimInstant,
        block: BlockAddr,
    ) -> FlashResult<SimInstant> {
        let g = *self.device.geometry();
        let region = self.regions.region_of_block(block);
        // Out of the allocation pools first, so relocation destinations can
        // never land in the block being retired.
        self.regions.retire_block(block);
        // Fold in re-protection work a failed batched relocation did while
        // unwinding its committed prefix — the error that routed control
        // here could not carry its completion instant.
        let mut t = now.max(std::mem::take(&mut self.unwind_horizon));
        loop {
            let mut survivors: Vec<(Ppa, u64)> = Vec::new();
            for page_idx in 0..g.pages_per_block {
                let src = block.page(page_idx);
                if self.device.page_state(src)? != PageState::Valid {
                    continue;
                }
                let Some(lpn) = self.map.reverse(src.flat(&g)) else {
                    continue;
                };
                survivors.push((src, lpn));
            }
            if survivors.is_empty() {
                break;
            }
            match self.relocate_survivors(t, region, &survivors, false) {
                Ok((end, _)) => {
                    t = end;
                    break;
                }
                Err(FlashError::ProgramFailed(failed)) => {
                    // Survivors moved before the nested failure are already
                    // invalidated on `block`; the re-collection above picks
                    // up only what remains.
                    t = self.retire_failed_block(t, failed.block_addr())?;
                }
                Err(e) => return Err(e),
            }
        }
        // Retirement takes the block's content out of service exactly like
        // an erase: mapped pages were just relocated (their protection moved
        // with them), so what remains are stripe members/parity pages and
        // mirror copies — dissolve those and re-protect their survivors
        // while the block is still readable.
        if self.redundancy_active {
            t = self.break_redundancy_in_block(t, block)?;
        }
        // Write the device-side bad-block mark last: the survivors above had
        // to be readable while the relocation ran.  From here on the device
        // rejects every access, so neither GC victim selection nor the wear
        // leveler can resurrect the block into the free pool.
        self.device.mark_block_bad(block)?;
        self.bad_blocks.retire(block, RetireReason::Grown);
        self.stats.retired_blocks += 1;
        self.stats.program_fail_retirements += 1;
        Ok(t)
    }

    /// Read-disturb scrubbing: when a block has served
    /// [`NoFtlConfig::scrub_read_disturb_threshold`] reads since its last
    /// erase, relocate its live pages and erase it preventively, before
    /// accumulated disturb pushes its raw bit-error rate past what ECC can
    /// correct.  The relocations and the erase ride the per-die command
    /// queues exactly like GC traffic.  A no-op (zero device calls) unless
    /// the device runs with a fault plan — without one the disturb counter
    /// is not even maintained.
    fn maybe_scrub(&mut self, now: SimInstant, block: BlockAddr) -> FlashResult<SimInstant> {
        if !self.faults_active {
            return Ok(now);
        }
        if self.device.read_disturb(block)? < self.scrub_threshold {
            return Ok(now);
        }
        // The active allocation block cannot be erased out from under the
        // region's write pointer; it rotates out on its own soon enough.
        if self.bad_blocks.is_bad(block) || self.regions.is_active(block) {
            return Ok(now);
        }
        let g = *self.device.geometry();
        // A dead die can be neither relocated from nor erased.
        if self
            .regions
            .die_dead(block.die_addr().flat(&g) as usize)
        {
            return Ok(now);
        }
        let region = self.regions.region_of_block(block);
        let mut t = now;
        let mut relocated: u64 = 0;
        loop {
            let mut survivors: Vec<(Ppa, u64)> = Vec::new();
            for page_idx in 0..g.pages_per_block {
                let src = block.page(page_idx);
                if self.device.page_state(src)? != PageState::Valid {
                    continue;
                }
                let Some(lpn) = self.map.reverse(src.flat(&g)) else {
                    continue;
                };
                survivors.push((src, lpn));
            }
            if survivors.is_empty() {
                break;
            }
            match self.relocate_survivors(t, region, &survivors, false) {
                Ok((end, _)) => {
                    relocated += survivors.len() as u64;
                    t = end;
                    break;
                }
                Err(FlashError::ProgramFailed(failed)) => {
                    t = self.retire_failed_block(t, failed.block_addr())?;
                }
                Err(e) => return Err(e),
            }
        }
        // Erasing resets the disturb counter; a worn-out or failing erase
        // retires the block instead (erase_reclaimed handles both).
        t = self.erase_reclaimed(t, block)?.0;
        self.stats.scrubbed_blocks += 1;
        self.stats.scrub_relocations += relocated;
        Ok(t)
    }

    /// Reclaim one block in `region`. Returns the completion time of the last
    /// command, or `None` when the region holds no reclaimable garbage.
    fn gc_region_once(
        &mut self,
        now: SimInstant,
        region: RegionId,
    ) -> FlashResult<Option<SimInstant>> {
        if self.gc_read_heat_penalty > 0.0 {
            // Decay-and-top-up the recent-read heat: halve the accumulator
            // and add the reads since the last selection, so victim scoring
            // reacts to current read traffic and old skew fades out.
            // Reconstruction/rebuild reads are subtracted out via their
            // shadow accumulator — repair traffic is not foreground demand
            // and must not steer victims away from the dies being repaired.
            let cur = self.device.stats().per_die_reads.clone();
            self.gc_read_heat.resize(cur.len(), 0);
            self.gc_read_marker.resize(cur.len(), 0);
            self.rebuild_reads_per_die.resize(cur.len(), 0);
            self.rebuild_read_marker.resize(cur.len(), 0);
            for (i, &reads) in cur.iter().enumerate() {
                let delta = reads.saturating_sub(self.gc_read_marker[i]);
                let shadow = self.rebuild_reads_per_die[i]
                    .saturating_sub(self.rebuild_read_marker[i]);
                self.gc_read_heat[i] =
                    self.gc_read_heat[i] / 2 + delta.saturating_sub(shadow);
                self.gc_read_marker[i] = reads;
                self.rebuild_read_marker[i] = self.rebuild_reads_per_die[i];
            }
        }
        let Some(victim) = select_victim(
            &self.device,
            &self.regions,
            region,
            self.gc_policy,
            self.gc_read_heat_penalty,
            &self.gc_read_heat,
        ) else {
            return Ok(None);
        };
        let g = *self.device.geometry();

        // Collect the victim's survivors (valid pages with a live mapping),
        // crediting dead-page hints for invalid pages the DBMS declared dead.
        let mut survivors: Vec<(Ppa, u64)> = Vec::new();
        for page_idx in 0..g.pages_per_block {
            let src = victim.page(page_idx);
            let flat = src.flat(&g);
            match self.device.page_state(src)? {
                PageState::Valid => {}
                PageState::Invalid => {
                    if self.dead_hinted.remove(flat) {
                        self.stats.gc_dead_skipped += 1;
                    }
                    continue;
                }
                PageState::Free => continue,
            }
            let Some(lpn) = self.map.reverse(flat) else {
                continue;
            };
            survivors.push((src, lpn));
        }
        let (mut t, _) = self.relocate_survivors(now, region, &survivors, false)?;

        // Erase the victim; a worn-out failure retires the block instead of
        // recycling it (but still costs the erase attempt's latency).
        t = self.erase_reclaimed(t, victim)?.0;

        // Static wear leveling, evaluated every few erases.
        if self.wear.on_erase() {
            t = self.maybe_level_wear(t, region)?;
        }
        Ok(Some(t))
    }

    /// Migrate a cold block if the wear spread in `region` demands it.
    fn maybe_level_wear(&mut self, now: SimInstant, region: RegionId) -> FlashResult<SimInstant> {
        let Some(migration) = self.wear.select_migration(&self.device, &self.regions, region)
        else {
            return Ok(now);
        };
        let g = *self.device.geometry();
        let cold = migration.cold_block;
        let mut survivors: Vec<(Ppa, u64)> = Vec::new();
        for page_idx in 0..g.pages_per_block {
            let src = cold.page(page_idx);
            if self.device.page_state(src)? != PageState::Valid {
                continue;
            }
            let Some(lpn) = self.map.reverse(src.flat(&g)) else {
                continue;
            };
            survivors.push((src, lpn));
        }
        let (mut t, moved_all) = self.relocate_survivors(now, region, &survivors, true)?;
        if !moved_all {
            // The region filled up mid-migration.  The moved prefix is
            // already invalidated on the cold block, so its garbage counts
            // stay truthful; the erase waits for a later attempt.
            return Ok(t);
        }
        let (end, erased) = self.erase_reclaimed(t, cold)?;
        t = end;
        if erased {
            self.stats.wear_migrations += 1;
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regions::StripingMode;
    use nand_flash::FlashGeometry;

    fn small_noftl() -> NoFtl {
        NoFtl::with_geometry(FlashGeometry::small())
    }

    fn tiny_noftl() -> NoFtl {
        let mut cfg = NoFtlConfig::new(FlashGeometry::tiny());
        cfg.op_ratio = 0.30;
        cfg.gc_low_watermark = 2;
        cfg.gc_high_watermark = 3;
        NoFtl::new(cfg)
    }

    fn page(n: &NoFtl, byte: u8) -> Vec<u8> {
        vec![byte; n.device().geometry().page_size as usize]
    }

    #[test]
    fn read_your_writes() {
        let mut n = small_noftl();
        let data = page(&n, 0x5C);
        n.write(0, 42, &data).unwrap();
        let mut buf = page(&n, 0);
        n.read(0, 42, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn writes_follow_die_wise_striping() {
        let mut n = small_noftl();
        let g = *n.device().geometry();
        let data = page(&n, 1);
        for lpn in 0..16u64 {
            n.write(0, lpn, &data).unwrap();
        }
        // Each die must have received writes (4 dies, 16 striped pages).
        let per_die = &n.flash_stats().per_die_ops;
        assert_eq!(per_die.len(), g.total_dies() as usize);
        assert!(per_die.iter().all(|&c| c > 0), "striping skipped a die: {per_die:?}");
    }

    #[test]
    fn region_of_lpn_matches_flash_placement() {
        let mut n = small_noftl();
        let g = *n.device().geometry();
        let data = page(&n, 2);
        for lpn in 0..32u64 {
            n.write(0, lpn, &data).unwrap();
            let region = n.region_of_lpn(lpn);
            // Read back through the map and check the die matches the region.
            let flat = n.map.get(lpn).unwrap();
            let ppa = Ppa::from_flat(&g, flat);
            assert_eq!(n.region_manager().region_of_die(ppa.die_addr()), region);
        }
    }

    #[test]
    fn overwrites_and_gc_preserve_newest_data() {
        let mut n = tiny_noftl();
        let lpns = n.logical_pages();
        let mut now = 0;
        for round in 0u8..6 {
            for lpn in 0..lpns {
                let data = vec![round ^ lpn as u8; n.page_size];
                now = n.write(now, lpn, &data).unwrap().completed_at;
            }
        }
        assert!(n.stats().gc_erases > 0, "GC should have run");
        for lpn in 0..lpns {
            let mut buf = vec![0u8; n.page_size];
            n.read(now, lpn, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == 5 ^ lpn as u8));
        }
    }

    #[test]
    fn dead_page_hints_reduce_gc_copies() {
        // Two identical runs, except one marks half the pages dead before the
        // overwrite storm: GC should copy fewer pages in that run.
        let run = |use_hints: bool| -> (u64, u64) {
            let mut n = tiny_noftl();
            let lpns = n.logical_pages();
            let mut now = 0;
            for lpn in 0..lpns {
                let data = vec![1u8; n.page_size];
                now = n.write(now, lpn, &data).unwrap().completed_at;
            }
            if use_hints {
                for lpn in (0..lpns).step_by(2) {
                    n.mark_dead(lpn).unwrap();
                }
            }
            // Overwrite the other half repeatedly to force GC.
            for round in 0u8..8 {
                for lpn in (1..lpns).step_by(2) {
                    let data = vec![round; n.page_size];
                    now = n.write(now, lpn, &data).unwrap().completed_at;
                }
            }
            (n.stats().gc_page_copies, n.stats().gc_erases)
        };
        let (copies_without, _) = run(false);
        let (copies_with, _) = run(true);
        assert!(
            copies_with < copies_without,
            "dead-page hints should reduce GC copies: {copies_with} vs {copies_without}"
        );
    }

    #[test]
    fn mark_dead_makes_page_unreadable() {
        let mut n = small_noftl();
        let data = page(&n, 3);
        n.write(0, 9, &data).unwrap();
        n.mark_dead(9).unwrap();
        let mut buf = page(&n, 0);
        assert!(n.read(0, 9, &mut buf).is_err());
        assert_eq!(n.stats().dead_page_hints, 1);
    }

    #[test]
    fn write_in_region_places_page_on_requested_die() {
        let mut n = small_noftl();
        let g = *n.device().geometry();
        let data = page(&n, 4);
        // Place lpn 0 (which stripes to region 0) explicitly into region 3.
        n.write_in_region(0, 3, 0, &data).unwrap();
        let flat = n.map.get(0).unwrap();
        let ppa = Ppa::from_flat(&g, flat);
        assert_eq!(n.region_manager().region_of_die(ppa.die_addr()), 3);
        let mut buf = page(&n, 0);
        n.read(0, 0, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn write_batch_roundtrips_and_places_die_wise() {
        let mut n = small_noftl(); // 4 regions
        let g = *n.device().geometry();
        let pages: Vec<(u64, Vec<u8>)> = (0..16u64).map(|l| (l, vec![l as u8; 4096])).collect();
        let batch: Vec<(u64, &[u8])> = pages.iter().map(|(l, d)| (*l, d.as_slice())).collect();
        let end = n.write_batch(0, &batch).unwrap();
        assert!(end > 0);
        assert_eq!(n.stats().host_writes, 16);
        assert_eq!(n.flash_stats().programs, 16);
        assert!(n.flash_stats().multi_page_dispatches >= 4, "one dispatch per die");
        for (lpn, data) in &pages {
            let mut buf = vec![0u8; 4096];
            n.read(end, *lpn, &mut buf).unwrap();
            assert_eq!(&buf, data);
            let flat = n.map.get(*lpn).unwrap();
            let ppa = Ppa::from_flat(&g, flat);
            assert_eq!(
                n.region_manager().region_of_die(ppa.die_addr()),
                n.region_of_lpn(*lpn),
                "batched placement must follow die-wise striping"
            );
        }
    }

    #[test]
    fn write_batch_of_one_is_identical_to_write() {
        let mut a = small_noftl();
        let mut b = small_noftl();
        let data = page(&a, 0x3D);
        let c = a.write(1000, 7, &data).unwrap();
        let end = b.write_batch(1000, &[(7, data.as_slice())]).unwrap();
        assert_eq!(c.completed_at, end);
        assert_eq!(a.flash_stats().programs, b.flash_stats().programs);
        assert_eq!(b.flash_stats().multi_page_dispatches, 0);
        assert_eq!(a.map.get(7), b.map.get(7));
    }

    #[test]
    fn write_batch_placement_matches_sequential_writes() {
        let mut seq = small_noftl();
        let mut bat = small_noftl();
        let data = page(&seq, 1);
        for lpn in 0..32u64 {
            seq.write(0, lpn, &data).unwrap();
        }
        let batch: Vec<(u64, &[u8])> = (0..32u64).map(|l| (l, data.as_slice())).collect();
        bat.write_batch(0, &batch).unwrap();
        for lpn in 0..32u64 {
            assert_eq!(seq.map.get(lpn), bat.map.get(lpn), "lpn {lpn} placed differently");
        }
    }

    #[test]
    fn write_batch_overlaps_dies_and_beats_sequential() {
        let run = |batched: bool| -> u64 {
            let mut n = small_noftl(); // 4 dies
            let data = page(&n, 2);
            let batch: Vec<(u64, &[u8])> = (0..32u64).map(|l| (l, data.as_slice())).collect();
            if batched {
                n.write_batch(0, &batch).unwrap()
            } else {
                let mut t = 0;
                for (lpn, d) in &batch {
                    t = t.max(n.write(t, *lpn, d).unwrap().completed_at);
                }
                t
            }
        };
        let sequential = run(false);
        let batched = run(true);
        assert!(
            (sequential as f64) / (batched as f64) >= 2.0,
            "expected >=2x from die overlap + pipelining: seq={sequential} batched={batched}"
        );
    }

    #[test]
    fn write_batch_duplicate_lpn_keeps_last_version() {
        let mut n = small_noftl();
        let a = page(&n, 0xAA);
        let b = page(&n, 0xBB);
        let end = n
            .write_batch(0, &[(4, a.as_slice()), (4, b.as_slice())])
            .unwrap();
        let mut buf = page(&n, 0);
        n.read(end, 4, &mut buf).unwrap();
        assert_eq!(buf, b);
        assert_eq!(n.stats().host_writes, 2);
    }

    #[test]
    fn write_batch_rejects_bad_input_without_writing() {
        let mut n = small_noftl();
        let good = page(&n, 1);
        let bad = vec![0u8; 7];
        assert!(n
            .write_batch(0, &[(0, good.as_slice()), (1, bad.as_slice())])
            .is_err());
        assert_eq!(n.stats().host_writes, 0);
        assert_eq!(n.flash_stats().programs, 0);
        assert!(n
            .write_batch(0, &[(0, good.as_slice()), (n.logical_pages(), good.as_slice())])
            .is_err());
        assert_eq!(n.flash_stats().programs, 0);
    }

    #[test]
    fn gc_work_is_less_than_faster_style_merging() {
        // NoFTL's greedy page-level GC should produce clearly less copy work
        // than one full-merge per updated block would — sanity check of the
        // mechanism behind Figure 3 (exact ratios are checked in the bench
        // harness / integration tests).
        let mut cfg = NoFtlConfig::new(FlashGeometry::small());
        cfg.op_ratio = 0.20;
        let mut n = NoFtl::new(cfg);
        let lpns = n.logical_pages();
        let mut now = 0;
        let mut rng = sim_utils::rng::SimRng::new(5);
        for lpn in 0..lpns {
            let data = vec![0u8; n.page_size];
            now = n.write(now, lpn, &data).unwrap().completed_at;
        }
        let writes = 2000u64;
        for _ in 0..writes {
            let lpn = rng.range(0, lpns);
            let data = vec![1u8; n.page_size];
            now = n.write(now, lpn, &data).unwrap().completed_at;
        }
        let wa = n.stats().write_amplification();
        assert!(wa < 3.0, "NoFTL write amplification unexpectedly high: {wa}");
    }

    #[test]
    fn idle_region_with_low_free_count_does_not_count_a_gc_stall() {
        // Regression (PR 3): `ensure_region_space` used to bump `gc_stalls`
        // before checking whether the region held any reclaimable garbage, so
        // filling a region with *live* data inflated the stall statistic.
        let mut cfg = NoFtlConfig::new(FlashGeometry::tiny());
        cfg.op_ratio = 0.30;
        cfg.gc_low_watermark = 2;
        cfg.gc_high_watermark = 3;
        let mut n = NoFtl::new(cfg);
        let lpns = n.logical_pages();
        let mut now = 0;
        // Every logical page written exactly once: no garbage anywhere, but
        // the free-block count sinks below the low watermark.
        for lpn in 0..lpns {
            let data = vec![lpn as u8; n.page_size];
            now = n.write(now, lpn, &data).unwrap().completed_at;
        }
        assert!(
            n.regions.free_blocks_in(0) <= 2,
            "fixture must reach the low watermark"
        );
        assert_eq!(n.stats().gc_erases, 0, "no garbage, no GC work");
        assert_eq!(
            n.stats().gc_stalls,
            0,
            "a region without reclaimable garbage must not count as a stall"
        );
        // Once overwrites create garbage, real stalls are counted again.
        for round in 0u8..4 {
            for lpn in 0..lpns {
                let data = vec![round; n.page_size];
                now = n.write(now, lpn, &data).unwrap().completed_at;
            }
        }
        assert!(n.stats().gc_erases > 0);
        assert!(n.stats().gc_stalls > 0, "real GC work must count stalls");
    }

    #[test]
    fn schedule_gc_runs_in_read_cold_instants_and_defers_in_hot_ones() {
        let g = FlashGeometry::small();
        let mut cfg = NoFtlConfig::new(g);
        cfg.striping = StripingMode::Single;
        let mut n = NoFtl::new(cfg);
        let data = vec![1u8; n.page_size];
        // Fill one block completely, then overwrite those pages: block 0 is
        // closed and all-garbage, the canonical proactive-GC victim.  Raising
        // the high watermark above the current free count puts the region
        // under scheduling pressure without a demand-GC pass eating the
        // garbage first.
        let ppb = g.pages_per_block as u64;
        let mut now = 0;
        for lpn in 0..ppb {
            now = n.write(now, lpn, &data).unwrap().completed_at;
        }
        for lpn in 0..ppb {
            now = n.write(now, lpn, &data).unwrap().completed_at;
        }
        n.gc_high = n.regions.free_blocks_in(0) + 1;

        // Threshold 0: proactive scheduling is off entirely.
        assert_eq!(n.schedule_gc(now).unwrap(), None);
        assert_eq!(n.stats().gc_scheduled_cold, 0);
        assert_eq!(n.stats().gc_deferred_hot, 0);

        // Read-hot instant: one read in flight defers the relocation.
        n.set_gc_schedule_read_occupancy(1);
        let ppa_flat = n.map.get(0).expect("lpn 0 is mapped");
        let g = *n.device.geometry();
        let mut buf = vec![0u8; n.page_size];
        let (_, sub) = n
            .device
            .submit_read_page(now, Ppa::from_flat(&g, ppa_flat), &mut buf)
            .unwrap();
        assert!(n.read_occupancy(now) >= 1);
        assert_eq!(n.schedule_gc(now).unwrap(), None);
        assert_eq!(n.stats().gc_deferred_hot, 1);
        assert_eq!(n.stats().gc_scheduled_cold, 0);

        // Read-cold instant (past the read's completion): the relocation
        // runs and restores a free block.
        let later = sub.completion.completed_at;
        assert_eq!(n.read_occupancy(later), 0);
        let end = n.schedule_gc(later).unwrap();
        assert!(end.is_some(), "pressured region with garbage must reclaim");
        assert_eq!(n.stats().gc_scheduled_cold, 1);
        // Draining the pressure (or the reclaimable garbage) ends with the
        // scheduler declining further work.
        let mut t = end.unwrap();
        while let Some(e) = n.schedule_gc(t).unwrap() {
            t = e;
        }
        assert_eq!(n.schedule_gc(t).unwrap(), None);
        assert!(n.stats().gc_scheduled_cold >= 1);
        assert_eq!(n.stats().gc_deferred_hot, 1);
    }

    #[test]
    fn worn_out_erase_is_not_free() {
        // Regression (PR 3): the `WornOut` branch retired the block but never
        // advanced the GC timeline, so a failed erase cost zero virtual time.
        let g = FlashGeometry::small();
        let mut cfg = NoFtlConfig::new(g);
        cfg.striping = StripingMode::Single;
        cfg.endurance_override = Some(0); // every erase past 0 cycles fails
        let mut n = NoFtl::new(cfg);
        let data = vec![1u8; n.page_size];
        // Fill one block completely, then overwrite those pages so the block
        // becomes all-garbage (the next GC victim with zero survivors).
        let ppb = g.pages_per_block as u64;
        for lpn in 0..ppb {
            n.write(0, lpn, &data).unwrap();
        }
        for lpn in 0..ppb {
            n.write(0, lpn, &data).unwrap();
        }
        let end = n.gc_region_once(1_000_000, 0).unwrap().expect("victim exists");
        assert_eq!(n.stats().retired_blocks, 1, "worn-out erase retires the block");
        assert_eq!(n.stats().gc_erases, 0);
        let charged = end.saturating_sub(1_000_000);
        assert!(
            charged >= n.device.timing().erase_block,
            "a worn-out erase must cost at least the erase latency (charged {charged} ns)"
        );
    }

    #[test]
    fn aborted_wear_migration_invalidates_relocated_sources() {
        // Regression (PR 3): when `allocate_page_in` ran dry mid-migration,
        // already-relocated source pages stayed `Valid` on the device while
        // their reverse mappings were gone — permanently skewing
        // `invalid_pages` counts and victim scoring.
        let g = FlashGeometry::tiny(); // 1 die, 8 blocks x 8 pages
        let mut n = NoFtl::with_geometry(g);
        let data = vec![7u8; n.page_size];
        let ppb = g.pages_per_block as u64;
        // Fill block 0 with live data, then open block 1 so block 0 closes.
        for lpn in 0..=ppb {
            n.write(0, lpn, &data).unwrap();
        }
        let cold = BlockAddr::new(0, 0, 0, 0);
        assert_eq!(n.device.block_info(cold).unwrap().valid_pages, 8);
        // Wear a pooled block far past the leveling threshold (64).
        let hot = BlockAddr::new(0, 0, 0, 7);
        for _ in 0..70 {
            n.device.erase_block(0, hot).unwrap();
        }
        // Drain the region down to exactly 2 allocatable pages, programming
        // every allocated page so the sequential-programming rule holds.
        let total: u64 = g.total_pages();
        let already = ppb + 1; // block 0 + first page of block 1
        for _ in 0..(total - already - 2) {
            let ppa = n.regions.allocate_page_in(0).unwrap();
            n.device
                .program_page(0, ppa, &data, Oob::data(u64::MAX - 1, 0))
                .unwrap();
        }
        n.maybe_level_wear(0, 0).unwrap();
        // Two survivors moved, then the region ran dry: the migration must
        // abort, and the moved sources must be garbage on the cold block.
        let info = n.device.block_info(cold).unwrap();
        assert_eq!(
            (info.valid_pages, info.invalid_pages),
            (6, 2),
            "relocated sources must be invalidated as they move"
        );
        assert_eq!(n.stats().gc_page_copies, 2);
        assert_eq!(n.stats().wear_migrations, 0, "aborted migration is not counted");
        // The moved logical pages still read back correctly.
        let mut buf = vec![0u8; n.page_size];
        for lpn in 0..2u64 {
            n.read(0, lpn, &mut buf).unwrap();
            assert_eq!(buf, data);
        }
    }

    /// Overwrite storm fixture on a 2-plane die so GC exercises both the
    /// copyback (plane-local) and read+program (cross-plane) relocation
    /// paths.  Returns (device trace, per-lpn content, gc stats).
    fn gc_storm(gc_batch_pages: usize) -> (Vec<String>, Vec<Vec<u8>>, u64, u64, u64) {
        let mut g = FlashGeometry::tiny();
        g.planes_per_die = 2; // 2 planes x 8 blocks x 8 pages
        let mut cfg = NoFtlConfig::new(g);
        cfg.op_ratio = 0.30;
        cfg.gc_low_watermark = 2;
        cfg.gc_high_watermark = 3;
        cfg.gc_batch_pages = gc_batch_pages;
        let mut dev_cfg = DeviceConfig::new(g);
        dev_cfg.trace_capacity = 1 << 16;
        let device = NandDevice::new(dev_cfg);
        let mut n = NoFtl::with_device(device, cfg);
        let lpns = n.logical_pages();
        let mut now = 0;
        // Seed every page, then overwrite a skewed subset: victims keep live
        // survivors that GC must relocate.
        for lpn in 0..lpns {
            let data = vec![lpn as u8; n.page_size];
            now = n.write(now, lpn, &data).unwrap().completed_at;
        }
        for round in 1u8..12 {
            for lpn in (0..lpns).filter(|l| l % 3 != 0) {
                let data = vec![round ^ lpn as u8; n.page_size];
                now = n.write(now, lpn, &data).unwrap().completed_at;
            }
        }
        let trace: Vec<String> = n
            .device
            .tracer()
            .entries()
            .iter()
            .map(|e| format!("{e:?}"))
            .collect();
        let mut contents = Vec::new();
        let mut buf = vec![0u8; n.page_size];
        for lpn in 0..lpns {
            n.read(now, lpn, &mut buf).unwrap();
            contents.push(buf.clone());
        }
        let s = n.stats();
        (trace, contents, s.gc_page_copies, s.gc_erases, s.gc_batch_dispatches)
    }

    #[test]
    fn gc_read_heat_penalty_plumbs_from_config_and_steers_victims() {
        // End-to-end knob check: equal garbage on two dies, all read traffic
        // on the first — the read-blind default reclaims the read-hot die's
        // block (die-order tie-break), the penalty steers GC to the cold die.
        let victim_for = |penalty: f64| -> BlockAddr {
            let g = FlashGeometry::small();
            let mut cfg = NoFtlConfig::new(g);
            cfg.striping = StripingMode::Single;
            cfg.gc_read_heat_penalty = penalty;
            let mut n = NoFtl::new(cfg);
            let data = vec![1u8; n.page_size];
            let ppb = g.pages_per_block as u64;
            // Fill two blocks (single striping round-robins dies at block
            // boundaries: block 0 → die 0, block 1 → die 1) plus one page so
            // both close.
            for lpn in 0..(2 * ppb + 1) {
                n.write(0, lpn, &data).unwrap();
            }
            // Equal garbage in both closed blocks.
            for lpn in 0..4u64 {
                n.write(0, lpn, &data).unwrap();
            }
            for lpn in ppb..ppb + 4 {
                n.write(0, lpn, &data).unwrap();
            }
            // Hammer reads on the first block's survivors (die 0 only).
            let mut buf = vec![0u8; n.page_size];
            for _ in 0..10 {
                for lpn in 4..8u64 {
                    n.read(0, lpn, &mut buf).unwrap();
                }
            }
            // One GC pass through the full plumbing (recent-heat decay +
            // scorer); the erased victim identifies the chosen block.
            n.gc_region_once(1_000, 0).unwrap().expect("garbage to reclaim");
            let mut erased = Vec::new();
            for ch in 0..g.channels {
                for d in 0..g.dies_per_channel {
                    for pl in 0..g.planes_per_die {
                        for b in 0..g.blocks_per_plane {
                            let addr = BlockAddr::new(ch, d, pl, b);
                            if n.device.block_info(addr).unwrap().erase_count > 0 {
                                erased.push(addr);
                            }
                        }
                    }
                }
            }
            assert_eq!(erased.len(), 1, "exactly one block reclaimed");
            erased[0]
        };
        assert_eq!(NoFtlConfig::new(FlashGeometry::small()).gc_read_heat_penalty, 0.0);
        let read_blind = victim_for(0.0);
        let read_aware = victim_for(4.0);
        assert_ne!(
            read_blind.die_addr(),
            read_aware.die_addr(),
            "the penalty must move the victim off the read-hot die"
        );
        assert_eq!(read_blind, BlockAddr::new(0, 0, 0, 0));
    }

    #[test]
    fn gc_batch_size_one_is_trace_identical_to_legacy() {
        let (trace_legacy, contents_legacy, copies_l, erases_l, dispatches_l) = gc_storm(0);
        let (trace_one, contents_one, copies_1, erases_1, dispatches_1) = gc_storm(1);
        assert!(erases_l > 0, "storm must trigger GC");
        assert!(copies_l > 0, "storm must relocate survivors");
        assert_eq!(
            trace_legacy, trace_one,
            "gc batch size 1 must be command- and cycle-identical to legacy"
        );
        assert_eq!(contents_legacy, contents_one);
        assert_eq!((copies_l, erases_l), (copies_1, erases_1));
        assert_eq!((dispatches_l, dispatches_1), (0, 0));
    }

    #[test]
    fn batched_gc_relocation_preserves_content_and_work() {
        let (_, contents_legacy, copies_l, erases_l, _) = gc_storm(0);
        let (_, contents_batched, copies_b, erases_b, dispatches_b) = gc_storm(8);
        assert!(
            dispatches_b > 0,
            "cross-plane survivors must flow through multi-page dispatches"
        );
        assert_eq!(contents_batched, contents_legacy, "batching must not corrupt data");
        assert_eq!(copies_b, copies_l, "same GC decisions, same copy count");
        assert_eq!(erases_b, erases_l);
    }

    #[test]
    fn batched_gc_cross_die_program_waits_for_its_source_reads() {
        // Regression (code review): the batched relocation path must not
        // dispatch a program run before the reads that produced its data
        // completed — with a cross-die destination, die occupancy alone does
        // not order them.
        let g = FlashGeometry::small(); // 4 dies
        let mut cfg = NoFtlConfig::new(g);
        cfg.striping = StripingMode::Single;
        cfg.gc_batch_pages = 8;
        let mut n = NoFtl::new(cfg);
        let data = vec![5u8; n.page_size];
        let ppb = g.pages_per_block as u64;
        // Fill the die-0 block, then open the next block (die 1 under the
        // round-robin cursor) so relocations allocate on a different die.
        for lpn in 0..=ppb {
            n.write(0, lpn, &data).unwrap();
        }
        let src_block = BlockAddr::new(0, 0, 0, 0);
        let survivors: Vec<(Ppa, u64)> = (0..4u32).map(|p| (src_block.page(p), p as u64)).collect();
        let t0 = 10_000_000;
        let (end, all) = n.relocate_survivors(t0, 0, &survivors, false).unwrap();
        assert!(all);
        assert_eq!(n.stats().gc_batch_dispatches, 1);
        let timing = n.device.timing();
        assert!(
            end - t0 >= timing.read_page + timing.program_page,
            "the dispatch must be charged behind its source reads: end-t0={}",
            end - t0
        );
        // The sources moved: invalidated on the old block, readable content.
        assert_eq!(n.device.block_info(src_block).unwrap().invalid_pages, 4);
        let mut buf = vec![0u8; n.page_size];
        for lpn in 0..4u64 {
            n.read(end, lpn, &mut buf).unwrap();
            assert_eq!(buf, data);
        }
    }

    #[test]
    fn async_write_batches_to_disjoint_regions_overlap() {
        // Two batches bound for different dies: the synchronous caller chains
        // them; the asynchronous submitter hands both over at t=0 and the
        // per-die queues overlap them almost completely.
        let data = vec![3u8; 4096];
        // Region r holds lpns r, r+4, r+8, ... under 4-way striping.
        let batch_a: Vec<(u64, &[u8])> = (0..8u64).map(|i| (i * 4, data.as_slice())).collect();
        let batch_b: Vec<(u64, &[u8])> = (0..8u64).map(|i| (1 + i * 4, data.as_slice())).collect();
        let sync_end = {
            let mut n = small_noftl();
            let t = n.write_batch(0, &batch_a).unwrap();
            n.write_batch(t, &batch_b).unwrap()
        };
        let async_end = {
            let mut n = small_noftl();
            n.set_async_depth(8);
            n.write_batch(0, &batch_a).unwrap();
            n.write_batch(0, &batch_b).unwrap();
            n.drain(0)
        };
        assert!(
            (sync_end as f64) / (async_end as f64) > 1.5,
            "disjoint-die batches must overlap under async: sync={sync_end} async={async_end}"
        );
    }

    #[test]
    fn async_depth_one_write_batch_is_identical_to_sync() {
        let mut a = small_noftl();
        let mut b = small_noftl();
        b.set_async_depth(1);
        let data = page(&a, 0x42);
        let batch: Vec<(u64, &[u8])> = (0..16u64).map(|l| (l, data.as_slice())).collect();
        let end_a = a.write_batch(0, &batch).unwrap();
        let end_b = b.write_batch(0, &batch).unwrap();
        assert_eq!(end_a, end_b);
        assert_eq!(a.flash_stats().programs, b.flash_stats().programs);
        assert_eq!(b.flash_stats().queued_submissions, 0, "depth 1 never queues");
    }

    #[test]
    fn read_batch_roundtrips_and_overlaps_dies() {
        // Each run gets its own device so the other run's die occupancy
        // cannot leak into its timing.
        let run = |batched: bool| -> u64 {
            let mut n = small_noftl(); // 4 dies
            let pages: Vec<(u64, Vec<u8>)> = (0..32u64).map(|l| (l, vec![l as u8; 4096])).collect();
            let batch: Vec<(u64, &[u8])> = pages.iter().map(|(l, d)| (*l, d.as_slice())).collect();
            let end = n.write_batch(0, &batch).unwrap();
            if batched {
                let mut bufs: Vec<(u64, Vec<u8>)> =
                    (0..32u64).map(|l| (l, vec![0u8; 4096])).collect();
                let mut reqs: Vec<(u64, &mut [u8])> = bufs
                    .iter_mut()
                    .map(|(l, b)| (*l, b.as_mut_slice()))
                    .collect();
                let done = n.read_batch(end, &mut reqs).unwrap();
                for (lpn, buf) in &bufs {
                    assert_eq!(buf, &vec![*lpn as u8; 4096], "lpn {lpn} content wrong");
                }
                assert!(
                    n.flash_stats().multi_page_read_dispatches >= 4,
                    "one dispatch per die"
                );
                assert_eq!(n.stats().host_reads, 32);
                done - end
            } else {
                // Sequential chained reads: each read issued at the previous
                // one's completion — the pre-PR4 issuer.
                let mut t = end;
                let mut buf = vec![0u8; 4096];
                for lpn in 0..32u64 {
                    t = n.read(t, lpn, &mut buf).unwrap().completed_at;
                }
                t - end
            }
        };
        let sequential = run(false);
        let batched = run(true);
        assert!(
            (sequential as f64) / (batched as f64) >= 2.0,
            "expected >=2x from die overlap + read pipelining: seq={sequential} batched={batched}"
        );
    }

    #[test]
    fn read_batch_of_one_is_identical_to_read() {
        let mut a = small_noftl();
        let mut b = small_noftl();
        let data = page(&a, 0x51);
        a.write(0, 7, &data).unwrap();
        b.write(0, 7, &data).unwrap();
        let mut buf_a = page(&a, 0);
        let c = a.read(5000, 7, &mut buf_a).unwrap();
        let mut buf_b = page(&b, 0);
        let end = b.read_batch(5000, &mut [(7, buf_b.as_mut_slice())]).unwrap();
        assert_eq!(c.completed_at, end);
        assert_eq!(buf_a, buf_b);
        assert_eq!(a.flash_stats().reads, b.flash_stats().reads);
        assert_eq!(b.flash_stats().multi_page_read_dispatches, 0);
        assert_eq!(a.stats().host_reads, b.stats().host_reads);
    }

    #[test]
    fn read_batch_rejects_bad_input_without_reading() {
        let mut n = small_noftl();
        let data = page(&n, 1);
        n.write(0, 0, &data).unwrap();
        let mut good = page(&n, 0);
        let mut unmapped = page(&n, 0);
        assert!(n
            .read_batch(0, &mut [(0, good.as_mut_slice()), (9, unmapped.as_mut_slice())])
            .is_err());
        assert_eq!(n.stats().host_reads, 0);
        assert_eq!(n.flash_stats().reads, 0, "no device command may issue");
        let mut small_buf = vec![0u8; 7];
        assert!(n
            .read_batch(0, &mut [(0, good.as_mut_slice()), (0, small_buf.as_mut_slice())])
            .is_err());
        assert_eq!(n.flash_stats().reads, 0);
    }

    #[test]
    fn async_depth_one_read_is_identical_to_sync() {
        let mut a = small_noftl();
        let mut b = small_noftl();
        b.set_async_depth(1);
        let data = page(&a, 0x66);
        for lpn in 0..8u64 {
            a.write(0, lpn, &data).unwrap();
            b.write(0, lpn, &data).unwrap();
        }
        let mut buf_a = page(&a, 0);
        let mut buf_b = page(&b, 0);
        for lpn in 0..8u64 {
            let ca = a.read(1000, lpn, &mut buf_a).unwrap();
            let cb = b.read(1000, lpn, &mut buf_b).unwrap();
            assert_eq!(ca, cb);
            assert_eq!(buf_a, buf_b);
        }
        assert_eq!(b.flash_stats().queued_reads, 0, "depth 1 never queues");
    }

    #[test]
    fn async_point_read_queues_behind_inflight_write_traffic() {
        // The same read issued at the same instant: on an idle device it is
        // fast; with a flush batch in flight on its die it must wait its turn
        // in the queue — the foreground-read interference the synchronous
        // model could never show (a sync read only paid die occupancy, never
        // queue admission).
        let data = vec![9u8; 4096];
        let idle_latency = {
            let mut n = small_noftl();
            n.set_async_depth(8);
            n.write(0, 0, &data).unwrap();
            let t0 = n.drain(0) + 1_000_000;
            let mut buf = vec![0u8; 4096];
            let c = n.read(t0, 0, &mut buf).unwrap();
            c.completed_at - t0
        };
        let busy_latency = {
            let mut n = small_noftl();
            n.set_async_depth(8);
            n.write(0, 0, &data).unwrap();
            let t0 = n.drain(0) + 1_000_000;
            // Two flush batches bound for lpn 0's die (region 0 holds lpns
            // 0, 4, 8, ... under 4-way striping), submitted just before.
            let batch: Vec<(u64, &[u8])> = (1..9u64).map(|i| (i * 4, data.as_slice())).collect();
            n.write_batch(t0, &batch).unwrap();
            n.write_batch(t0, &batch).unwrap();
            let mut buf = vec![0u8; 4096];
            let c = n.read(t0, 0, &mut buf).unwrap();
            assert_eq!(buf, data, "queued read returns correct content");
            c.completed_at - t0
        };
        assert!(
            busy_latency > idle_latency,
            "a read behind in-flight writes must be slower: busy={busy_latency} idle={idle_latency}"
        );
    }

    #[test]
    fn gc_under_async_routes_through_queues_and_preserves_content() {
        // The same overwrite storm, synchronous vs async depth 8: GC's
        // relocations and erases must flow through the queued interface
        // (observable in queued_submissions) without changing any content or
        // the amount of GC work.
        let storm = |async_depth: usize| -> (Vec<Vec<u8>>, u64, u64, u64) {
            let mut g = FlashGeometry::tiny();
            g.planes_per_die = 2;
            let mut cfg = NoFtlConfig::new(g);
            cfg.op_ratio = 0.30;
            cfg.gc_low_watermark = 2;
            cfg.gc_high_watermark = 3;
            cfg.async_queue_depth = async_depth;
            let mut n = NoFtl::new(cfg);
            let lpns = n.logical_pages();
            let mut now = 0;
            for lpn in 0..lpns {
                let data = vec![lpn as u8; n.page_size];
                now = n.write(now, lpn, &data).unwrap().completed_at;
            }
            for round in 1u8..12 {
                for lpn in (0..lpns).filter(|l| l % 3 != 0) {
                    let data = vec![round ^ lpn as u8; n.page_size];
                    now = n.write(now, lpn, &data).unwrap().completed_at;
                }
            }
            now = n.drain(now);
            let mut contents = Vec::new();
            let mut buf = vec![0u8; n.page_size];
            for lpn in 0..lpns {
                n.read(now, lpn, &mut buf).unwrap();
                contents.push(buf.clone());
            }
            let s = n.stats();
            (contents, s.gc_page_copies, s.gc_erases, n.flash_stats().queued_submissions)
        };
        let (contents_sync, copies_sync, erases_sync, queued_sync) = storm(1);
        let (contents_async, copies_async, erases_async, queued_async) = storm(8);
        assert!(erases_sync > 0, "storm must trigger GC");
        assert_eq!(queued_sync, 0, "depth 1 never queues");
        assert!(
            queued_async > erases_async,
            "async GC must submit relocations and erases through the queues"
        );
        assert_eq!(contents_async, contents_sync, "async GC must not corrupt data");
        assert_eq!(copies_async, copies_sync, "same GC decisions, same copy count");
        assert_eq!(erases_async, erases_sync);
    }

    #[test]
    fn unwritten_and_out_of_range_reads_fail() {
        let mut n = small_noftl();
        let mut buf = page(&n, 0);
        assert!(n.read(0, 1, &mut buf).is_err());
        assert!(n.read(0, n.logical_pages() + 1, &mut buf).is_err());
    }

    #[test]
    fn identify_exposes_geometry_to_dbms() {
        let n = small_noftl();
        let id = n.identify();
        assert_eq!(id.geometry, *n.device().geometry());
        assert_eq!(n.regions(), id.geometry.total_dies() as usize);
    }

    #[test]
    fn reset_stats_clears_all_layers() {
        let mut n = small_noftl();
        let data = page(&n, 1);
        n.write(0, 0, &data).unwrap();
        n.reset_stats();
        assert_eq!(n.stats().host_writes, 0);
        assert_eq!(n.flash_stats().programs, 0);
    }

    #[test]
    fn buffer_size_mismatch_rejected() {
        let mut n = small_noftl();
        assert!(matches!(
            n.write(0, 0, &[0u8; 7]),
            Err(FlashError::BufferSizeMismatch { .. })
        ));
    }

    use nand_flash::fault::FaultPlan;

    /// NoFTL over a device with an explicit fault plan (independent of the
    /// `NOFTL_FAULTS` env knob, so these tests are deterministic anywhere).
    fn faulty_noftl(plan: FaultPlan, config: NoFtlConfig) -> NoFtl {
        let mut dev_cfg = DeviceConfig::new(config.geometry);
        dev_cfg.store_data = config.store_data;
        dev_cfg.endurance_override = config.endurance_override;
        dev_cfg.faults = Some(plan);
        NoFtl::with_device(NandDevice::new(dev_cfg), config)
    }

    #[test]
    fn writes_survive_program_failures() {
        let mut plan = FaultPlan::seeded(11);
        plan.program_fail_base = 0.03;
        plan.program_fail_wear_scale = 0.0;
        plan.read_error_base = 0.0;
        let mut n = faulty_noftl(plan, NoFtlConfig::new(FlashGeometry::small()));
        let lpns: u64 = 200;
        let mut t = 0;
        for round in 0..3u64 {
            for lpn in 0..lpns {
                let data = vec![(lpn as u8) ^ (round as u8); 4096];
                t = n.write(t, lpn, &data).unwrap().completed_at;
            }
        }
        assert!(
            n.stats().program_fail_retirements > 0,
            "600 writes at 3% failure rate must have tripped recovery"
        );
        assert!(n.stats().retired_blocks >= n.stats().program_fail_retirements);
        assert_eq!(n.bad_blocks().grown_count() as u64, n.stats().retired_blocks);
        // Zero data loss: every logical page reads back its newest version.
        let mut buf = vec![0u8; 4096];
        for lpn in 0..lpns {
            n.read(t, lpn, &mut buf).unwrap();
            assert_eq!(buf, vec![(lpn as u8) ^ 2u8; 4096], "lpn {lpn}");
        }
        // The device saw the failures the DBMS recovered from.
        assert_eq!(
            n.flash_stats().program_failures > 0,
            n.stats().program_fail_retirements > 0
        );
    }

    #[test]
    fn batched_writes_survive_program_failures() {
        let mut plan = FaultPlan::seeded(12);
        plan.program_fail_base = 0.03;
        plan.program_fail_wear_scale = 0.0;
        plan.read_error_base = 0.0;
        let mut cfg = NoFtlConfig::new(FlashGeometry::small());
        cfg.async_queue_depth = 8;
        let mut n = faulty_noftl(plan, cfg);
        let lpns: u64 = 192;
        let mut t = 0;
        for round in 0..3u64 {
            let payloads: Vec<Vec<u8>> = (0..lpns)
                .map(|lpn| vec![(lpn as u8).wrapping_add(round as u8); 4096])
                .collect();
            for chunk in (0..lpns).collect::<Vec<_>>().chunks(16) {
                let batch: Vec<(u64, &[u8])> = chunk
                    .iter()
                    .map(|&lpn| (lpn, payloads[lpn as usize].as_slice()))
                    .collect();
                t = n.write_batch(t, &batch).unwrap();
            }
        }
        t = n.drain(t);
        assert!(n.stats().program_fail_retirements > 0);
        let mut buf = vec![0u8; 4096];
        for lpn in 0..lpns {
            n.read(t, lpn, &mut buf).unwrap();
            assert_eq!(buf, vec![(lpn as u8).wrapping_add(2); 4096], "lpn {lpn}");
        }
    }

    #[test]
    fn uncorrectable_reads_recover_through_the_retry_ladder() {
        let mut plan = FaultPlan::seeded(13);
        plan.program_fail_base = 0.0;
        plan.read_error_base = 0.4;
        plan.read_error_wear_scale = 0.0;
        plan.read_error_retention_scale = 0.0;
        plan.read_error_disturb_scale = 0.0;
        plan.uncorrectable_fraction = 0.25;
        let mut cfg = NoFtlConfig::new(FlashGeometry::small());
        cfg.scrub_read_disturb_threshold = u64::MAX; // isolate the ladder
        let mut n = faulty_noftl(plan, cfg);
        let mut buf = vec![0u8; 4096];
        for lpn in 0..32u64 {
            let data = vec![lpn as u8; 4096];
            n.write(0, lpn, &data).unwrap();
        }
        for round in 1..10u64 {
            for lpn in 0..32u64 {
                n.read(round * 1_000_000, lpn, &mut buf).unwrap();
                assert_eq!(buf, vec![lpn as u8; 4096]);
            }
        }
        assert!(n.stats().read_retries > 0, "10% uncorrectable per attempt");
        assert!(n.stats().read_retry_successes > 0);
        assert!(n.flash_stats().uncorrectable_reads >= n.stats().read_retries);
        assert!(n.flash_stats().corrected_reads > 0);
    }

    #[test]
    fn erase_failures_retire_blocks_mid_gc_without_losing_survivors() {
        let mut plan = FaultPlan::seeded(14);
        plan.program_fail_base = 0.0;
        plan.read_error_base = 0.0;
        plan.erase_fail_knee = 0.0;
        plan.erase_fail_prob = 0.08;
        let mut g = FlashGeometry::tiny();
        g.planes_per_die = 2; // 2 planes x 8 blocks x 8 pages
        let mut cfg = NoFtlConfig::new(g);
        cfg.op_ratio = 0.30;
        cfg.gc_low_watermark = 2;
        cfg.gc_high_watermark = 3;
        // Endurance 0 pins the plan's wear fraction at 1.0, so every erase
        // draws the full `erase_fail_prob` — and the hard WornOut model is
        // switched off so only the injected failures retire blocks.
        cfg.endurance_override = Some(0);
        let mut dev_cfg = DeviceConfig::new(g);
        dev_cfg.endurance_override = Some(0);
        dev_cfg.bad_blocks = nand_flash::bad_block::BadBlockPolicy {
            factory_bad_fraction: 0.0,
            wear_out_failure_prob: 0.0,
            seed: 1,
        };
        dev_cfg.faults = Some(plan);
        let mut n = NoFtl::with_device(NandDevice::new(dev_cfg), cfg);
        let lpns = n.logical_pages();
        let mut t = 0;
        // Seed everything, then overwrite a skewed subset so GC erases
        // constantly (and its victims carry survivors).
        for lpn in 0..lpns {
            let data = vec![lpn as u8; 512];
            t = n.write(t, lpn, &data).unwrap().completed_at;
        }
        let mut last = vec![0u8; lpns as usize];
        for (i, d) in last.iter_mut().enumerate() {
            *d = i as u8;
        }
        // Overwrite until the injected erase failures have fired a couple of
        // times (the early exit keeps the shrinking block pool comfortable —
        // every failure permanently retires a block).
        'storm: for round in 1u8..32 {
            for lpn in (0..lpns).filter(|l| l % 3 != 0) {
                let data = vec![round ^ lpn as u8; 512];
                t = n.write(t, lpn, &data).unwrap().completed_at;
                last[lpn as usize] = round ^ lpn as u8;
                if n.stats().erase_fail_retirements >= 2 {
                    break 'storm;
                }
            }
        }
        assert!(n.stats().gc_erases > 0, "workload must have forced GC");
        assert!(
            n.stats().erase_fail_retirements > 0,
            "wear-ramped erase failures across {} erases must have fired",
            n.stats().gc_erases
        );
        assert_eq!(
            n.flash_stats().erase_failures,
            n.stats().erase_fail_retirements
        );
        assert!(n.stats().retired_blocks >= n.stats().erase_fail_retirements);
        let mut buf = vec![0u8; 512];
        for lpn in 0..lpns {
            n.read(t, lpn, &mut buf).unwrap();
            assert_eq!(buf, vec![last[lpn as usize]; 512], "lpn {lpn}");
        }
    }

    #[test]
    fn read_disturb_scrubber_rewrites_hot_blocks() {
        let mut plan = FaultPlan::seeded(15);
        plan.program_fail_base = 0.0;
        plan.read_error_base = 0.0; // isolate the scrubber from the ladder
        let mut cfg = NoFtlConfig::new(FlashGeometry::tiny());
        cfg.op_ratio = 0.30;
        cfg.scrub_read_disturb_threshold = 40;
        let mut n = faulty_noftl(plan, cfg);
        // Fill several blocks so the hot page's block is sealed (the active
        // allocation block is exempt from scrubbing).
        let lpns = n.logical_pages();
        for lpn in 0..lpns {
            let data = vec![lpn as u8; 512];
            n.write(0, lpn, &data).unwrap();
        }
        let mut buf = vec![0u8; 512];
        for i in 0..60u64 {
            n.read(1_000 + i, 5, &mut buf).unwrap();
        }
        assert!(n.stats().scrubbed_blocks >= 1, "threshold 40 < 60 reads");
        assert!(n.stats().scrub_relocations > 0, "live pages moved out");
        // The hot page survived the scrub and every other page is intact.
        for lpn in 0..lpns {
            n.read(2_000_000, lpn, &mut buf).unwrap();
            assert_eq!(buf, vec![lpn as u8; 512], "lpn {lpn}");
        }
    }

    #[test]
    fn exhausting_the_block_pool_fails_typed_not_panicking() {
        // Every program fails, so every write retires another block; once
        // the last free block is gone the write must surface
        // OutOfSpareBlocks as an error instead of panicking or looping.
        let mut plan = FaultPlan::seeded(16);
        plan.program_fail_base = 1.0;
        plan.read_error_base = 0.0;
        let mut cfg = NoFtlConfig::new(FlashGeometry::tiny());
        cfg.op_ratio = 0.30;
        let mut n = faulty_noftl(plan, cfg);
        let data = vec![0xAB; 512];
        let err = n.write(0, 0, &data).unwrap_err();
        assert_eq!(err, FlashError::OutOfSpareBlocks);
        // The pool is genuinely gone: every block was retired exactly once.
        assert_eq!(
            n.stats().retired_blocks,
            FlashGeometry::tiny().total_blocks()
        );
        assert_eq!(n.bad_blocks().grown_count() as u64, n.stats().retired_blocks);
    }

    #[test]
    fn factory_bad_blocks_shrink_exported_capacity() {
        use nand_flash::bad_block::BadBlockPolicy;
        let g = FlashGeometry::small();
        let cfg = NoFtlConfig::new(g);
        let full_capacity = cfg.logical_pages();
        let mut dev_cfg = DeviceConfig::new(g);
        dev_cfg.bad_blocks = BadBlockPolicy {
            factory_bad_fraction: 0.10,
            wear_out_failure_prob: 1.0,
            seed: 99,
        };
        let mut n = NoFtl::with_device(NandDevice::new(dev_cfg), cfg);
        let factory = n.bad_blocks().factory_count();
        assert!(factory > 0, "10% of 256 blocks must mark some factory-bad");
        assert!(
            n.logical_pages() < full_capacity,
            "capacity must shrink with the factory-bad pool ({} vs {})",
            n.logical_pages(),
            full_capacity
        );
        // The shrunken promise is honest: every exported page is writable
        // and readable even though the physical pool lost blocks.
        let mut t = 0;
        for lpn in 0..n.logical_pages() {
            let data = vec![(lpn % 251) as u8; 4096];
            t = n.write(t, lpn, &data).unwrap().completed_at;
        }
        let mut buf = vec![0u8; 4096];
        for lpn in 0..n.logical_pages() {
            n.read(t, lpn, &mut buf).unwrap();
            assert_eq!(buf[0], (lpn % 251) as u8);
        }
        // A pristine device still exports the full configured capacity.
        let pristine = small_noftl();
        assert_eq!(pristine.logical_pages(), full_capacity);
    }

    /// A fault plan with every probabilistic failure mode zeroed, so only
    /// the deterministic die kill (fired by the next device command) acts.
    fn kill_plan(die_flat: u32) -> FaultPlan {
        let mut plan = FaultPlan::seeded(7).with_die_kill(0, die_flat);
        plan.program_fail_base = 0.0;
        plan.erase_fail_prob = 0.0;
        plan.read_error_base = 0.0;
        plan
    }

    /// Flat die index logical page `lpn` is currently mapped to.
    fn die_of_lpn(n: &NoFtl, lpn: u64) -> u32 {
        let g = *n.device().geometry();
        let flat = n.map.get(lpn).expect("lpn is mapped");
        Ppa::from_flat(&g, flat).die_addr().flat(&g) as u32
    }

    #[test]
    fn parity_stripes_seal_die_disjoint() {
        let mut n = small_noftl();
        assert!(!n.redundancy_configured());
        n.set_redundancy_all(RedundancyPolicy::Parity(3));
        assert!(n.redundancy_configured());
        assert_eq!(n.redundancy_policy(0), RedundancyPolicy::Parity(3));
        let mut now = 0;
        for lpn in 0..12u64 {
            let data = page(&n, lpn as u8 + 1);
            now = n.write(now, lpn, &data).unwrap().completed_at;
        }
        let rs = n.redundancy_stats();
        assert_eq!(rs.stripes_sealed, 4, "12 writes at k = 3 seal 4 stripes");
        assert_eq!(rs.parity_pages_written, 4);
        assert_eq!(rs.stripes_broken, 0);
        // Every stripe (members + parity) must be die-disjoint: one die
        // failure may cost at most one page per stripe.
        let g = *n.device().geometry();
        for stripe in n.stripes.iter().flatten() {
            let mut dies: Vec<u64> = stripe
                .members
                .iter()
                .chain(std::iter::once(&stripe.parity))
                .map(|&m| Ppa::from_flat(&g, m).die_addr().flat(&g))
                .collect();
            let total = dies.len();
            dies.sort_unstable();
            dies.dedup();
            assert_eq!(dies.len(), total, "stripe pages share a die");
        }
        // Reads of parity-protected pages stay plain reads while no die is
        // dead.
        let mut buf = page(&n, 0);
        n.read(now, 5, &mut buf).unwrap();
        assert_eq!(buf, page(&n, 6));
        assert_eq!(n.redundancy_stats().degraded_reads, 0);
    }

    #[test]
    fn mirror_writes_place_copies_on_other_dies() {
        let mut n = small_noftl();
        n.set_redundancy_all(RedundancyPolicy::Mirror);
        let g = *n.device().geometry();
        let mut now = 0;
        for lpn in 0..8u64 {
            let data = page(&n, lpn as u8 + 1);
            now = n.write(now, lpn, &data).unwrap().completed_at;
        }
        assert_eq!(n.redundancy_stats().mirror_pages_written, 8);
        for lpn in 0..8u64 {
            let flat = n.map.get(lpn).unwrap() as usize;
            let copy = n.mirror_of[flat];
            assert_ne!(copy, NO_MIRROR, "every write must be mirrored");
            assert_eq!(n.mirror_of[copy as usize], flat as u64);
            let pd = Ppa::from_flat(&g, flat as u64).die_addr();
            let cd = Ppa::from_flat(&g, copy).die_addr();
            assert_ne!(pd, cd, "mirror copy must live on a different die");
        }
        // Superseding a mirrored page drops the copy as garbage.
        let data = page(&n, 0xEE);
        n.write(now, 0, &data).unwrap();
        assert_eq!(n.redundancy_stats().mirror_pages_written, 9);
    }

    #[test]
    fn degraded_read_reconstructs_from_parity() {
        let mut n = small_noftl();
        n.set_redundancy_all(RedundancyPolicy::Parity(3));
        let mut now = 0;
        for lpn in 0..12u64 {
            let data = page(&n, lpn as u8 + 1);
            now = n.write(now, lpn, &data).unwrap().completed_at;
        }
        let victim_lpn = 5u64;
        let dead_die = die_of_lpn(&n, victim_lpn);
        let live_lpn = (0..12u64)
            .find(|&l| die_of_lpn(&n, l) != dead_die)
            .unwrap();
        n.set_fault_plan(Some(kill_plan(dead_die)));
        // The next device command fires the kill; aim it at a live die.
        let mut buf = page(&n, 0);
        n.read(now, live_lpn, &mut buf).unwrap();
        assert!(n.any_die_dead());
        // The read of the lost page is served bit-identical through XOR
        // reconstruction from its stripe's surviving pages.
        n.read(now, victim_lpn, &mut buf).unwrap();
        assert_eq!(buf, page(&n, victim_lpn as u8 + 1));
        assert_eq!(n.redundancy_stats().degraded_reads, 1);
        assert!(n.redundancy_stats().reconstructed_pages >= 1);
        assert_eq!(n.rebuild_stats().die_failures_detected, 1);
    }

    #[test]
    fn degraded_read_reconstructs_from_mirror() {
        let mut n = small_noftl();
        n.set_redundancy_all(RedundancyPolicy::Mirror);
        let mut now = 0;
        for lpn in 0..8u64 {
            let data = page(&n, lpn as u8 + 1);
            now = n.write(now, lpn, &data).unwrap().completed_at;
        }
        let victim_lpn = 3u64;
        let dead_die = die_of_lpn(&n, victim_lpn);
        let live_lpn = (0..8u64)
            .find(|&l| die_of_lpn(&n, l) != dead_die)
            .unwrap();
        n.set_fault_plan(Some(kill_plan(dead_die)));
        let mut buf = page(&n, 0);
        n.read(now, live_lpn, &mut buf).unwrap();
        n.read(now, victim_lpn, &mut buf).unwrap();
        assert_eq!(buf, page(&n, victim_lpn as u8 + 1));
        assert_eq!(n.redundancy_stats().degraded_reads, 1);
        assert_eq!(n.redundancy_stats().reconstructed_pages, 1);
    }

    #[test]
    fn rebuild_rehomes_parity_protected_pages() {
        let mut n = small_noftl();
        n.set_redundancy_all(RedundancyPolicy::Parity(3));
        let mut now = 0;
        for lpn in 0..32u64 {
            let data = page(&n, lpn as u8 + 1);
            now = n.write(now, lpn, &data).unwrap().completed_at;
        }
        let dead_die = die_of_lpn(&n, 0);
        let lost: Vec<u64> = (0..32u64)
            .filter(|&l| die_of_lpn(&n, l) == dead_die)
            .collect();
        assert!(!lost.is_empty());
        let live_lpn = (0..32u64)
            .find(|&l| die_of_lpn(&n, l) != dead_die)
            .unwrap();
        n.set_fault_plan(Some(kill_plan(dead_die)));
        let mut buf = page(&n, 0);
        n.read(now, live_lpn, &mut buf).unwrap();
        now = n.rebuild_all(now).unwrap();
        let rb = n.rebuild_stats();
        assert_eq!(rb.die_failures_detected, 1);
        assert_eq!(rb.pages_rebuilt, lost.len() as u64);
        assert_eq!(rb.pages_lost, 0, "parity must recover every lost page");
        assert!(rb.accounted());
        // Every page — including the rebuilt ones — reads back bit-identical,
        // and nothing is mapped to the dead die any more.
        for lpn in 0..32u64 {
            n.read(now, lpn, &mut buf).unwrap();
            assert_eq!(buf, page(&n, lpn as u8 + 1), "lpn {lpn}");
            assert_ne!(die_of_lpn(&n, lpn), dead_die);
        }
        // The rebuilt pages are served by plain reads, not degraded ones.
        let degraded_before = n.redundancy_stats().degraded_reads;
        n.read(now, lost[0], &mut buf).unwrap();
        assert_eq!(n.redundancy_stats().degraded_reads, degraded_before);
    }

    #[test]
    fn die_loss_without_redundancy_counts_losses() {
        let mut n = small_noftl();
        let mut now = 0;
        for lpn in 0..8u64 {
            let data = page(&n, lpn as u8 + 1);
            now = n.write(now, lpn, &data).unwrap().completed_at;
        }
        let dead_die = die_of_lpn(&n, 2);
        let live_lpn = (0..8u64)
            .find(|&l| die_of_lpn(&n, l) != dead_die)
            .unwrap();
        n.set_fault_plan(Some(kill_plan(dead_die)));
        let mut buf = page(&n, 0);
        n.read(now, live_lpn, &mut buf).unwrap();
        now = n.rebuild_all(now).unwrap();
        let rb = n.rebuild_stats();
        assert_eq!(rb.pages_rebuilt, 0);
        assert!(rb.pages_lost >= 1, "unprotected pages are lost");
        assert!(rb.accounted());
        // The mapping still points at the dead die: reads keep failing typed
        // so the storage engine's WAL-replay page rebuild can take over.
        let err = n.read(now, 2, &mut buf).unwrap_err();
        assert!(matches!(err, FlashError::DieFailed(_)), "got {err:?}");
    }

    #[test]
    fn schedule_rebuild_defers_hot_and_progresses_cold() {
        let mut n = small_noftl();
        n.set_redundancy_all(RedundancyPolicy::Parity(3));
        let mut now = 0;
        for lpn in 0..32u64 {
            let data = page(&n, lpn as u8 + 1);
            now = n.write(now, lpn, &data).unwrap().completed_at;
        }
        // No die dead: a single cheap check, no work, no counters.
        assert_eq!(n.schedule_rebuild(now).unwrap(), None);
        assert_eq!(n.rebuild_stats().rebuild_scheduled, 0);
        let dead_die = die_of_lpn(&n, 0);
        let live_lpn = (0..32u64)
            .find(|&l| die_of_lpn(&n, l) != dead_die)
            .unwrap();
        n.set_fault_plan(Some(kill_plan(dead_die)));
        let g = *n.device.geometry();
        let mut buf = page(&n, 0);
        n.read(now, live_lpn, &mut buf).unwrap();
        // Read-hot instant: one read in flight defers the rebuild step.
        n.set_gc_schedule_read_occupancy(1);
        let live_flat = n.map.get(live_lpn).unwrap();
        let (_, sub) = n
            .device
            .submit_read_page(now, Ppa::from_flat(&g, live_flat), &mut buf)
            .unwrap();
        assert_eq!(n.schedule_rebuild(now).unwrap(), None);
        assert_eq!(n.rebuild_stats().rebuild_deferred_hot, 1);
        assert_eq!(n.rebuild_stats().rebuild_scheduled, 0);
        // Read-cold instants: bounded steps make progress until the dead
        // die's page range is fully walked.
        let mut t = sub.completion.completed_at;
        while let Some(end) = n.schedule_rebuild(t).unwrap() {
            t = end.max(t);
        }
        let rb = n.rebuild_stats();
        assert!(rb.rebuild_scheduled >= 1);
        assert_eq!(rb.rebuild_deferred_hot, 1);
        assert_eq!(rb.pages_lost, 0);
        assert!(rb.pages_rebuilt >= 1);
        assert!(rb.accounted());
        for lpn in 0..32u64 {
            n.read(t, lpn, &mut buf).unwrap();
            assert_eq!(buf, page(&n, lpn as u8 + 1), "lpn {lpn}");
        }
    }

    #[test]
    fn gc_churn_under_parity_breaks_and_reprotects_stripes() {
        let mut cfg = NoFtlConfig::new(FlashGeometry::small());
        // Parity(3) keeps ~1 extra live page per 3 logical ones — plus the
        // parity of superseded versions, pinned until their blocks erase —
        // so the over-provisioning must budget for it (the
        // `NOFTL_REDUNDANCY` knob wiring applies the same accounting when it
        // builds the config).
        cfg.op_ratio = 0.60;
        cfg.gc_low_watermark = 2;
        cfg.gc_high_watermark = 4;
        let mut n = NoFtl::new(cfg);
        n.set_redundancy_all(RedundancyPolicy::Parity(3));
        let lpns = n.logical_pages();
        let mut now = 0;
        // Round 0 writes everything, mixing hot (even) and cold (odd) pages
        // into the same stripes; the churn rounds then overwrite only the
        // hot half.  GC victims hold hot garbage whose stripe peers include
        // still-mapped cold pages — exactly the members the break hook must
        // re-protect.
        for lpn in 0..lpns {
            let data = vec![lpn as u8; n.page_size];
            now = n.write(now, lpn, &data).unwrap().completed_at;
        }
        for round in 1u8..6 {
            for lpn in (0..lpns).step_by(2) {
                let data = vec![round ^ lpn as u8; n.page_size];
                now = n.write(now, lpn, &data).unwrap().completed_at;
            }
        }
        assert!(n.stats().gc_erases > 0, "churn must trigger GC");
        let rs = n.redundancy_stats();
        assert!(rs.stripes_sealed > 0);
        assert!(rs.stripes_broken > 0, "GC erases must dissolve stripes");
        assert!(rs.members_reprotected > 0);
        let mut buf = vec![0u8; n.page_size];
        for lpn in 0..lpns {
            let expect = if lpn % 2 == 0 { 5u8 ^ lpn as u8 } else { lpn as u8 };
            n.read(now, lpn, &mut buf).unwrap();
            assert_eq!(buf, vec![expect; n.page_size], "lpn {lpn}");
        }
    }

    #[test]
    fn rebuild_reads_do_not_bias_gc_victims() {
        // Satellite regression: reconstruction/rebuild reads hammering one
        // die must not register as foreground read heat — the victim choice
        // with rebuild traffic must equal the read-blind choice without it.
        let g = FlashGeometry::small();
        let mut cfg = NoFtlConfig::new(g);
        cfg.striping = StripingMode::Single;
        let mut n = NoFtl::new(cfg);
        n.set_gc_read_heat_penalty(4.0);
        let data = vec![1u8; n.page_size];
        let ppb = g.pages_per_block as u64;
        let mut now = 0;
        // Two closed blocks on two dies (Single striping round-robins dies
        // at block boundaries), then equal garbage in both.
        for lpn in 0..(ppb * 2) {
            now = n.write(now, lpn, &data).unwrap().completed_at;
        }
        now = n.write(now, ppb * 2, &data).unwrap().completed_at;
        let first = Ppa::from_flat(&g, n.map.get(0).unwrap()).block_addr();
        let second =
            Ppa::from_flat(&g, n.map.get(ppb).unwrap()).block_addr();
        assert_ne!(first.die_addr(), second.die_addr());
        for lpn in 0..4u64 {
            now = n.write(now, lpn, &data).unwrap().completed_at;
        }
        for lpn in ppb..ppb + 4 {
            now = n.write(now, lpn, &data).unwrap().completed_at;
        }
        // Hammer reconstruction-class reads on the FIRST block's die — the
        // read-blind victim.  If these leaked into the heat accumulator the
        // penalty would steer GC to the second block instead.
        let mut buf = vec![0u8; n.page_size];
        for _ in 0..10 {
            for lpn in 4..8u64 {
                let ppa = Ppa::from_flat(&g, n.map.get(lpn).unwrap());
                now = n
                    .reconstruction_read(now, ppa, &mut buf)
                    .unwrap()
                    .1
                    .completed_at;
            }
        }
        n.gc_region_once(now, 0).unwrap();
        assert!(
            n.regions.is_free(first),
            "victim choice must match the read-blind choice (reclaim {first:?})"
        );
        assert!(!n.regions.is_free(second));
        // The shadow accumulator absorbed the reconstruction reads entirely.
        let die = first.die_addr().flat(&g) as usize;
        assert_eq!(n.gc_read_heat[die], 0);
        assert!(n.rebuild_reads_per_die[die] >= 40);
    }

    #[test]
    fn off_leg_keeps_all_redundancy_machinery_dormant() {
        let mut n = tiny_noftl();
        let lpns = n.logical_pages();
        let mut now = 0;
        for round in 0u8..6 {
            for lpn in 0..lpns {
                let data = vec![round ^ lpn as u8; n.page_size];
                now = n.write(now, lpn, &data).unwrap().completed_at;
            }
        }
        assert!(n.stats().gc_erases > 0);
        assert!(!n.redundancy_configured());
        assert!(!n.redundancy_active);
        assert!(n.stripe_of.is_empty(), "off leg allocates no stripe tables");
        assert!(n.mirror_of.is_empty());
        let rs = n.redundancy_stats();
        assert_eq!(rs.parity_pages_written, 0);
        assert_eq!(rs.stripes_sealed, 0);
        assert_eq!(rs.stripes_sealed_degraded, 0);
        assert_eq!(rs.stripes_abandoned, 0);
        assert_eq!(rs.open_members_purged, 0);
        assert_eq!(rs.stripes_broken, 0);
        assert_eq!(rs.members_reprotected, 0);
        assert_eq!(rs.mirror_pages_written, 0);
        assert_eq!(rs.mirror_skipped_no_space, 0);
        assert_eq!(rs.degraded_reads, 0);
        assert_eq!(rs.reconstructed_pages, 0);
        let rb = n.rebuild_stats();
        assert_eq!(rb.die_failures_detected, 0);
        assert_eq!(rb.pages_scanned, 0);
        assert_eq!(rb.rebuild_scheduled, 0);
        assert_eq!(rb.rebuild_deferred_hot, 0);
    }

    #[test]
    fn die_failure_seals_the_open_stripe() {
        let mut n = small_noftl();
        n.set_redundancy_all(RedundancyPolicy::Parity(3));
        let mut now = 0;
        // Two members in the open stripe (k = 3: not sealed yet).
        for lpn in 0..2u64 {
            let data = page(&n, lpn as u8 + 1);
            now = n.write(now, lpn, &data).unwrap().completed_at;
        }
        assert_eq!(n.redundancy_stats().stripes_sealed, 0);
        let dead_die = die_of_lpn(&n, 0);
        let live_lpn = 1u64;
        assert_ne!(die_of_lpn(&n, live_lpn), dead_die);
        n.set_fault_plan(Some(kill_plan(dead_die)));
        let mut buf = page(&n, 0);
        n.read(now, live_lpn, &mut buf).unwrap();
        // Noticing the failure seals the short stripe from its in-memory
        // XOR — the member on the dead die is covered without re-reading it.
        n.schedule_rebuild(now).unwrap();
        assert_eq!(n.redundancy_stats().stripes_sealed, 1);
        n.rebuild_all(now).unwrap();
        assert_eq!(n.rebuild_stats().pages_lost, 0);
        n.read(now, 0, &mut buf).unwrap();
        assert_eq!(buf, page(&n, 1));
    }

    #[test]
    fn erase_purges_stale_open_stripe_members() {
        let mut n = small_noftl();
        n.set_redundancy_all(RedundancyPolicy::Parity(3));
        let g = *n.device.geometry();
        let mut now = 0;
        let d1 = page(&n, 0x22);
        now = n.write(now, 0, &page(&n, 0x11)).unwrap().completed_at;
        now = n.write(now, 1, &d1).unwrap().completed_at;
        let f0 = n.map.get(0).unwrap();
        let f1 = n.map.get(1).unwrap();
        assert_eq!(n.open_stripe, vec![f0, f1], "k = 3: stripe still open");
        // lpn 0's page goes stale without a re-join: dead-page hint.
        n.mark_dead(0).unwrap();
        assert!(n.open_stripe.contains(&f0), "hinted member stays pending");
        // Its block is reclaimed: the pre-erase hook must back the stale
        // member out of the open stripe — a later seal would otherwise
        // cover flash the erase is about to destroy.
        let block = Ppa::from_flat(&g, f0).block_addr();
        now = n.break_redundancy_in_block(now, block).unwrap();
        assert_eq!(n.open_stripe, vec![f1]);
        assert_eq!(n.redundancy_stats().open_members_purged, 1);
        assert_eq!(n.redundancy_stats().stripes_abandoned, 0);
        // The repaired stripe seals and reconstructs bit-identical: fill it,
        // kill the surviving member's die, and read the member degraded.
        now = n.write(now, 2, &page(&n, 0x33)).unwrap().completed_at;
        now = n.write(now, 3, &page(&n, 0x44)).unwrap().completed_at;
        assert_eq!(n.redundancy_stats().stripes_sealed, 1);
        let dead_die = die_of_lpn(&n, 1);
        let live_lpn = (2..4u64).find(|&l| die_of_lpn(&n, l) != dead_die).unwrap();
        n.set_fault_plan(Some(kill_plan(dead_die)));
        let mut buf = page(&n, 0);
        n.read(now, live_lpn, &mut buf).unwrap();
        n.read(now, 1, &mut buf).unwrap();
        assert_eq!(buf, d1, "reconstruction must not see the purged member");
        assert!(n.redundancy_stats().degraded_reads >= 1);
    }

    #[test]
    fn relocation_rejoin_drops_the_stale_open_member() {
        let mut n = small_noftl();
        n.set_redundancy_all(RedundancyPolicy::Parity(3));
        let g = *n.device.geometry();
        let d0 = page(&n, 0x5A);
        let now = n.write(0, 0, &d0).unwrap().completed_at;
        let f0 = n.map.get(0).unwrap();
        assert_eq!(n.open_stripe, vec![f0]);
        // Relocate lpn 0 to another die, as GC would: the re-join must
        // replace the stale member instead of accumulating beside it.
        let src_die = Ppa::from_flat(&g, f0).die_addr().flat(&g) as usize;
        let dst = n
            .regions
            .allocate_page_on_die((src_die + 1) % g.total_dies() as usize, n.gc_low)
            .unwrap();
        n.relink_redundancy(now, f0, dst.flat(&g), 0, Some(&d0)).unwrap();
        assert_eq!(n.open_stripe, vec![dst.flat(&g)]);
        assert_eq!(n.redundancy_stats().open_members_purged, 1);
        assert_eq!(n.open_stripe_xor, d0, "XOR repaired to cover only the new member");
    }

    #[test]
    fn parity_exhausting_disjoint_dies_counts_degraded_seal() {
        // Two dies, Parity(2): both stripe members occupy all dies, so the
        // parity fallback must land on a member die — and say so.
        let mut g = FlashGeometry::small();
        g.channels = 1;
        g.dies_per_channel = 2;
        let mut n = NoFtl::with_geometry(g);
        n.set_redundancy_all(RedundancyPolicy::Parity(2));
        let r0 = n.regions.region_of_lpn(0);
        let l1 = (1..16u64)
            .find(|&l| n.regions.region_of_lpn(l) != r0)
            .expect("a second region exists");
        let mut now = 0;
        now = n.write(now, 0, &page(&n, 1)).unwrap().completed_at;
        now = n.write(now, l1, &page(&n, 2)).unwrap().completed_at;
        assert_ne!(die_of_lpn(&n, 0), die_of_lpn(&n, l1));
        let rs = n.redundancy_stats();
        assert_eq!(rs.stripes_sealed, 1);
        assert_eq!(
            rs.stripes_sealed_degraded, 1,
            "a member-die parity placement must be observable"
        );
        // The stripe still recovers block-level loss: contents read back.
        let mut buf = page(&n, 0);
        n.read(now, 0, &mut buf).unwrap();
        assert_eq!(buf, page(&n, 1));
    }

    #[test]
    fn single_die_mirror_skips_instead_of_same_die_copy() {
        let mut n = tiny_noftl();
        n.set_redundancy_all(RedundancyPolicy::Mirror);
        let data = page(&n, 0x7E);
        let now = n.write(0, 0, &data).unwrap().completed_at;
        let rs = n.redundancy_stats();
        assert_eq!(
            rs.mirror_pages_written, 0,
            "a same-die copy survives no die failure and must not be written"
        );
        assert_eq!(rs.mirror_skipped_no_space, 1);
        let mut buf = page(&n, 0);
        n.read(now, 0, &mut buf).unwrap();
        assert_eq!(buf, data);
    }
}
