//! Host-resident address translation.
//!
//! §3.1 of the paper: the logical→physical table is "one of the most memory
//! consuming subsystems" of an SSD and on-device RAM cannot hold it at page
//! granularity — but host memory can.  NoFTL therefore keeps the full
//! page-level table in DBMS memory, avoiding both DFTL's translation-page
//! traffic and FASTer's merge overhead.

use std::collections::HashMap;

/// Sentinel meaning "unmapped".
const UNMAPPED: u64 = u64::MAX;

/// Dense logical→physical page table with reverse lookup, held entirely in
/// host memory.
#[derive(Debug, Clone)]
pub struct HostMappingTable {
    forward: Vec<u64>,
    reverse: HashMap<u64, u64>,
}

impl HostMappingTable {
    /// Create a table for `logical_pages` pages, all unmapped.
    pub fn new(logical_pages: u64) -> Self {
        Self {
            forward: vec![UNMAPPED; logical_pages as usize],
            reverse: HashMap::new(),
        }
    }

    /// Number of logical pages covered.
    pub fn logical_pages(&self) -> u64 {
        self.forward.len() as u64
    }

    /// Resolve `lpn` to its physical page (flat index), if mapped.
    pub fn get(&self, lpn: u64) -> Option<u64> {
        let v = *self.forward.get(lpn as usize)?;
        (v != UNMAPPED).then_some(v)
    }

    /// Which logical page lives at physical page `ppa`, if any.
    pub fn reverse(&self, ppa: u64) -> Option<u64> {
        self.reverse.get(&ppa).copied()
    }

    /// Map `lpn` → `ppa`; returns the superseded physical page, if any.
    pub fn update(&mut self, lpn: u64, ppa: u64) -> Option<u64> {
        let old = self.forward[lpn as usize];
        self.forward[lpn as usize] = ppa;
        if old != UNMAPPED {
            self.reverse.remove(&old);
        }
        self.reverse.insert(ppa, lpn);
        (old != UNMAPPED).then_some(old)
    }

    /// Drop the mapping of `lpn`; returns its physical page, if any.
    pub fn unmap(&mut self, lpn: u64) -> Option<u64> {
        let old = self.forward[lpn as usize];
        if old == UNMAPPED {
            return None;
        }
        self.forward[lpn as usize] = UNMAPPED;
        self.reverse.remove(&old);
        Some(old)
    }

    /// Number of currently mapped pages.
    pub fn mapped(&self) -> usize {
        self.reverse.len()
    }

    /// Approximate host-memory footprint of the table in bytes — the resource
    /// argument of §3.1 (a 10 GB drive at 4 KiB pages needs ~20 MB of host
    /// RAM, trivial for a DBMS host, impossible for many SSD controllers).
    pub fn memory_bytes(&self) -> usize {
        self.forward.len() * 8 + self.reverse.len() * 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_unmap_roundtrip() {
        let mut t = HostMappingTable::new(8);
        assert_eq!(t.get(2), None);
        assert_eq!(t.update(2, 77), None);
        assert_eq!(t.get(2), Some(77));
        assert_eq!(t.reverse(77), Some(2));
        assert_eq!(t.update(2, 99), Some(77));
        assert_eq!(t.reverse(77), None);
        assert_eq!(t.unmap(2), Some(99));
        assert_eq!(t.unmap(2), None);
        assert_eq!(t.mapped(), 0);
    }

    #[test]
    fn memory_footprint_scales_with_pages() {
        let small = HostMappingTable::new(1_000);
        let large = HostMappingTable::new(100_000);
        assert!(large.memory_bytes() > small.memory_bytes());
        // ~8 bytes per logical page for the dense array.
        assert!(large.memory_bytes() >= 800_000);
    }
}
