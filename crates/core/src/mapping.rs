//! Host-resident address translation.
//!
//! §3.1 of the paper: the logical→physical table is "one of the most memory
//! consuming subsystems" of an SSD and on-device RAM cannot hold it at page
//! granularity — but host memory can.  NoFTL therefore keeps the full
//! page-level table in DBMS memory, avoiding both DFTL's translation-page
//! traffic and FASTer's merge overhead.
//!
//! Both directions of the table are *dense arrays*: logical→physical indexed
//! by LPN, physical→logical indexed by flat physical page.  Every update,
//! lookup, and GC reverse resolution is a single array access — no hashing
//! anywhere on the per-page path.
//!
//! ## Reader safety (concurrent engine)
//!
//! The API splits cleanly into `&self` readers ([`HostMappingTable::get`],
//! [`HostMappingTable::reverse`], [`HostMappingTable::mapped`], ...) and
//! `&mut self` writers ([`HostMappingTable::update`],
//! [`HostMappingTable::unmap`]): no interior mutability, no hidden caches on
//! the read path.  The table is `Send + Sync`, so under `NOFTL_THREADS` any
//! number of concurrent readers may share it behind an `RwLock` while device
//! mutation stays single-writer — the concurrent storage engine keeps it
//! (inside the NoFTL backend) behind the backend lock, last in its lock
//! order.

use sim_utils::flatmap::FlatMap;

/// Sentinel meaning "unmapped".
const UNMAPPED: u64 = u64::MAX;

/// Dense logical→physical page table with an equally dense reverse table,
/// held entirely in host memory.
#[derive(Debug, Clone)]
pub struct HostMappingTable {
    forward: Vec<u64>,
    /// Physical flat page → LPN, indexed directly by physical page.
    reverse: FlatMap,
}

impl HostMappingTable {
    /// Create a table for `logical_pages` pages, all unmapped.  The reverse
    /// table grows on demand; use [`Self::with_physical_pages`] when the
    /// physical page count is known up front.
    pub fn new(logical_pages: u64) -> Self {
        Self {
            forward: vec![UNMAPPED; logical_pages as usize],
            reverse: FlatMap::new(),
        }
    }

    /// Create a table with the reverse direction pre-sized for
    /// `physical_pages` flat page indices (no growth during operation).
    pub fn with_physical_pages(logical_pages: u64, physical_pages: u64) -> Self {
        Self {
            forward: vec![UNMAPPED; logical_pages as usize],
            reverse: FlatMap::with_index_capacity(physical_pages as usize),
        }
    }

    /// Number of logical pages covered.
    pub fn logical_pages(&self) -> u64 {
        self.forward.len() as u64
    }

    /// Resolve `lpn` to its physical page (flat index), if mapped.
    #[inline]
    pub fn get(&self, lpn: u64) -> Option<u64> {
        let v = *self.forward.get(lpn as usize)?;
        (v != UNMAPPED).then_some(v)
    }

    /// Which logical page lives at physical page `ppa`, if any.
    #[inline]
    pub fn reverse(&self, ppa: u64) -> Option<u64> {
        self.reverse.get(ppa)
    }

    /// Map `lpn` → `ppa`; returns the superseded physical page, if any.
    #[inline]
    pub fn update(&mut self, lpn: u64, ppa: u64) -> Option<u64> {
        let old = core::mem::replace(&mut self.forward[lpn as usize], ppa);
        if old != UNMAPPED {
            self.reverse.remove(old);
        }
        self.reverse.insert(ppa, lpn);
        (old != UNMAPPED).then_some(old)
    }

    /// Drop the mapping of `lpn`; returns its physical page, if any.
    #[inline]
    pub fn unmap(&mut self, lpn: u64) -> Option<u64> {
        let old = core::mem::replace(&mut self.forward[lpn as usize], UNMAPPED);
        if old == UNMAPPED {
            return None;
        }
        self.reverse.remove(old);
        Some(old)
    }

    /// Number of currently mapped pages.
    pub fn mapped(&self) -> usize {
        self.reverse.len()
    }

    /// Host-memory footprint of the table in bytes — the resource argument of
    /// §3.1 (a 10 GB drive at 4 KiB pages needs ~20 MB of host RAM for the
    /// forward direction, trivial for a DBMS host, impossible for many SSD
    /// controllers).  Both directions are flat `u64` arrays now, so the
    /// footprint is exact rather than a hash-table estimate.
    pub fn memory_bytes(&self) -> usize {
        self.forward.len() * 8 + self.reverse.memory_bytes()
    }
}

// Reader-safety invariant: the table has no interior mutability, so shared
// references are safe across threads (concurrent readers under an RwLock).
const _: () = {
    fn assert_send_sync<T: Send + Sync>() {}
    let _ = assert_send_sync::<HostMappingTable>;
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_unmap_roundtrip() {
        let mut t = HostMappingTable::new(8);
        assert_eq!(t.get(2), None);
        assert_eq!(t.update(2, 77), None);
        assert_eq!(t.get(2), Some(77));
        assert_eq!(t.reverse(77), Some(2));
        assert_eq!(t.update(2, 99), Some(77));
        assert_eq!(t.reverse(77), None);
        assert_eq!(t.unmap(2), Some(99));
        assert_eq!(t.unmap(2), None);
        assert_eq!(t.mapped(), 0);
    }

    #[test]
    fn memory_footprint_scales_with_pages() {
        let small = HostMappingTable::new(1_000);
        let large = HostMappingTable::new(100_000);
        assert!(large.memory_bytes() > small.memory_bytes());
        // ~8 bytes per logical page for the dense array.
        assert!(large.memory_bytes() >= 800_000);
    }

    #[test]
    fn presized_reverse_behaves_identically() {
        let mut lazy = HostMappingTable::new(64);
        let mut sized = HostMappingTable::with_physical_pages(64, 256);
        for lpn in 0..64u64 {
            assert_eq!(lazy.update(lpn, 200 + lpn), sized.update(lpn, 200 + lpn));
        }
        for ppa in 0..256u64 {
            assert_eq!(lazy.reverse(ppa), sized.reverse(ppa));
        }
        assert_eq!(lazy.mapped(), sized.mapped());
    }

    #[test]
    fn concurrent_readers_share_the_table_under_a_single_writer() {
        // The NOFTL_THREADS reader-safety contract: N reader threads resolve
        // translations through a shared RwLock while one writer remaps pages
        // between read bursts.  Readers must only ever observe fully-applied
        // states (forward and reverse agree), never a torn update.
        use parking_lot::RwLock;
        use std::sync::Arc;

        let mut t = HostMappingTable::with_physical_pages(256, 1024);
        for lpn in 0..256u64 {
            t.update(lpn, lpn + 512);
        }
        let table = Arc::new(RwLock::new(t));
        let readers: Vec<_> = (0..4)
            .map(|r| {
                let table = Arc::clone(&table);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        let lpn = (i * 31 + r) % 256;
                        let guard = table.read();
                        let ppa = guard.get(lpn).expect("always mapped");
                        assert_eq!(
                            guard.reverse(ppa),
                            Some(lpn),
                            "reader saw a torn forward/reverse pair"
                        );
                    }
                })
            })
            .collect();
        let writer = {
            let table = Arc::clone(&table);
            std::thread::spawn(move || {
                for i in 0..2_000u64 {
                    let lpn = (i * 17) % 256;
                    let mut guard = table.write();
                    // Relocate like GC would: bounce each page between its
                    // two (collision-free) physical homes, old reverse entry
                    // cleared, both sides updated under one write lock.
                    let cur = guard.get(lpn).expect("always mapped");
                    let fresh = if cur < 768 { lpn + 768 } else { lpn + 512 };
                    guard.update(lpn, fresh);
                }
            })
        };
        for h in readers {
            h.join().unwrap();
        }
        writer.join().unwrap();
        assert_eq!(table.read().mapped(), 256);
    }

    #[test]
    fn reverse_tracks_gc_style_relocation() {
        let mut t = HostMappingTable::new(16);
        t.update(5, 40);
        // GC moves the physical page: update must clear the stale reverse
        // entry so no physical page resolves to two LPNs.
        t.update(5, 41);
        assert_eq!(t.reverse(40), None);
        assert_eq!(t.reverse(41), Some(5));
        assert_eq!(t.mapped(), 1);
    }
}
