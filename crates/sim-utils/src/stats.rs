//! Running statistics and human-readable formatting helpers.

use serde::{Deserialize, Serialize};

/// Online mean / min / max / variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Running {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (0 if empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum observation (0 if empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// Format a large count with thousands separators (`16465930` → `"16 465 930"`),
/// matching the presentation style of the paper's Figure 3 table.
pub fn fmt_count(n: u64) -> String {
    let s = n.to_string();
    let bytes = s.as_bytes();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, b) in bytes.iter().enumerate() {
        if i > 0 && (bytes.len() - i).is_multiple_of(3) {
            out.push(' ');
        }
        out.push(*b as char);
    }
    out
}

/// Format a nanosecond duration in the most readable unit.
pub fn fmt_duration_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Format a byte count in binary units.
pub fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{:.2} {}", value, UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_basic() {
        let mut r = Running::new();
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            r.push(x);
        }
        assert_eq!(r.count(), 5);
        assert!((r.mean() - 3.0).abs() < 1e-12);
        assert!((r.variance() - 2.0).abs() < 1e-12);
        assert_eq!(r.min(), 1.0);
        assert_eq!(r.max(), 5.0);
    }

    #[test]
    fn running_empty() {
        let r = Running::new();
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.variance(), 0.0);
        assert_eq!(r.min(), 0.0);
        assert_eq!(r.max(), 0.0);
    }

    #[test]
    fn fmt_count_groups_digits() {
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1_000), "1 000");
        assert_eq!(fmt_count(16_465_930), "16 465 930");
        assert_eq!(fmt_count(129_317), "129 317");
    }

    #[test]
    fn fmt_duration_picks_unit() {
        assert_eq!(fmt_duration_ns(500), "500 ns");
        assert_eq!(fmt_duration_ns(1_500), "1.50 µs");
        assert_eq!(fmt_duration_ns(450_000), "450.00 µs");
        assert_eq!(fmt_duration_ns(80_000_000), "80.00 ms");
        assert_eq!(fmt_duration_ns(2_000_000_000), "2.00 s");
    }

    #[test]
    fn fmt_bytes_units() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(4096), "4.00 KiB");
        assert_eq!(fmt_bytes(10 * 1024 * 1024 * 1024), "10.00 GiB");
    }
}
