//! Dense, directly-indexed map/set primitives for simulation hot paths.
//!
//! The NoFTL argument (paper §3.1) is that the *host* can afford dense
//! per-page tables where an SSD controller cannot.  These containers are the
//! code form of that argument: an index-keyed map backed by a plain `Vec`
//! (one load, no hashing) and a bitset with a popcount-based iterator.  They
//! replace `HashMap`/`HashSet` on every per-page path of the stack — mapping
//! tables, GC reverse lookups, log directories, buffer-pool dirty tracking.

/// Sentinel marking an empty [`FlatMap`] slot.  Keys are array indices, so
/// `u64::MAX` can never be a stored *value*'s owner index in practice (device
/// page counts are far below it); values equal to the sentinel are rejected.
const EMPTY: u64 = u64::MAX;

/// A `u64 -> u64` map whose keys are small dense indices (logical or physical
/// page numbers).  Lookup/insert/remove are a single bounds-checked array
/// access.  Grows geometrically on insert beyond the current capacity, so it
/// can be built without knowing the index space up front.
#[derive(Debug, Clone, Default)]
pub struct FlatMap {
    slots: Vec<u64>,
    len: usize,
}

impl FlatMap {
    /// Empty map; grows on demand.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty map pre-sized for indices `0..capacity` (no growth on the hot
    /// path when the index space is known, e.g. `geometry.total_pages()`).
    pub fn with_index_capacity(capacity: usize) -> Self {
        Self {
            slots: vec![EMPTY; capacity],
            len: 0,
        }
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entry is present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Memory footprint of the backing storage in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.slots.len() * core::mem::size_of::<u64>()
    }

    /// Value stored at `index`, if any.
    #[inline]
    pub fn get(&self, index: u64) -> Option<u64> {
        match self.slots.get(index as usize) {
            Some(&v) if v != EMPTY => Some(v),
            _ => None,
        }
    }

    /// Whether `index` holds a value.
    #[inline]
    pub fn contains(&self, index: u64) -> bool {
        matches!(self.slots.get(index as usize), Some(&v) if v != EMPTY)
    }

    /// Store `value` at `index`, returning the previous value if one existed.
    #[inline]
    pub fn insert(&mut self, index: u64, value: u64) -> Option<u64> {
        debug_assert!(value != EMPTY, "FlatMap value space excludes u64::MAX");
        let i = index as usize;
        if i >= self.slots.len() {
            let target = (i + 1).max(self.slots.len() * 2).max(16);
            self.slots.resize(target, EMPTY);
        }
        let old = core::mem::replace(&mut self.slots[i], value);
        if old == EMPTY {
            self.len += 1;
            None
        } else {
            Some(old)
        }
    }

    /// Remove and return the value at `index`, if any.
    #[inline]
    pub fn remove(&mut self, index: u64) -> Option<u64> {
        match self.slots.get_mut(index as usize) {
            Some(slot) if *slot != EMPTY => {
                self.len -= 1;
                Some(core::mem::replace(slot, EMPTY))
            }
            _ => None,
        }
    }

    /// Iterate over `(index, value)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != EMPTY)
            .map(|(i, &v)| (i as u64, v))
    }
}

/// A growable bitset over dense indices with O(1) membership updates and a
/// word-skipping iterator — backs the buffer pool's dirty-page tracking and
/// FASTer's second-chance set.
#[derive(Debug, Clone, Default)]
pub struct FlatBitSet {
    words: Vec<u64>,
    len: usize,
}

impl FlatBitSet {
    /// Empty set; grows on demand.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty set pre-sized for indices `0..capacity`.
    pub fn with_index_capacity(capacity: usize) -> Self {
        Self {
            words: vec![0; capacity.div_ceil(64)],
            len: 0,
        }
    }

    /// Number of set bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `index` is in the set.
    #[inline]
    pub fn contains(&self, index: u64) -> bool {
        match self.words.get(index as usize / 64) {
            Some(w) => w & (1u64 << (index % 64)) != 0,
            None => false,
        }
    }

    /// Add `index`; returns `true` if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, index: u64) -> bool {
        let word = index as usize / 64;
        if word >= self.words.len() {
            let target = (word + 1).max(self.words.len() * 2).max(4);
            self.words.resize(target, 0);
        }
        let mask = 1u64 << (index % 64);
        let newly = self.words[word] & mask == 0;
        self.words[word] |= mask;
        self.len += usize::from(newly);
        newly
    }

    /// Remove `index`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, index: u64) -> bool {
        match self.words.get_mut(index as usize / 64) {
            Some(w) => {
                let mask = 1u64 << (index % 64);
                let was = *w & mask != 0;
                *w &= !mask;
                self.len -= usize::from(was);
                was
            }
            None => false,
        }
    }

    /// Clear every bit (keeps the allocation).
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Iterate over set indices in ascending order, skipping zero words.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.words
            .iter()
            .enumerate()
            .filter(|(_, &w)| w != 0)
            .flat_map(|(wi, &w)| {
                let base = wi as u64 * 64;
                BitIter { word: w }.map(move |b| base + b)
            })
    }
}

struct BitIter {
    word: u64,
}

impl Iterator for BitIter {
    type Item = u64;

    #[inline]
    fn next(&mut self) -> Option<u64> {
        if self.word == 0 {
            return None;
        }
        let bit = self.word.trailing_zeros() as u64;
        self.word &= self.word - 1;
        Some(bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;
    use std::collections::{HashMap, HashSet};

    #[test]
    fn flat_map_basics() {
        let mut m = FlatMap::new();
        assert_eq!(m.get(3), None);
        assert_eq!(m.insert(3, 30), None);
        assert_eq!(m.insert(3, 31), Some(30));
        assert_eq!(m.get(3), Some(31));
        assert!(m.contains(3));
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove(3), Some(31));
        assert_eq!(m.remove(3), None);
        assert!(m.is_empty());
    }

    #[test]
    fn flat_map_grows_past_capacity() {
        let mut m = FlatMap::with_index_capacity(4);
        m.insert(2, 1);
        m.insert(1000, 2);
        assert_eq!(m.get(1000), Some(2));
        assert_eq!(m.get(999), None);
        assert_eq!(m.len(), 2);
        let pairs: Vec<_> = m.iter().collect();
        assert_eq!(pairs, vec![(2, 1), (1000, 2)]);
    }

    #[test]
    fn flat_map_matches_hashmap_model() {
        let mut rng = SimRng::new(42);
        let mut flat = FlatMap::new();
        let mut model: HashMap<u64, u64> = HashMap::new();
        for _ in 0..20_000 {
            let k = rng.range(0, 512);
            match rng.range(0, 3) {
                0 => assert_eq!(flat.insert(k, k + 1), model.insert(k, k + 1)),
                1 => assert_eq!(flat.remove(k), model.remove(&k)),
                _ => assert_eq!(flat.get(k), model.get(&k).copied()),
            }
            assert_eq!(flat.len(), model.len());
        }
    }

    #[test]
    fn bitset_basics() {
        let mut s = FlatBitSet::with_index_capacity(128);
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.contains(5));
        assert!(s.insert(64));
        assert!(s.insert(127));
        assert_eq!(s.len(), 3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![5, 64, 127]);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.len(), 2);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(5));
    }

    #[test]
    fn bitset_grows_and_matches_hashset_model() {
        let mut rng = SimRng::new(7);
        let mut set = FlatBitSet::new();
        let mut model: HashSet<u64> = HashSet::new();
        for _ in 0..20_000 {
            let k = rng.range(0, 1000);
            match rng.range(0, 3) {
                0 => assert_eq!(set.insert(k), model.insert(k)),
                1 => assert_eq!(set.remove(k), model.remove(&k)),
                _ => assert_eq!(set.contains(k), model.contains(&k)),
            }
            assert_eq!(set.len(), model.len());
        }
        let mut sorted: Vec<u64> = model.into_iter().collect();
        sorted.sort_unstable();
        assert_eq!(set.iter().collect::<Vec<_>>(), sorted);
    }
}
