//! Latency histograms with percentile queries.
//!
//! The paper's motivation leans on the *distribution* of FTL latencies (0.45 ms
//! average 4 KB random writes with 80 ms outliers), so the harness reports
//! percentiles, not just means.  [`Histogram`] is a log-linear bucketed
//! histogram: cheap to update, accurate to a few percent at the tails, and
//! mergeable across simulation actors.

use serde::{Deserialize, Serialize};

/// Number of linear sub-buckets per power-of-two bucket.
const SUB_BUCKETS: usize = 16;
/// Number of power-of-two buckets (covers values up to 2^40 ns ≈ 18 minutes).
const POW_BUCKETS: usize = 41;

/// A log-linear histogram of non-negative `u64` samples (typically latencies
/// in nanoseconds).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; SUB_BUCKETS * POW_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_index(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        let pow = 63 - value.leading_zeros() as usize; // floor(log2(value))
        let base_pow = (SUB_BUCKETS as u64).trailing_zeros() as usize; // 4
        let pow_bucket = (pow - base_pow + 1).min(POW_BUCKETS - 1);
        let shift = pow - base_pow;
        // `value >> shift` lands in [SUB_BUCKETS, 2*SUB_BUCKETS).
        let sub = ((value >> shift) as usize) - SUB_BUCKETS;
        (pow_bucket * SUB_BUCKETS + sub).min(SUB_BUCKETS * POW_BUCKETS - 1)
    }

    fn bucket_low(index: usize) -> u64 {
        let pow_bucket = index / SUB_BUCKETS;
        let sub = (index % SUB_BUCKETS) as u64;
        if pow_bucket == 0 {
            return sub;
        }
        let shift = pow_bucket - 1;
        (SUB_BUCKETS as u64 + sub) << shift
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Record `n` identical samples.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[Self::bucket_index(value)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the recorded samples (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Largest value mapping into bucket `index` (inclusive).
    fn bucket_high(index: usize) -> u64 {
        if index + 1 >= SUB_BUCKETS * POW_BUCKETS {
            return u64::MAX;
        }
        Self::bucket_low(index + 1) - 1
    }

    /// Approximate `q`-quantile (e.g. `0.5`, `0.99`).  Returns the *upper*
    /// bound of the bucket containing the quantile (clamped to the observed
    /// min/max), so a reported tail latency is never below the true sample —
    /// an SLO report errs toward overstating, by at most one sub-bucket
    /// (1/16 ≈ 6.25% relative).  0 if empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((self.count as f64) * q).ceil() as u64;
        let target = target.max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_high(i).max(self.min).min(self.max);
            }
        }
        self.max
    }

    /// Batch quantile query: one value per requested quantile, in the order
    /// given (e.g. `&[0.5, 0.99, 0.999]` → p50/p99/p999).
    pub fn percentiles(&self, qs: &[f64]) -> Vec<u64> {
        qs.iter().map(|&q| self.percentile(q)).collect()
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Reset all recorded samples.
    pub fn clear(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn single_value() {
        let mut h = Histogram::new();
        h.record(42);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 42);
        assert_eq!(h.max(), 42);
        assert_eq!(h.percentile(0.5), 42);
        assert!((h.mean() - 42.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = Histogram::new();
        for i in 0..10_000u64 {
            h.record(i * 100);
        }
        let p50 = h.percentile(0.50);
        let p90 = h.percentile(0.90);
        let p99 = h.percentile(0.99);
        assert!(p50 <= p90 && p90 <= p99);
        // p50 of uniform 0..1M should be around 500k, allow log-bucket error.
        assert!(
            (400_000..700_000).contains(&p50),
            "p50 {p50} outside expected band"
        );
    }

    #[test]
    fn outliers_visible_in_p999() {
        let mut h = Histogram::new();
        // 0.45ms typical writes with rare 80ms outliers (the paper's example).
        for i in 0..10_000u64 {
            if i % 1000 == 0 {
                h.record(80_000_000);
            } else {
                h.record(450_000);
            }
        }
        assert!(h.percentile(0.5) < 1_000_000);
        assert!(h.percentile(0.9995) > 40_000_000);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for i in 0..100 {
            a.record(i);
            b.record(1000 + i);
        }
        a.merge(&b);
        assert_eq!(a.count(), 200);
        assert!(a.max() >= 1099);
        assert_eq!(a.min(), 0);
    }

    #[test]
    fn record_n_equivalent_to_loop() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record_n(777, 50);
        for _ in 0..50 {
            b.record(777);
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(a.percentile(0.5), b.percentile(0.5));
        assert!((a.mean() - b.mean()).abs() < 1e-9);
    }

    #[test]
    fn clear_resets() {
        let mut h = Histogram::new();
        h.record(5);
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn percentile_is_bucket_upper_bound() {
        let mut h = Histogram::new();
        for _ in 0..1000 {
            h.record(450_000);
        }
        h.record(80_000_000); // lift max above the p50 bucket so no clamp
        let p50 = h.percentile(0.5);
        assert!(p50 > 450_000, "upper bound sits strictly above the sample");
        assert!(
            p50 <= 450_000 + 450_000 / 16 + 1,
            "within one sub-bucket (6.25%): got {p50}"
        );
    }

    #[test]
    fn tail_percentiles_err_from_above_within_one_sub_bucket() {
        let mut h = Histogram::new();
        // 0.2% outliers at 80ms: the 0.999 quantile lands in the outlier
        // bucket while p50/p99 stay on the 0.45ms mass.
        for i in 0..10_000u64 {
            if i % 500 == 0 {
                h.record(80_000_000);
            } else {
                h.record(450_000);
            }
        }
        let p = h.percentiles(&[0.5, 0.99, 0.999]);
        assert_eq!(p.len(), 3);
        assert!(p[0] >= 450_000 && p[0] <= 450_000 + 450_000 / 16 + 1);
        assert!(p[1] >= 450_000 && p[1] <= 450_000 + 450_000 / 16 + 1);
        assert!(
            p[2] >= 80_000_000,
            "p999 never understates the tail: got {}",
            p[2]
        );
        assert!(
            p[2] <= 80_000_000 + 80_000_000 / 16 + 1,
            "p999 within one sub-bucket above the true value: got {}",
            p[2]
        );
        assert!(p[0] <= p[1] && p[1] <= p[2]);
    }

    #[test]
    fn bucket_index_monotone_nondecreasing() {
        let mut last = 0usize;
        for v in 0..100_000u64 {
            let idx = Histogram::bucket_index(v);
            assert!(idx >= last, "bucket index decreased at {v}");
            last = idx;
        }
    }
}
