//! Deterministic pseudo-random number generators.
//!
//! Workload generation and error injection must be reproducible across runs
//! and across crate-version upgrades, so the stack uses its own small PRNGs:
//! [`SplitMix64`] for seeding and quick draws, and [`SimRng`] (xoshiro256**)
//! as the general-purpose generator.  Both implement the same convenience
//! surface (`next_u64`, `next_f64`, `range`, `bool_with_prob`, `shuffle`).

/// SplitMix64: a tiny, high-quality 64-bit generator used mostly to expand a
/// single user seed into the larger state of [`SimRng`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from an arbitrary seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256** — the workhorse generator for workload drivers, error
/// injection and shuffles.  Deterministic for a given seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Create a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for v in &mut s {
            *v = sm.next_u64();
        }
        // Avoid the all-zero state, which is a fixed point of xoshiro.
        if s.iter().all(|&x| x == 0) {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = Self::rotl(self.s[1].wrapping_mul(5), 7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = Self::rotl(self.s[3], 45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`.  Panics if `lo >= hi`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        // Lemire-style bounded draw with rejection of the biased zone.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(span as u128);
        let mut l = m as u64;
        if l < span {
            let t = span.wrapping_neg() % span;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(span as u128);
                l = m as u64;
            }
        }
        lo + (m >> 64) as u64
    }

    /// Uniform `usize` in `[lo, hi)`.
    #[inline]
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range(lo as u64, hi as u64) as usize
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn bool_with_prob(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose on empty slice");
        &items[self.range_usize(0, items.len())]
    }

    /// Fisher–Yates shuffle, in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        let n = items.len();
        if n < 2 {
            return;
        }
        for i in (1..n).rev() {
            let j = self.range_usize(0, i + 1);
            items.swap(i, j);
        }
    }

    /// Fork a statistically independent child generator (for per-client or
    /// per-die streams) without consuming much state of the parent.
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64() ^ 0xA5A5_5A5A_DEAD_BEEF)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn simrng_is_deterministic_and_seed_sensitive() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        let mut c = SimRng::new(8);
        let seq_a: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let seq_b: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let seq_c: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(seq_a, seq_b);
        assert_ne!(seq_a, seq_c);
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = SimRng::new(1);
        for _ in 0..10_000 {
            let v = rng.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = SimRng::new(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.range(0, 8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SimRng::new(5);
        for _ in 0..10_000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_with_prob_extremes() {
        let mut rng = SimRng::new(9);
        for _ in 0..100 {
            assert!(!rng.bool_with_prob(0.0));
            assert!(rng.bool_with_prob(1.0));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(11);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn fork_produces_distinct_stream() {
        let mut parent = SimRng::new(21);
        let mut child = parent.fork();
        let p: Vec<u64> = (0..16).map(|_| parent.next_u64()).collect();
        let c: Vec<u64> = (0..16).map(|_| child.next_u64()).collect();
        assert_ne!(p, c);
    }

    #[test]
    fn uniformity_rough_check() {
        // Mean of uniform [0,1000) draws should be close to 500.
        let mut rng = SimRng::new(77);
        let n = 100_000u64;
        let sum: u64 = (0..n).map(|_| rng.range(0, 1000)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 499.5).abs() < 5.0, "mean {mean} too far from 499.5");
    }
}
