//! # sim-utils
//!
//! Shared utilities for the NoFTL simulation stack:
//!
//! * [`rng`] — deterministic, seedable pseudo-random number generators
//!   (SplitMix64 and xoshiro256**) so every experiment is reproducible
//!   bit-for-bit regardless of external crate versions.
//! * [`dist`] — the skewed distributions used by the TPC workload drivers
//!   (Zipf, TPC-C NURand, uniform ranges).
//! * [`histogram`] — latency histograms with percentile queries, used to
//!   report response-time distributions and FTL outliers.
//! * [`stats`] — small running-statistics helpers (mean / min / max /
//!   variance) and human-readable formatting of counts, bytes and durations.
//! * [`time`] — the simulated-time base types (nanosecond ticks).
//! * [`flatmap`] — dense directly-indexed map/bitset for per-page hot paths.
//! * [`intmap`] — open-addressing integer hash map (sparse key spaces).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dist;
pub mod flatmap;
pub mod histogram;
pub mod intmap;
pub mod rng;
pub mod stats;
pub mod time;

pub use dist::{NuRand, Zipf};
pub use flatmap::{FlatBitSet, FlatMap};
pub use histogram::Histogram;
pub use intmap::IntMap;
pub use rng::{SimRng, SplitMix64};
pub use stats::{fmt_count, fmt_duration_ns, Running};
pub use time::{SimDuration, SimInstant, MICROS, MILLIS, SECONDS};
