//! Skewed distributions used by the TPC workload drivers.
//!
//! * [`Zipf`] — Zipfian popularity distribution (used by the FIO-style
//!   synthetic generator and the TPC-E account-popularity model).
//! * [`NuRand`] — TPC-C's non-uniform random function `NURand(A, x, y)`,
//!   which drives customer and item selection skew.

use crate::rng::SimRng;

/// Zipfian distribution over `{0, 1, ..., n-1}` with exponent `theta`.
///
/// Uses the classic Gray et al. "quick and dirty" method: draws are O(1)
/// after an O(n)-free setup of two constants (no table of size `n`).
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipf {
    /// Create a Zipf distribution over `n` items with skew `theta`
    /// (`0.0` = uniform-ish, `0.99` = the YCSB default heavy skew).
    ///
    /// Panics if `n == 0` or `theta >= 1.0` (the harmonic form requires
    /// `theta < 1`).
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "Zipf over empty domain");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0,1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Self {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct sum; only called at construction.  Cap the exact sum at a
        // million terms and extrapolate with the integral approximation for
        // larger domains so construction stays cheap.
        const EXACT_CAP: u64 = 1_000_000;
        let exact_n = n.min(EXACT_CAP);
        let mut sum = 0.0;
        for i in 1..=exact_n {
            sum += 1.0 / (i as f64).powf(theta);
        }
        if n > EXACT_CAP {
            // integral of x^-theta from EXACT_CAP to n
            let a = EXACT_CAP as f64;
            let b = n as f64;
            sum += (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta);
        }
        sum
    }

    /// Number of items in the domain.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draw a value in `[0, n)`; smaller values are (much) more popular.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let u = rng.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.n - 1)
    }

    /// The `zeta(2, theta)` constant (exposed for tests).
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

/// TPC-C `NURand(A, x, y)` non-uniform random function.
///
/// `NURand(A, x, y) = (((random(0,A) | random(x,y)) + C) % (y - x + 1)) + x`
#[derive(Debug, Clone, Copy)]
pub struct NuRand {
    a: u64,
    c: u64,
    x: u64,
    y: u64,
}

impl NuRand {
    /// Create a NURand generator with constant span `A`, output range
    /// `[x, y]` and run constant `c` (the per-run `C` from the TPC-C spec).
    pub fn new(a: u64, x: u64, y: u64, c: u64) -> Self {
        assert!(x <= y, "invalid NURand range");
        Self { a, c, x, y }
    }

    /// Standard constants for customer-id selection (A = 1023).
    pub fn customer_id(c: u64) -> Self {
        Self::new(1023, 1, 3000, c)
    }

    /// Standard constants for item-id selection (A = 8191).
    pub fn item_id(c: u64) -> Self {
        Self::new(8191, 1, 100_000, c)
    }

    /// Standard constants for customer-last-name selection (A = 255).
    pub fn last_name(c: u64) -> Self {
        Self::new(255, 0, 999, c)
    }

    /// Draw a value in `[x, y]`.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let r1 = rng.range(0, self.a + 1);
        let r2 = rng.range(self.x, self.y + 1);
        (((r1 | r2) + self.c) % (self.y - self.x + 1)) + self.x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_bounds() {
        let z = Zipf::new(1000, 0.99);
        let mut rng = SimRng::new(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 1000);
        }
    }

    #[test]
    fn zipf_is_skewed() {
        let z = Zipf::new(1000, 0.99);
        let mut rng = SimRng::new(2);
        let mut hits_top10 = 0u32;
        let n = 20_000;
        for _ in 0..n {
            if z.sample(&mut rng) < 10 {
                hits_top10 += 1;
            }
        }
        // With theta=0.99 over 1000 items, the top-10 should capture a large
        // fraction of draws (way above the uniform 1%).
        assert!(
            hits_top10 as f64 / n as f64 > 0.25,
            "top-10 fraction {} too small",
            hits_top10 as f64 / n as f64
        );
    }

    #[test]
    fn zipf_low_theta_close_to_uniform() {
        let z = Zipf::new(100, 0.01);
        let mut rng = SimRng::new(3);
        let mut hits_top10 = 0u32;
        let n = 50_000;
        for _ in 0..n {
            if z.sample(&mut rng) < 10 {
                hits_top10 += 1;
            }
        }
        let frac = hits_top10 as f64 / n as f64;
        assert!(frac < 0.25, "near-uniform zipf too skewed: {frac}");
    }

    #[test]
    #[should_panic]
    fn zipf_rejects_empty_domain() {
        let _ = Zipf::new(0, 0.5);
    }

    #[test]
    fn nurand_bounds() {
        let nu = NuRand::customer_id(123);
        let mut rng = SimRng::new(4);
        for _ in 0..10_000 {
            let v = nu.sample(&mut rng);
            assert!((1..=3000).contains(&v));
        }
    }

    #[test]
    fn nurand_item_bounds() {
        let nu = NuRand::item_id(77);
        let mut rng = SimRng::new(5);
        for _ in 0..10_000 {
            let v = nu.sample(&mut rng);
            assert!((1..=100_000).contains(&v));
        }
    }

    #[test]
    fn nurand_is_nonuniform() {
        // The OR with random(0,A) makes small bit patterns more likely; check
        // the histogram is visibly non-flat.
        let nu = NuRand::new(255, 0, 999, 0);
        let mut rng = SimRng::new(6);
        let mut counts = vec![0u32; 1000];
        for _ in 0..200_000 {
            counts[nu.sample(&mut rng) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max > min * 2.0, "distribution unexpectedly flat");
    }
}
