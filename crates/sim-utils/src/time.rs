//! Simulated-time base types.
//!
//! The entire NoFTL stack runs on a *virtual* clock measured in nanoseconds.
//! Using plain `u64` nanosecond counts (instead of `std::time`) keeps the
//! simulation deterministic and independent of host speed, and makes the
//! arithmetic in the device schedulers trivial.

/// A point in simulated time, in nanoseconds since simulation start.
pub type SimInstant = u64;

/// A span of simulated time, in nanoseconds.
pub type SimDuration = u64;

/// Nanoseconds per microsecond.
pub const MICROS: u64 = 1_000;

/// Nanoseconds per millisecond.
pub const MILLIS: u64 = 1_000_000;

/// Nanoseconds per second.
pub const SECONDS: u64 = 1_000_000_000;

/// Convert a microsecond count into a [`SimDuration`].
#[inline]
pub const fn micros(us: u64) -> SimDuration {
    us * MICROS
}

/// Convert a millisecond count into a [`SimDuration`].
#[inline]
pub const fn millis(ms: u64) -> SimDuration {
    ms * MILLIS
}

/// Convert a second count into a [`SimDuration`].
#[inline]
pub const fn seconds(s: u64) -> SimDuration {
    s * SECONDS
}

/// Convert a [`SimDuration`] to fractional seconds (for reporting only).
#[inline]
pub fn to_secs_f64(d: SimDuration) -> f64 {
    d as f64 / SECONDS as f64
}

/// Convert a [`SimDuration`] to fractional milliseconds (for reporting only).
#[inline]
pub fn to_millis_f64(d: SimDuration) -> f64 {
    d as f64 / MILLIS as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        assert_eq!(micros(1), 1_000);
        assert_eq!(millis(1), 1_000_000);
        assert_eq!(seconds(1), 1_000_000_000);
        assert_eq!(micros(1_000), millis(1));
        assert_eq!(millis(1_000), seconds(1));
    }

    #[test]
    fn float_conversions() {
        assert!((to_secs_f64(seconds(2)) - 2.0).abs() < 1e-12);
        assert!((to_millis_f64(micros(1500)) - 1.5).abs() < 1e-12);
    }
}
