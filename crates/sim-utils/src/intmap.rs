//! Open-addressing integer hash map for hot paths with *sparse* key spaces.
//!
//! Where [`crate::flatmap::FlatMap`] covers dense index keys, `IntMap` covers
//! keys too sparse to index directly (buffer-pool page ids over a huge
//! address space, LRU directory entries).  It is a linear-probing table with
//! Fibonacci hashing, backward-shift deletion (no tombstones) and a load
//! factor capped at 1/2 — roughly an FxHash map without the dependency, and
//! several times faster than `std`'s SipHash `HashMap` for integer keys.

const EMPTY: u64 = u64::MAX;

/// Multiplicative (Fibonacci) hash: spreads consecutive integers across the
/// table while staying a single multiply.
#[inline]
fn spread(key: u64) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// A `u64 -> u64` open-addressing hash map.  Keys must not be `u64::MAX`
/// (used as the empty sentinel); page ids and LPNs always satisfy this.
#[derive(Debug, Clone)]
pub struct IntMap {
    keys: Vec<u64>,
    vals: Vec<u64>,
    len: usize,
    shift: u32,
}

impl Default for IntMap {
    fn default() -> Self {
        Self::with_capacity(8)
    }
}

impl IntMap {
    /// Empty map with default capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty map able to hold `capacity` entries before resizing.
    pub fn with_capacity(capacity: usize) -> Self {
        let slots = (capacity.max(4) * 2).next_power_of_two();
        Self {
            keys: vec![EMPTY; slots],
            vals: vec![0; slots],
            len: 0,
            shift: 64 - slots.trailing_zeros(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Memory footprint of the backing storage in bytes.
    pub fn memory_bytes(&self) -> usize {
        (self.keys.len() + self.vals.len()) * core::mem::size_of::<u64>()
    }

    #[inline]
    fn mask(&self) -> usize {
        self.keys.len() - 1
    }

    #[inline]
    fn ideal_slot(&self, key: u64) -> usize {
        (spread(key) >> self.shift) as usize
    }

    /// Value for `key`, if present.  The sentinel key `u64::MAX` is never
    /// stored, so querying it is always `None` (the EMPTY check runs first,
    /// which also keeps that true in release builds).
    #[inline]
    pub fn get(&self, key: u64) -> Option<u64> {
        let mask = self.mask();
        let mut i = self.ideal_slot(key);
        loop {
            let k = self.keys[i];
            if k == EMPTY {
                return None;
            }
            if k == key {
                return Some(self.vals[i]);
            }
            i = (i + 1) & mask;
        }
    }

    /// Whether `key` is present.
    #[inline]
    pub fn contains_key(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Insert `key -> value`; returns the previous value if the key existed.
    #[inline]
    pub fn insert(&mut self, key: u64, value: u64) -> Option<u64> {
        debug_assert!(key != EMPTY, "IntMap key space excludes u64::MAX");
        if (self.len + 1) * 2 > self.keys.len() {
            self.grow();
        }
        let mask = self.mask();
        let mut i = self.ideal_slot(key);
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(core::mem::replace(&mut self.vals[i], value));
            }
            if k == EMPTY {
                self.keys[i] = key;
                self.vals[i] = value;
                self.len += 1;
                return None;
            }
            i = (i + 1) & mask;
        }
    }

    /// Remove `key`, returning its value if present.  Uses backward-shift
    /// deletion so probe chains stay dense (no tombstones accumulate).
    /// The sentinel key `u64::MAX` is never stored, so removing it is a
    /// no-op returning `None` (the EMPTY check in the probe loop covers it).
    #[inline]
    pub fn remove(&mut self, key: u64) -> Option<u64> {
        let mask = self.mask();
        let mut i = self.ideal_slot(key);
        loop {
            let k = self.keys[i];
            if k == EMPTY {
                return None;
            }
            if k == key {
                break;
            }
            i = (i + 1) & mask;
        }
        let value = self.vals[i];
        // Backward shift: pull successors whose ideal slot precedes the hole.
        let mut hole = i;
        let mut j = i;
        loop {
            j = (j + 1) & mask;
            let k = self.keys[j];
            if k == EMPTY {
                break;
            }
            let ideal = self.ideal_slot(k);
            // Move k into the hole unless its ideal position lies strictly
            // inside the cyclic interval (hole, j].
            let in_interval = if hole <= j {
                ideal > hole && ideal <= j
            } else {
                ideal > hole || ideal <= j
            };
            if !in_interval {
                self.keys[hole] = k;
                self.vals[hole] = self.vals[j];
                hole = j;
            }
        }
        self.keys[hole] = EMPTY;
        self.len -= 1;
        Some(value)
    }

    /// Remove every entry (keeps the allocation).
    pub fn clear(&mut self) {
        self.keys.fill(EMPTY);
        self.len = 0;
    }

    /// Iterate over `(key, value)` pairs in table order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.keys
            .iter()
            .zip(self.vals.iter())
            .filter(|(&k, _)| k != EMPTY)
            .map(|(&k, &v)| (k, v))
    }

    fn grow(&mut self) {
        let new_slots = self.keys.len() * 2;
        let old_keys = core::mem::replace(&mut self.keys, vec![EMPTY; new_slots]);
        let old_vals = core::mem::take(&mut self.vals);
        self.vals = vec![0; new_slots];
        self.shift = 64 - new_slots.trailing_zeros();
        self.len = 0;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != EMPTY {
                self.insert(k, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;
    use std::collections::HashMap;

    #[test]
    fn sentinel_key_is_always_absent() {
        let mut m = IntMap::new();
        assert_eq!(m.get(u64::MAX), None);
        assert!(!m.contains_key(u64::MAX));
        assert_eq!(m.remove(u64::MAX), None);
        m.insert(0, 7); // occupy a slot; the sentinel must still miss
        assert_eq!(m.get(u64::MAX), None);
    }

    #[test]
    fn basics() {
        let mut m = IntMap::new();
        assert_eq!(m.get(1), None);
        assert_eq!(m.insert(1, 10), None);
        assert_eq!(m.insert(1, 11), Some(10));
        assert_eq!(m.get(1), Some(11));
        assert_eq!(m.remove(1), Some(11));
        assert_eq!(m.remove(1), None);
        assert!(m.is_empty());
    }

    #[test]
    fn grows_beyond_initial_capacity() {
        let mut m = IntMap::with_capacity(4);
        for k in 0..1000u64 {
            m.insert(k, k * 3);
        }
        assert_eq!(m.len(), 1000);
        for k in 0..1000u64 {
            assert_eq!(m.get(k), Some(k * 3));
        }
    }

    #[test]
    fn colliding_keys_and_backshift_deletion() {
        // Keys chosen to collide in a small table exercise the backward-shift
        // path; the model comparison proves chains stay reachable.
        let mut m = IntMap::with_capacity(4);
        let keys: Vec<u64> = (0..32).map(|i| i * 8).collect();
        for &k in &keys {
            m.insert(k, k + 1);
        }
        for &k in keys.iter().step_by(2) {
            assert_eq!(m.remove(k), Some(k + 1));
        }
        for (i, &k) in keys.iter().enumerate() {
            let expect = (i % 2 == 1).then_some(k + 1);
            assert_eq!(m.get(k), expect);
        }
    }

    #[test]
    fn matches_hashmap_model_under_churn() {
        let mut rng = SimRng::new(1234);
        let mut fast = IntMap::new();
        let mut model: HashMap<u64, u64> = HashMap::new();
        for _ in 0..50_000 {
            let k = rng.range(0, 700);
            match rng.range(0, 4) {
                0 | 1 => assert_eq!(fast.insert(k, k ^ 0xABCD), model.insert(k, k ^ 0xABCD)),
                2 => assert_eq!(fast.remove(k), model.remove(&k)),
                _ => assert_eq!(fast.get(k), model.get(&k).copied()),
            }
            assert_eq!(fast.len(), model.len());
        }
        let mut a: Vec<_> = fast.iter().collect();
        let mut b: Vec<_> = model.into_iter().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}
