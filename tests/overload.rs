//! Overload robustness (PR 9): admission-control edge cases and open-loop
//! storms.
//!
//! The commit-admission window (`EngineConfig::admission`) promises three
//! things under any pressure:
//!
//! 1. **No committed-data loss** — a shed request fails *before* anything is
//!    begun or logged, so the engine's committed count always reconciles
//!    exactly with what clients observed succeeding.
//! 2. **Truthful stats** — `admitted + delayed + shed` as counted by the
//!    engine matches the client-side view call for call.
//! 3. **No livelock** — degenerate configurations (window of 0 or 1, a
//!    deadline shorter than one WAL group) shed or admit; they never hang
//!    the virtual clock.
//!
//! The storm proptest sweeps seeds x arrival rates x session topologies
//! (1 single-threaded session and 8 sessions over the sharded concurrent
//! engine — the `NOFTL_THREADS` shapes CI pins) and asserts all three.

use proptest::prelude::*;

use noftl::nand_flash::FlashGeometry;
use noftl::noftl_core::{NoFtl, NoFtlConfig};
use noftl::storage_engine::backend::NoFtlBackend;
use noftl::storage_engine::{
    AdmissionConfig, ClientSession, ConcurrentEngine, EngineConfig, EngineError, EngineOps,
    FlusherConfig, StorageEngine,
};
use noftl::workloads::{Arrivals, OpenLoopConfig, OpenLoopDriver, OpenLoopReport};

fn overload_backend() -> NoFtlBackend {
    let geometry = FlashGeometry::with_dies(4, 128, 64, 4096);
    let noftl = NoFtl::new(NoFtlConfig::new(geometry));
    NoFtlBackend::new(noftl)
}

fn overload_config(admission: AdmissionConfig) -> EngineConfig {
    let mut cfg = EngineConfig::new();
    cfg.buffer_frames = 128;
    cfg.log_pages = 64;
    let mut flushers = FlusherConfig::die_wise(4);
    flushers.async_depth = 1;
    cfg.flushers = flushers;
    cfg.wal_group_commit = 1;
    cfg.admission = Some(admission);
    cfg.slo_scheduling = true;
    cfg
}

/// An engine with one committed update transaction whose WAL force is the
/// single retained in-flight entry; returns the engine and the commit end.
fn engine_with_one_force(admission: AdmissionConfig) -> (StorageEngine, u64) {
    let mut engine = StorageEngine::new(Box::new(overload_backend()), overload_config(admission));
    engine.create_table("t");
    let txn = engine.begin();
    let (_, t) = engine.insert("t", txn, 0, &[7u8; 64]).expect("insert");
    let end = engine.commit(txn, t).expect("commit");
    assert!(end > 0, "the commit force takes real virtual time");
    (engine, end)
}

#[test]
fn window_of_one_admits_on_an_idle_engine() {
    // Window 1 on a fresh engine: nothing in flight, nothing dirty — the
    // arrival admits immediately (the livelock guard, not the deadline).
    let admission = AdmissionConfig {
        max_inflight_groups: 1,
        deadline_ns: 10,
        ..AdmissionConfig::default()
    };
    let mut engine = StorageEngine::new(Box::new(overload_backend()), overload_config(admission));
    let (_, at) = engine.begin_admitted(5).expect("idle engine admits");
    assert_eq!(at, 5);
    let stats = engine.admission_stats();
    assert_eq!(stats.admitted, 1);
    assert_eq!(stats.delayed, 0);
    assert_eq!(stats.shed, 0);
}

#[test]
fn window_of_one_waits_out_the_inflight_force() {
    // An arrival that lands while the previous commit's WAL force is still
    // in flight (its completion is after the arrival instant) waits until
    // the force clears, and the delay is counted.
    let admission = AdmissionConfig {
        max_inflight_groups: 1,
        deadline_ns: u64::MAX,
        ..AdmissionConfig::default()
    };
    let (mut engine, end) = engine_with_one_force(admission);
    let (_, at) = engine.begin_admitted(1).expect("bounded wait admits");
    assert!(
        at >= end,
        "admission waits for the in-flight force: admitted {at}, force ends {end}"
    );
    let stats = engine.admission_stats();
    assert_eq!(stats.admitted, 1);
    assert_eq!(stats.delayed, 1);
    assert!(stats.total_delay_ns >= end - 1);
}

#[test]
fn deadline_shorter_than_one_wal_group_sheds_with_typed_error() {
    // The force in flight takes longer than the whole admission deadline, so
    // the arrival cannot clear pressure in time: typed shed, nothing begun.
    let admission = AdmissionConfig {
        max_inflight_groups: 1,
        deadline_ns: 1,
        ..AdmissionConfig::default()
    };
    let (mut engine, end) = engine_with_one_force(admission);
    let committed_before = engine.committed();
    match engine.begin_admitted(1) {
        Err(EngineError::Overloaded {
            waited_ns,
            retry_after_ns,
        }) => {
            assert!(
                waited_ns >= end - 1,
                "the error reports the pressure ahead: {waited_ns}"
            );
            assert_eq!(
                retry_after_ns,
                waited_ns - 1,
                "the back-off hint is the pressure ahead minus the deadline budget"
            );
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    let stats = engine.admission_stats();
    assert_eq!(stats.shed, 1);
    assert_eq!(stats.admitted, 0);
    assert_eq!(
        engine.committed(),
        committed_before,
        "a shed begin leaves the durability ledger untouched"
    );
}

/// One open-loop storm leg: `sessions` sessions (1 = single-threaded
/// engine, >1 = sharded concurrent engine), returning the report plus the
/// committed count right after setup.
fn storm_leg(
    sessions: usize,
    seed: u64,
    mean_gap_ns: u64,
    deadline_ns: u64,
) -> (OpenLoopReport, u64) {
    let admission = AdmissionConfig {
        max_inflight_groups: 1,
        dirty_high_watermark: 0.25,
        deadline_ns,
    };
    let mut olcfg = OpenLoopConfig::new(
        150,
        Arrivals::Poisson {
            mean_interarrival_ns: mean_gap_ns,
        },
    );
    olcfg.rows = 300;
    olcfg.row_bytes = 64;
    olcfg.update_every = 2;
    olcfg.seed = seed;
    let driver = OpenLoopDriver::new(olcfg);
    if sessions <= 1 {
        let mut engine =
            StorageEngine::new(Box::new(overload_backend()), overload_config(admission));
        let t0 = driver.setup(&mut engine, 0).expect("setup");
        let setup_committed = engine.committed();
        let mut slots: [&mut dyn EngineOps; 1] = [&mut engine];
        (driver.run(&mut slots, t0).expect("run"), setup_committed)
    } else {
        let engine = ConcurrentEngine::new(
            Box::new(overload_backend()),
            overload_config(admission),
            sessions,
        );
        let mut handles: Vec<ClientSession> = (0..sessions).map(|_| engine.session()).collect();
        let t0 = driver.setup(&mut handles[0], 0).expect("setup");
        let setup_committed = handles[0].committed();
        let mut slots: Vec<&mut dyn EngineOps> = handles
            .iter_mut()
            .map(|s| s as &mut dyn EngineOps)
            .collect();
        (driver.run(&mut slots, t0).expect("run"), setup_committed)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Across seeds, arrival rates, deadlines and session topologies: no
    /// committed-data loss, and the engine's admission counters reconcile
    /// call for call with what the clients observed.
    #[test]
    fn open_loop_storms_never_lose_committed_data(
        seed in 0u64..1_000_000,
        mean_gap_ns in prop_oneof![Just(50_000u64), Just(150_000), Just(600_000)],
        deadline_ns in prop_oneof![Just(1u64), Just(500_000), Just(2_000_000)],
        sessions in prop_oneof![Just(1usize), Just(8)],
    ) {
        let (report, setup_committed) = storm_leg(sessions, seed, mean_gap_ns, deadline_ns);
        let total = 165; // 150 measured + 15 warmup
        let (admitted, delayed, shed) = report.observed;
        // Every offered request is admitted or shed — none vanish.
        prop_assert_eq!(admitted + shed, total);
        prop_assert!(delayed <= admitted);
        // Engine-side counters match the client-side observations exactly.
        prop_assert_eq!(report.admission.admitted, admitted);
        prop_assert_eq!(report.admission.delayed, delayed);
        prop_assert_eq!(report.admission.shed, shed);
        // Zero committed-transaction loss: the durability ledger is setup
        // plus exactly the admitted begins — shed requests never logged.
        prop_assert_eq!(report.committed, setup_committed + admitted);
        // The measured phase accounts for every request.
        prop_assert_eq!(report.completed + report.shed, report.requests);
    }
}
