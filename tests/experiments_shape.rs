//! Shape assertions for the paper's experiments: these integration tests run
//! miniature versions of the benchmark-harness experiments and assert the
//! *relative ordering* the paper reports (not absolute numbers).

use noftl::ftl::faster::{FasterConfig, FasterFtl};
use noftl::nand_flash::FlashGeometry;
use noftl::noftl_core::{NoFtl, NoFtlConfig};
use noftl::sim_utils::dist::Zipf;
use noftl::sim_utils::rng::SimRng;
use noftl::workloads::{PageTrace, TraceOp};

/// Synthetic OLTP-shaped page trace: fill once, then skewed overwrites.
fn oltp_trace(pages: u64, overwrites: u64) -> PageTrace {
    let mut rng = SimRng::new(0xEDB7);
    let zipf = Zipf::new(pages, 0.8);
    let mut ops: Vec<TraceOp> = (0..pages).map(TraceOp::Write).collect();
    for _ in 0..overwrites {
        ops.push(TraceOp::Write(zipf.sample(&mut rng)));
    }
    PageTrace {
        ops,
        max_page: pages - 1,
    }
}

#[test]
fn figure3_shape_faster_does_more_gc_work_than_noftl() {
    let geometry = FlashGeometry::small();
    let trace = oltp_trace(5200, 9000);

    let mut faster = FasterFtl::new(FasterConfig::new(geometry));
    let faster_report = trace.replay_on_ftl(&mut faster).unwrap();

    let mut noftl = NoFtl::new(NoFtlConfig::new(geometry));
    let noftl_report = trace.replay_on_noftl(&mut noftl).unwrap();

    assert!(faster_report.erases > 0 && noftl_report.erases > 0, "both schemes must GC");
    assert!(
        faster_report.gc_page_copies as f64 >= 1.3 * noftl_report.gc_page_copies as f64,
        "FASTer should relocate clearly more pages ({} vs {})",
        faster_report.gc_page_copies,
        noftl_report.gc_page_copies
    );
    assert!(
        faster_report.erases as f64 >= 1.3 * noftl_report.erases as f64,
        "FASTer should erase clearly more blocks ({} vs {})",
        faster_report.erases,
        noftl_report.erases
    );
    // §5: fewer erases => proportionally longer device lifetime.
    assert!(faster_report.write_amplification > noftl_report.write_amplification);
}

#[test]
fn headline_shape_noftl_faster_than_ftl_stack_on_random_writes() {
    // The latency/throughput advantage in its simplest form: the same page
    // write stream completes sooner on NoFTL than behind the FASTer FTL.
    let geometry = FlashGeometry::small();
    let trace = oltp_trace(5200, 6000);

    let mut faster = FasterFtl::new(FasterConfig::new(geometry));
    let faster_report = trace.replay_on_ftl(&mut faster).unwrap();

    let mut noftl = NoFtl::new(NoFtlConfig::new(geometry));
    let noftl_report = trace.replay_on_noftl(&mut noftl).unwrap();

    assert!(
        faster_report.duration_ns as f64 > 1.2 * noftl_report.duration_ns as f64,
        "NoFTL should complete the stream clearly faster ({} vs {} ns)",
        noftl_report.duration_ns,
        faster_report.duration_ns
    );
}

#[test]
fn figure4_shape_die_wise_flushers_scale_better() {
    use noftl::noftl_core::FlusherAssignment;
    use noftl::storage_engine::{
        backend::NoFtlBackend, buffer::BufferPool, flusher::{FlusherConfig, FlusherPool},
    };

    // One flush cycle of 256 dirty pages with 8 writers over 8 dies: the
    // die-wise association must finish clearly sooner than the global one.
    let run = |assignment: FlusherAssignment| -> u64 {
        let geometry = FlashGeometry::with_dies(8, 1024, 32, 4096);
        let noftl = NoFtl::new(NoFtlConfig::new(geometry));
        let mut backend = NoFtlBackend::new(noftl);
        let mut pool = BufferPool::new(512, 4096);
        for p in 0..256u64 {
            pool.new_page(&mut backend, 0, p, |d| d[0] = p as u8).unwrap();
        }
        let mut flushers = FlusherPool::new(FlusherConfig {
            writers: 8,
            assignment,
            dirty_high_watermark: 0.1,
            dirty_low_watermark: 0.0,
            // Per-page model on both sides: this experiment reproduces the
            // paper's Figure 4 contention mechanism, which predates batching.
            batch_pages: 0,
            batch_global: false,
            async_depth: 1,
        });
        flushers.run_cycle(&mut pool, &mut backend, 0).unwrap()
    };
    let global = run(FlusherAssignment::Global);
    let die_wise = run(FlusherAssignment::DieWise);
    assert!(
        global as f64 > die_wise as f64 * 1.2,
        "global cycle {global} ns should be clearly slower than die-wise {die_wise} ns"
    );
}

#[test]
fn dftl_shape_small_cache_slower_than_page_mapping() {
    use noftl::ftl::dftl::{Dftl, DftlConfig};
    use noftl::ftl::page_ftl::{PageFtl, PageFtlConfig};

    let geometry = FlashGeometry::small();
    let trace = oltp_trace(5000, 4000);

    let mut page_cfg = PageFtlConfig::new(geometry);
    page_cfg.op_ratio = 0.10;
    let mut page_ftl = PageFtl::new(page_cfg);
    let page_report = trace.replay_on_ftl(&mut page_ftl).unwrap();

    let mut dftl_cfg = DftlConfig::new(geometry);
    dftl_cfg.cmt_entries = 64;
    let mut dftl = Dftl::new(dftl_cfg);
    let dftl_report = trace.replay_on_ftl(&mut dftl).unwrap();

    assert!(
        dftl_report.duration_ns > page_report.duration_ns,
        "DFTL with a tiny CMT must be slower ({} vs {})",
        dftl_report.duration_ns,
        page_report.duration_ns
    );
}
