//! Property-based tests on the core invariants of the Flash-management
//! layers: read-your-writes for every scheme, no lost updates across GC,
//! B+-tree equivalence to a model, slotted-page round-trips.

use proptest::prelude::*;

use noftl::ftl::dftl::{Dftl, DftlConfig};
use noftl::ftl::faster::FasterFtl;
use noftl::ftl::page_ftl::{PageFtl, PageFtlConfig};
use noftl::ftl::Ftl;
use noftl::nand_flash::FlashGeometry;
use noftl::noftl_core::{NoFtl, NoFtlConfig};
use noftl::storage_engine::page::SlottedPage;

/// An abstract workload step applied to a logical-page store.
#[derive(Debug, Clone)]
enum Step {
    Write(u64, u8),
    Trim(u64),
    Read(u64),
}

fn step_strategy(lpns: u64) -> impl Strategy<Value = Step> {
    prop_oneof![
        3 => (0..lpns, any::<u8>()).prop_map(|(l, b)| Step::Write(l, b)),
        1 => (0..lpns).prop_map(Step::Trim),
        2 => (0..lpns).prop_map(Step::Read),
    ]
}

/// Apply the steps to an implementation and to a simple model, checking that
/// every read agrees with the model.
fn check_against_model<F>(steps: &[Step], page_size: usize, mut write: F)
where
    F: FnMut(&Step) -> Option<Option<u8>>,
{
    let mut model: std::collections::HashMap<u64, u8> = std::collections::HashMap::new();
    for step in steps {
        match step {
            Step::Write(l, b) => {
                model.insert(*l, *b);
                write(step);
            }
            Step::Trim(l) => {
                model.remove(l);
                write(step);
            }
            Step::Read(l) => {
                let got = write(step).expect("read step must return a value");
                assert_eq!(
                    got,
                    model.get(l).copied(),
                    "read of lpn {l} disagrees with model (page_size {page_size})"
                );
            }
        }
    }
}

fn run_steps_on_ftl(ftl: &mut dyn Ftl, steps: &[Step]) {
    let page_size = 512usize;
    let lpns = ftl.logical_pages();
    let mut now = 0;
    let mut buf = vec![0u8; page_size];
    check_against_model(steps, page_size, |step| match step {
        Step::Write(l, b) => {
            let data = vec![*b; page_size];
            now = ftl.write(now, l % lpns, &data).unwrap().completed_at;
            None
        }
        Step::Trim(l) => {
            ftl.trim(now, l % lpns).unwrap();
            None
        }
        Step::Read(l) => match ftl.read(now, l % lpns, &mut buf) {
            Ok(c) => {
                now = c.completed_at;
                Some(Some(buf[0]))
            }
            Err(_) => Some(None),
        },
    });
}

fn tiny_geometry() -> FlashGeometry {
    FlashGeometry {
        channels: 1,
        dies_per_channel: 2,
        planes_per_die: 1,
        blocks_per_plane: 16,
        pages_per_block: 8,
        page_size: 512,
        oob_size: 16,
        nand_type: noftl::nand_flash::NandType::Slc,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn page_ftl_never_loses_updates(steps in prop::collection::vec(step_strategy(40), 1..200)) {
        let mut cfg = PageFtlConfig::new(tiny_geometry());
        cfg.op_ratio = 0.3;
        let mut ftl = PageFtl::new(cfg);
        run_steps_on_ftl(&mut ftl, &steps);
    }

    #[test]
    fn dftl_never_loses_updates(steps in prop::collection::vec(step_strategy(40), 1..200)) {
        let mut cfg = DftlConfig::new(tiny_geometry());
        cfg.op_ratio = 0.3;
        cfg.cmt_entries = 8; // tiny cache => constant evictions
        let mut ftl = Dftl::new(cfg);
        run_steps_on_ftl(&mut ftl, &steps);
    }

    #[test]
    fn faster_never_loses_updates(steps in prop::collection::vec(step_strategy(40), 1..200)) {
        let mut ftl = FasterFtl::with_geometry(tiny_geometry());
        run_steps_on_ftl(&mut ftl, &steps);
    }

    #[test]
    fn noftl_never_loses_updates(steps in prop::collection::vec(step_strategy(40), 1..200)) {
        let mut cfg = NoFtlConfig::new(tiny_geometry());
        cfg.op_ratio = 0.3;
        let mut noftl = NoFtl::new(cfg);
        let page_size = 512usize;
        let lpns = noftl.logical_pages();
        let mut now = 0;
        let mut buf = vec![0u8; page_size];
        check_against_model(&steps, page_size, |step| match step {
            Step::Write(l, b) => {
                let data = vec![*b; page_size];
                now = noftl.write(now, l % lpns, &data).unwrap().completed_at;
                None
            }
            Step::Trim(l) => {
                noftl.mark_dead(l % lpns).unwrap();
                None
            }
            Step::Read(l) => match noftl.read(now, l % lpns, &mut buf) {
                Ok(c) => {
                    now = c.completed_at;
                    Some(Some(buf[0]))
                }
                Err(_) => Some(None),
            },
        });
    }

    #[test]
    fn slotted_page_roundtrips(records in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..120), 1..20)) {
        let mut page = SlottedPage::new(7, 4096);
        let mut stored = Vec::new();
        for r in &records {
            if let Some(slot) = page.insert(r) {
                stored.push((slot, r.clone()));
            }
        }
        let bytes = page.to_bytes();
        prop_assert_eq!(bytes.len(), 4096);
        let decoded = SlottedPage::from_bytes(&bytes);
        for (slot, expected) in &stored {
            prop_assert_eq!(decoded.get(*slot).unwrap(), expected.as_slice());
        }
    }

    #[test]
    fn erase_counts_only_grow(writes in prop::collection::vec(0u64..60, 50..300)) {
        // Wear (erase counts) must be monotonically non-decreasing no matter
        // the write pattern.
        use noftl::nand_flash::NativeFlashInterface;
        let mut cfg = PageFtlConfig::new(tiny_geometry());
        cfg.op_ratio = 0.3;
        let mut ftl = PageFtl::new(cfg);
        let lpns = ftl.logical_pages();
        let page = vec![1u8; 512];
        let mut last_erases = 0;
        let mut now = 0;
        for w in writes {
            now = ftl.write(now, w % lpns, &page).unwrap().completed_at;
            let erases = ftl.device().stats().erases;
            prop_assert!(erases >= last_erases);
            last_erases = erases;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn btree_matches_btreemap(ops in prop::collection::vec((0u64..500, any::<u64>(), any::<bool>()), 1..400)) {
        use noftl::storage_engine::{backend::MemBackend, btree::BTree, buffer::BufferPool, free_space::FreeSpaceManager};
        let mut pool = BufferPool::new(64, 4096);
        let mut backend = MemBackend::new(4096, 8192);
        let mut fsm = FreeSpaceManager::new(0, 8000);
        let (mut tree, _) = BTree::create(&mut pool, &mut backend, &mut fsm, 0).unwrap();
        let mut model = std::collections::BTreeMap::new();
        for (key, value, remove) in ops {
            if remove {
                let expected = model.remove(&key);
                let (got, _) = tree.remove(&mut pool, &mut backend, 0, key).unwrap();
                prop_assert_eq!(got, expected);
            } else {
                let expected = model.insert(key, value);
                let (got, _) = tree.insert(&mut pool, &mut backend, &mut fsm, 0, key, value).unwrap();
                prop_assert_eq!(got, expected);
            }
        }
        prop_assert_eq!(tree.len() as usize, model.len());
        for (&k, &v) in &model {
            let (got, _) = tree.get(&mut pool, &mut backend, 0, k).unwrap();
            prop_assert_eq!(got, Some(v));
        }
        // Ordered iteration agrees with the model.
        let mut scanned = Vec::new();
        tree.range(&mut pool, &mut backend, 0, 0, u64::MAX, |k, v| scanned.push((k, v))).unwrap();
        let expected: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(scanned, expected);
    }
}
