//! Integration tests spanning the whole stack: storage engine → backend →
//! (FTL / NoFTL) → NAND device, for every storage stack of Figure 1.

use noftl::flash_emulator::{EmulatedSsd, HostLink};
use noftl::ftl::dftl::{Dftl, DftlConfig};
use noftl::ftl::faster::{FasterConfig, FasterFtl};
use noftl::ftl::page_ftl::PageFtl;
use noftl::nand_flash::FlashGeometry;
use noftl::noftl_core::{NoFtl, NoFtlConfig};
use noftl::storage_engine::{
    backend::{BlockDeviceBackend, MemBackend, NoFtlBackend},
    EngineConfig, FlusherConfig, StorageEngine,
};

fn engine_config() -> EngineConfig {
    let mut cfg = EngineConfig::new();
    cfg.buffer_frames = 128;
    cfg.flushers = FlusherConfig::global(4);
    cfg
}

fn engines_under_test() -> Vec<(String, StorageEngine)> {
    let geometry = FlashGeometry::small();
    vec![
        (
            "noftl".to_string(),
            StorageEngine::new(
                Box::new(NoFtlBackend::new(NoFtl::new(NoFtlConfig::new(geometry)))),
                engine_config(),
            ),
        ),
        (
            "ftl-faster".to_string(),
            StorageEngine::new(
                Box::new(BlockDeviceBackend::new(
                    EmulatedSsd::new(FasterFtl::new(FasterConfig::new(geometry)), HostLink::sata2()),
                    "ftl-faster",
                )),
                engine_config(),
            ),
        ),
        (
            "ftl-dftl".to_string(),
            StorageEngine::new(
                Box::new(BlockDeviceBackend::new(
                    EmulatedSsd::new(Dftl::new(DftlConfig::new(geometry)), HostLink::sata2()),
                    "ftl-dftl",
                )),
                engine_config(),
            ),
        ),
        (
            "ftl-page".to_string(),
            StorageEngine::new(
                Box::new(BlockDeviceBackend::new(
                    EmulatedSsd::new(PageFtl::with_geometry(geometry), HostLink::native()),
                    "ftl-page",
                )),
                engine_config(),
            ),
        ),
        (
            "mem".to_string(),
            StorageEngine::new(Box::new(MemBackend::new(4096, 8192)), engine_config()),
        ),
    ]
}

#[test]
fn crud_and_index_work_on_every_stack() {
    for (name, mut engine) in engines_under_test() {
        engine.create_table("t");
        engine.create_index("t_pk", 0).unwrap();
        let mut now = 0;
        let mut rids = Vec::new();
        for i in 0..300u64 {
            let txn = engine.begin();
            let row = format!("row-{i}-{}", "x".repeat((i % 50) as usize));
            let (rid, t) = engine.insert("t", txn, now, row.as_bytes()).unwrap();
            let (_, t) = engine
                .index_insert("t_pk", t, i, (rid.page << 16) | rid.slot as u64)
                .unwrap();
            now = engine.commit(txn, t).unwrap();
            now = engine.maybe_flush(now).unwrap();
            rids.push((i, rid, row));
        }
        // Update a third of the rows, delete a tenth.
        let txn = engine.begin();
        for (i, rid, row) in rids.iter_mut() {
            if *i % 3 == 0 {
                *row = format!("updated-{i}");
                let (new_rid, t) = engine.update("t", txn, now, *rid, row.as_bytes()).unwrap();
                *rid = new_rid;
                now = t;
            }
            if *i % 10 == 9 {
                let (_, t) = engine.delete("t", txn, now, *rid).unwrap();
                now = t;
            }
        }
        now = engine.commit(txn, now).unwrap();
        now = engine.checkpoint(now).unwrap();

        // Verify through reads and the index.
        for (i, rid, row) in &rids {
            let (value, t) = engine.read("t", now, *rid).unwrap();
            now = t;
            if *i % 10 == 9 {
                assert!(value.is_none(), "[{name}] row {i} should be deleted");
            } else {
                assert_eq!(
                    value.as_deref(),
                    Some(row.as_bytes()),
                    "[{name}] row {i} content mismatch"
                );
            }
            let (idx, t) = engine.index_get("t_pk", now, *i).unwrap();
            now = t;
            assert!(idx.is_some(), "[{name}] index entry for {i} missing");
        }
        assert!(engine.committed() >= 301, "[{name}] commits missing");
    }
}

#[test]
fn scans_return_every_live_record_on_flash_stacks() {
    for (name, mut engine) in engines_under_test() {
        engine.create_table("scan_me");
        let txn = engine.begin();
        let mut now = 0;
        for i in 0..200u64 {
            let (_, t) = engine
                .insert("scan_me", txn, now, format!("value-{i:04}").as_bytes())
                .unwrap();
            now = t;
        }
        now = engine.commit(txn, now).unwrap();
        now = engine.checkpoint(now).unwrap();
        let mut seen = Vec::new();
        engine
            .scan("scan_me", now, |_, record| {
                seen.push(String::from_utf8_lossy(record).to_string());
            })
            .unwrap();
        assert_eq!(seen.len(), 200, "[{name}] scan missed records");
        seen.sort();
        assert_eq!(seen[0], "value-0000");
        assert_eq!(seen[199], "value-0199");
    }
}

#[test]
fn sustained_updates_exercise_gc_and_preserve_data_on_noftl() {
    // A deliberately small device (2048 physical pages) so repeated update
    // rounds push the write volume past the device capacity and GC must run.
    let geometry = FlashGeometry::with_dies(4, 64, 32, 4096);
    let mut noftl_cfg = NoFtlConfig::new(geometry);
    noftl_cfg.op_ratio = 0.15;
    let mut engine = StorageEngine::new(
        Box::new(NoFtlBackend::new(NoFtl::new(noftl_cfg))),
        engine_config(),
    );
    engine.create_table("hot");
    let mut now = 0;
    let txn = engine.begin();
    let mut rids = Vec::new();
    for i in 0..400u64 {
        let (rid, t) = engine
            .insert("hot", txn, now, vec![i as u8; 900].as_slice())
            .unwrap();
        rids.push(rid);
        now = t;
    }
    now = engine.commit(txn, now).unwrap();
    // Update rounds to generate flash garbage through the flushers.
    for round in 0..20u64 {
        let txn = engine.begin();
        for (i, rid) in rids.iter_mut().enumerate() {
            let (new_rid, t) = engine
                .update("hot", txn, now, *rid, vec![(round + i as u64) as u8; 900].as_slice())
                .unwrap();
            *rid = new_rid;
            now = t;
        }
        now = engine.commit(txn, now).unwrap();
        now = engine.maybe_flush(now).unwrap();
    }
    now = engine.checkpoint(now).unwrap();
    // All rows hold the newest version.
    for (i, rid) in rids.iter().enumerate() {
        let (value, t) = engine.read("hot", now, *rid).unwrap();
        now = t;
        let value = value.expect("row present");
        assert!(value.iter().all(|&b| b == (19 + i as u64) as u8));
    }
    // The device must have performed erases (GC ran) without losing data.
    let counters = engine.backend_counters();
    assert!(counters.host_writes > 400);
    assert!(counters.erases > 0, "expected GC activity on the NoFTL stack");
}
