//! Concurrency harness (PR 7): N seeded clients hammer one shared
//! [`ConcurrentEngine`] — TPC-B and TPC-C mixes, synchronous and
//! asynchronous submission depths, with and without injected Flash faults —
//! and every run must uphold the concurrent engine's three promises:
//!
//! * **Serializable per-client commit prefixes** — each client's commit
//!   stream is strictly monotone in transaction id and non-decreasing in
//!   commit time, and transaction ids never collide across clients (the
//!   shared transaction manager hands them out under one latch).
//! * **Zero committed-data loss** — after a storm the per-client TPC-B
//!   consistency conditions hold on each client's private table partition,
//!   and on the crash legs the durable log recovered from the medium alone
//!   contains every post-checkpoint commit of every client.
//! * **Exact counter reconciliation** — the per-shard buffer-pool counters
//!   sum to the aggregate statistics exactly (every counter lives under
//!   exactly one shard latch), and the clients' commit streams account for
//!   every committed transaction the engine reports.
//!
//! The deterministic drive mode pins reproducibility (same seeds → same
//! schedule → identical commit streams); the OS-thread mode runs one real
//! thread per client with schedule-agnostic assertions.  The checkpoint
//! regression leg pins the barrier contract: a checkpoint taken while other
//! shards still have asynchronous flush windows in flight must drain them
//! *all* before the WAL checkpoint record lands.

use proptest::prelude::*;
use std::collections::HashSet;

use noftl::nand_flash::fault::FaultPlan;
use noftl::nand_flash::{DeviceConfig, FlashError, FlashGeometry, NandDevice};
use noftl::noftl_core::{NoFtl, NoFtlConfig};
use noftl::sim_utils::time::SimInstant;
use noftl::storage_engine::backend::NoFtlBackend;
use noftl::storage_engine::{
    ClientSession, ConcurrentEngine, EngineConfig, EngineOps, FlusherConfig, LogRecord,
    TxnId, WalManager,
};
use noftl::workloads::{
    ClientWorkload, MultiClientConfig, MultiClientDriver, MultiClientReport, TpcB,
    TpcBConfig, TpcC, TpcCConfig,
};

/// Log segment size used by every engine here (the crash legs' recovery
/// scans must agree with it).
const LOG_PAGES: u64 = 64;

/// Same aggressive fault mix as the single-client chaos storms: every
/// failure mode frequent enough that a short storm exercises recovery, low
/// enough that the spare-block pool survives.
fn storm_plan(seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::seeded(seed);
    plan.program_fail_base = 2e-3;
    plan.program_fail_wear_scale = 0.0;
    plan.erase_fail_knee = 0.0;
    plan.erase_fail_prob = 0.25;
    plan.read_error_base = 2e-3;
    plan.read_error_wear_scale = 1.0;
    plan.read_error_retention_scale = 0.0;
    plan.read_error_disturb_scale = 1e-6;
    plan.uncorrectable_fraction = 0.1;
    plan
}

/// Full concurrent stack: device (optionally with a fault plan) → NoFTL →
/// backend → [`ConcurrentEngine`] with `shards` buffer-pool shards.  Every
/// knob is set explicitly so the harness is independent of the `NOFTL_*`
/// environment legs it happens to run under.
fn concurrent_engine(plan: Option<FaultPlan>, depth: usize, shards: usize) -> ConcurrentEngine {
    let geometry = FlashGeometry::small();
    let mut cfg = NoFtlConfig::new(geometry);
    cfg.async_queue_depth = depth;
    let mut dev_cfg = DeviceConfig::new(geometry);
    dev_cfg.store_data = cfg.store_data;
    dev_cfg.faults = plan;
    let noftl = NoFtl::with_device(NandDevice::new(dev_cfg), cfg);
    let mut backend = NoFtlBackend::new(noftl);
    backend.noftl_mut().set_async_depth(depth);

    let mut ecfg = EngineConfig::new();
    // A pool smaller than the combined working set, so clients genuinely
    // contend for frames and evictions cross client partitions.
    ecfg.buffer_frames = 96;
    ecfg.log_pages = LOG_PAGES;
    let mut flushers = FlusherConfig::die_wise(2);
    flushers.async_depth = depth;
    ecfg.flushers = flushers;
    ecfg.readahead_window = 16;
    ConcurrentEngine::new(Box::new(backend), ecfg, shards)
}

/// Client `i`'s workload over its private `c{i}_` table-name partition.
fn client_workload(i: usize, tpcc: bool, seed: u64) -> ClientWorkload {
    let client_seed = seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    if tpcc {
        Box::new(TpcC::with_prefix(
            TpcCConfig {
                warehouses: 1,
                districts_per_warehouse: 2,
                customers_per_district: 10,
                items: 30,
                seed: client_seed,
            },
            format!("c{i}_"),
        ))
    } else {
        Box::new(TpcB::with_prefix(
            TpcBConfig {
                scale_factor: 1,
                tellers_per_branch: 4,
                accounts_per_branch: 60,
                seed: client_seed,
            },
            format!("c{i}_"),
        ))
    }
}

fn client_workloads(clients: usize, tpcc: bool, seed: u64) -> Vec<ClientWorkload> {
    (0..clients).map(|i| client_workload(i, tpcc, seed)).collect()
}

/// Scan a table through a session, retrying the whole pass on an
/// uncorrectable read (the bounded ladder of a real controller).
fn scan_rows(
    session: &mut ClientSession,
    table: &str,
    now: SimInstant,
) -> (Vec<Vec<u8>>, SimInstant) {
    let mut last = None;
    for _ in 0..8 {
        let mut rows = Vec::new();
        match session.scan(table, now, &mut |_, r| rows.push(r.to_vec())) {
            Ok((_, t)) => return (rows, t),
            Err(e @ FlashError::UncorrectableEcc(_)) => last = Some(e),
            Err(e) => panic!("scan of {table} failed with a non-read fault: {e}"),
        }
    }
    panic!("table {table} unreadable after 8 scan attempts: {last:?}");
}

fn le_i64(bytes: &[u8]) -> i64 {
    i64::from_le_bytes(bytes.try_into().expect("8-byte field"))
}

/// Serializable per-client prefixes: commit streams strictly monotone in
/// transaction id, non-decreasing in commit time, ids globally unique.
fn assert_serializable_streams(report: &MultiClientReport) {
    let mut all_ids: Vec<TxnId> = Vec::new();
    for run in &report.clients {
        assert!(
            !run.commits.is_empty(),
            "client {} committed nothing",
            run.client
        );
        for w in run.commits.windows(2) {
            assert!(
                w[1].0 > w[0].0,
                "client {}: commit stream not monotone in txn id ({} after {})",
                run.client,
                w[1].0,
                w[0].0
            );
            assert!(
                w[1].1 >= w[0].1,
                "client {}: commit time went backwards",
                run.client
            );
        }
        all_ids.extend(run.commits.iter().map(|&(txn, _)| txn));
    }
    let n = all_ids.len();
    all_ids.sort_unstable();
    all_ids.dedup();
    assert_eq!(all_ids.len(), n, "transaction ids collided across clients");
}

/// Exact cross-shard counter reconciliation: shard counters sum to the
/// aggregate, and the clients' streams account for every commit.
fn assert_counters_reconcile(engine: &ConcurrentEngine, report: &MultiClientReport) {
    let shards = engine.shard_buffer_stats();
    let agg = engine.buffer_stats();
    assert_eq!(shards.len(), engine.shard_count());
    assert_eq!(
        shards.iter().map(|s| s.hits).sum::<u64>(),
        agg.hits,
        "shard hit counters do not sum to the aggregate"
    );
    assert_eq!(shards.iter().map(|s| s.misses).sum::<u64>(), agg.misses);
    assert_eq!(shards.iter().map(|s| s.evictions).sum::<u64>(), agg.evictions);
    assert_eq!(
        shards.iter().map(|s| s.dirty_evictions).sum::<u64>(),
        agg.dirty_evictions
    );
    assert_eq!(
        shards.iter().map(|s| s.flushed_by_writers).sum::<u64>(),
        agg.flushed_by_writers
    );
    let occ = engine.shard_occupancy();
    assert_eq!(occ.iter().map(|&(r, _)| r).sum::<usize>(), engine.resident());
    assert_eq!(
        occ.iter().map(|&(_, d)| d).sum::<usize>(),
        engine.dirty_count()
    );

    let stream_total: u64 = report.clients.iter().map(|c| c.commits.len() as u64).sum();
    assert_eq!(
        engine.committed(),
        stream_total,
        "client commit streams do not account for every committed transaction"
    );
    // Force-per-commit WAL: at least one force per commit (checkpoints and
    // batch tails add more, never fewer).
    assert!(
        engine.log_forces() >= stream_total,
        "fewer WAL forces ({}) than commits ({stream_total}) under group commit 1",
        engine.log_forces()
    );
}

/// Zero committed-data loss, workload-level: each TPC-B client's private
/// partition still satisfies the money-flow condition (balance sums at all
/// three levels equal the history deltas) and no loaded row is missing.
fn assert_tpcb_partitions_consistent(engine: &ConcurrentEngine, clients: usize, now: SimInstant) {
    let mut s = engine.session();
    let mut t = now;
    for i in 0..clients {
        let (accounts, t2) = scan_rows(&mut s, &format!("c{i}_account"), t);
        assert_eq!(accounts.len(), 60, "client {i}: account rows lost");
        let (tellers, t2) = scan_rows(&mut s, &format!("c{i}_teller"), t2);
        assert_eq!(tellers.len(), 4, "client {i}: teller rows lost");
        let (branches, t2) = scan_rows(&mut s, &format!("c{i}_branch"), t2);
        assert_eq!(branches.len(), 1, "client {i}: branch rows lost");
        let (history, t2) = scan_rows(&mut s, &format!("c{i}_history"), t2);
        let history_total: i64 = history.iter().map(|r| le_i64(&r[24..32])).sum();
        let account_total: i64 = accounts.iter().map(|r| le_i64(&r[16..24])).sum();
        let teller_total: i64 = tellers.iter().map(|r| le_i64(&r[16..24])).sum();
        let branch_total: i64 = branches.iter().map(|r| le_i64(&r[8..16])).sum();
        assert_eq!(
            account_total, history_total,
            "client {i}: account balances diverged from history"
        );
        assert_eq!(
            teller_total, history_total,
            "client {i}: teller balances diverged from history"
        );
        assert_eq!(
            branch_total, history_total,
            "client {i}: branch balances diverged from history"
        );
        t = t2;
    }
}

/// TPC-C clients: loaded rows of every private partition intact.
fn assert_tpcc_partitions_intact(engine: &ConcurrentEngine, clients: usize, now: SimInstant) {
    let mut s = engine.session();
    let mut t = now;
    for i in 0..clients {
        let (warehouses, t2) = scan_rows(&mut s, &format!("c{i}_warehouse"), t);
        assert_eq!(warehouses.len(), 1, "client {i}: warehouse rows lost");
        let (districts, t2) = scan_rows(&mut s, &format!("c{i}_district"), t2);
        assert_eq!(districts.len(), 2, "client {i}: district rows lost");
        let (customers, t2) = scan_rows(&mut s, &format!("c{i}_customer"), t2);
        assert_eq!(customers.len(), 20, "client {i}: customer rows lost");
        let (stock, t2) = scan_rows(&mut s, &format!("c{i}_stock"), t2);
        assert_eq!(stock.len(), 30, "client {i}: stock rows lost");
        t = t2;
    }
}

/// Every device-reported failure must be accounted for by a DBMS-side
/// recovery action — the truthful-statistics promise under concurrency.
fn assert_truthful_fault_stats(engine: &ConcurrentEngine) {
    engine.with_backend(|b| {
        let n = b
            .as_any()
            .and_then(|a| a.downcast_ref::<NoFtlBackend>())
            .expect("storms run on the NoFTL backend")
            .noftl();
        let flash = n.flash_stats();
        let stats = n.stats();
        assert_eq!(
            stats.program_fail_retirements, flash.program_failures,
            "every device program failure must be recovered by exactly one retirement"
        );
        assert_eq!(
            stats.erase_fail_retirements, flash.erase_failures,
            "every device erase failure must be recovered by exactly one retirement"
        );
        if flash.uncorrectable_reads > 0 {
            assert!(
                stats.read_retries > 0,
                "uncorrectable reads were reported but nothing retried them"
            );
        }
        assert_eq!(
            n.bad_blocks().grown_count() as u64,
            stats.retired_blocks,
            "grown-bad census must match the retirement count"
        );
    });
}

/// One deterministic storm: `clients` clients × the chosen mix × submission
/// depth × fault leg, asserting every promise.  Returns the report so the
/// reproducibility leg can compare runs.
fn storm(seed: u64, clients: usize, tpcc: bool, depth: usize, faults: bool) -> MultiClientReport {
    let engine = concurrent_engine(faults.then(|| storm_plan(seed)), depth, clients);
    let driver = MultiClientDriver::new(MultiClientConfig::new(10));
    let report = driver
        .run(&engine, client_workloads(clients, tpcc, seed), 0)
        .expect("concurrent storm must recover from every injected fault");

    assert_eq!(report.clients.len(), clients);
    assert_eq!(report.transactions, 10 * clients as u64);
    assert_serializable_streams(&report);
    assert_counters_reconcile(&engine, &report);

    let end = engine.session().quiesce(report.clients.iter().map(|c| c.end).max().unwrap_or(0));
    if tpcc {
        assert_tpcc_partitions_intact(&engine, clients, end);
    } else {
        assert_tpcb_partitions_consistent(&engine, clients, end);
    }
    if faults {
        assert_truthful_fault_stats(&engine);
    }
    report
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The storm matrix: seeded clients × {TPC-B, TPC-C} × {sync, async
    /// depth 8} × {faults on, off}, deterministic interleaving.
    #[test]
    fn concurrent_storms_uphold_engine_promises(
        seed in 1u64..1 << 32,
        clients in 2usize..=4,
        tpcc in any::<bool>(),
        deep in any::<bool>(),
        faults in any::<bool>(),
    ) {
        storm(seed, clients, tpcc, if deep { 8 } else { 1 }, faults);
    }

    /// Determinism: the same seeds must reproduce the exact same commit
    /// streams and aggregate report, faults and async depth notwithstanding.
    #[test]
    fn deterministic_mode_is_reproducible(
        seed in 1u64..1 << 32,
        tpcc in any::<bool>(),
    ) {
        let a = storm(seed, 3, tpcc, 8, true);
        let b = storm(seed, 3, tpcc, 8, true);
        prop_assert_eq!(a.transactions, b.transactions);
        prop_assert_eq!(a.duration_ns, b.duration_ns);
        for (ca, cb) in a.clients.iter().zip(b.clients.iter()) {
            prop_assert_eq!(&ca.commits, &cb.commits,
                "client {} diverged between identical runs", ca.client);
            prop_assert_eq!(ca.end, cb.end);
        }
    }
}

/// Crash leg: after a concurrent storm and a checkpoint, every client runs a
/// few more transactions; the log rebuilt from the medium alone must contain
/// every record since the checkpoint — in particular every client's
/// post-checkpoint commits.  Force-per-commit, so nothing may ride on a
/// volatile tail.
fn crash_recovery_leg(seed: u64, depth: usize, faults: bool) {
    let clients = 3;
    let engine = concurrent_engine(faults.then(|| storm_plan(seed)), depth, clients);
    let mut workloads = client_workloads(clients, false, seed);
    let mut sessions: Vec<ClientSession> = (0..clients).map(|_| engine.session()).collect();

    let mut t = 0;
    for (w, s) in workloads.iter_mut().zip(sessions.iter_mut()) {
        t = w.setup(s, t).expect("setup");
    }
    // A short concurrent burst, round-robin across clients.
    for round in 0..4 {
        for c in 0..clients {
            let (end, _) = workloads[c]
                .run_transaction(&mut sessions[c], c, t)
                .unwrap_or_else(|e| panic!("round {round} client {c}: {e}"));
            t = sessions[c].maybe_flush(end).expect("flush").max(end);
        }
    }

    let mut t = sessions[0].checkpoint(t).expect("checkpoint under load");

    // Post-checkpoint transactions — the records a crash must not lose.
    let mut post_ckpt: Vec<TxnId> = Vec::new();
    for _ in 0..3 {
        for c in 0..clients {
            let before = sessions[c].commits().len();
            let (end, _) = workloads[c]
                .run_transaction(&mut sessions[c], c, t)
                .expect("post-checkpoint transaction");
            t = sessions[c].maybe_flush(end).expect("flush").max(end);
            post_ckpt.extend(sessions[c].commits()[before..].iter().map(|&(txn, _)| txn));
        }
    }
    let t = sessions[0].quiesce(t);
    assert!(!post_ckpt.is_empty());

    let ckpt_lsn = engine.with_wal(|w| w.checkpoint_lsn());
    let start_seq = engine.with_wal(|w| w.recovery_start_seq());
    let expected: Vec<LogRecord> = engine.with_wal(|w| {
        w.records()
            .iter()
            .filter(|(lsn, _)| *lsn >= ckpt_lsn)
            .map(|(_, r)| r.clone())
            .collect()
    });
    let page_size = engine.with_backend(|b| b.page_size());
    let num_pages = engine.with_backend(|b| b.num_pages());

    drop(sessions);
    let mut medium = engine.into_backend();
    let recovered: Vec<LogRecord> = WalManager::recover_records_from(
        medium.as_mut(),
        num_pages - LOG_PAGES,
        LOG_PAGES,
        page_size,
        start_seq,
        t,
    )
    .into_iter()
    .map(|(_, r)| r)
    .collect();
    assert_eq!(
        recovered, expected,
        "a crash must find every record since the checkpoint durable"
    );
    let durable_commits: HashSet<TxnId> = recovered
        .iter()
        .filter_map(|r| match r {
            LogRecord::Commit { txn } => Some(*txn),
            _ => None,
        })
        .collect();
    for txn in &post_ckpt {
        assert!(
            durable_commits.contains(txn),
            "committed transaction {txn} lost by the crash"
        );
    }
}

#[test]
fn crash_recovery_loses_no_commit_sync() {
    crash_recovery_leg(0xC0FFEE, 1, false);
}

#[test]
fn crash_recovery_loses_no_commit_async_under_faults() {
    crash_recovery_leg(0xC0FFEE, 8, true);
}

/// Satellite 4 regression: a checkpoint taken while *other shards* still
/// have asynchronous flush windows in flight must barrier them all — plus
/// the read window — before the WAL checkpoint record lands.  Observable
/// contract: the checkpoint's returned instant is a full barrier (an
/// immediate quiesce is a virtual-time no-op), the pool is clean on every
/// shard, and the checkpoint record is the last record in the log.
#[test]
fn checkpoint_barriers_all_shards_inflight_windows() {
    let shards = 4;
    let engine = concurrent_engine(None, 8, shards);
    let mut s = engine.session();
    let mut t = 0;
    // Dirty pages on every shard: four clients' worth of tables, bulk
    // inserts, no intervening checkpoint.
    for i in 0..shards {
        let table = format!("t{i}");
        assert!(s.create_table(&table));
        let txn = s.begin();
        for k in 0..200u64 {
            let rec = [i as u8 + 1; 48].map(|b| b.wrapping_add(k as u8));
            let (_, end) = s.insert(&table, txn, t, &rec).expect("insert");
            t = end;
        }
        t = s.commit(txn, t).expect("commit");
    }
    let occupancy = engine.shard_occupancy();
    assert!(
        occupancy.iter().all(|&(_, dirty)| dirty > 0),
        "fixture must dirty every shard, got {occupancy:?}"
    );

    // Launch flush cycles (asynchronous windows, depth 8) and checkpoint
    // immediately — without quiescing in between.  The recovery pointer is
    // captured *before* the checkpoint advances it, so the medium scan below
    // still sees the whole log, checkpoint record included.
    let pre_ckpt_start_seq = engine.with_wal(|w| w.recovery_start_seq());
    let t = s.maybe_flush(t).expect("flush cycles");
    let t = s.checkpoint(t).expect("checkpoint");

    // The barrier covered every shard's window: nothing is still in flight
    // (quiesce is a no-op on the virtual clock), no shard holds dirty
    // frames, and the last log record is the checkpoint marker.
    assert_eq!(
        s.quiesce(t),
        t,
        "checkpoint returned before an in-flight window completed"
    );
    assert_eq!(engine.dirty_count(), 0, "a shard kept dirty frames across checkpoint");
    assert!(
        engine.shard_occupancy().iter().all(|&(_, d)| d == 0),
        "per-shard dirty counts must all be zero after checkpoint"
    );
    let last = engine.with_wal(|w| w.records().last().map(|(_, r)| r.clone()));
    assert_eq!(
        last,
        Some(LogRecord::Checkpoint),
        "the checkpoint record must land after every barriered write"
    );

    // And the record is durable on the medium, behind every earlier record.
    let page_size = engine.with_backend(|b| b.page_size());
    let num_pages = engine.with_backend(|b| b.num_pages());
    drop(s);
    let mut medium = engine.into_backend();
    let recovered = WalManager::recover_records_from(
        medium.as_mut(),
        num_pages - LOG_PAGES,
        LOG_PAGES,
        page_size,
        pre_ckpt_start_seq,
        t,
    );
    assert_eq!(
        recovered.last().map(|(_, r)| r.clone()),
        Some(LogRecord::Checkpoint),
        "the durable log must end with the checkpoint record"
    );
}

/// OS-thread stress: one real thread per client against the shared engine.
/// The interleaving is whatever the scheduler produces, so the assertions
/// are schedule-agnostic: per-client streams monotone, ids globally unique,
/// every commit accounted for, partitions consistent.
#[test]
fn os_thread_storm_holds_schedule_agnostic_invariants() {
    let clients = 4;
    let engine = concurrent_engine(None, 8, clients);
    let driver = MultiClientDriver::new(MultiClientConfig::os_threads(20));
    let report = driver
        .run(&engine, client_workloads(clients, false, 7), 0)
        .expect("OS-thread storm");

    assert_eq!(report.transactions, 20 * clients as u64);
    assert_serializable_streams(&report);
    assert_counters_reconcile(&engine, &report);
    let end = engine
        .session()
        .quiesce(report.clients.iter().map(|c| c.end).max().unwrap_or(0));
    assert_tpcb_partitions_consistent(&engine, clients, end);
}

/// OS-thread stress under faults: the recovery machinery must stay correct
/// when real threads race through it.
#[test]
fn os_thread_storm_survives_fault_injection() {
    let clients = 3;
    let engine = concurrent_engine(Some(storm_plan(11)), 8, clients);
    let driver = MultiClientDriver::new(MultiClientConfig::os_threads(12));
    let report = driver
        .run(&engine, client_workloads(clients, false, 11), 0)
        .expect("OS-thread storm under faults");

    assert_serializable_streams(&report);
    assert_counters_reconcile(&engine, &report);
    assert_truthful_fault_stats(&engine);
    let end = engine
        .session()
        .quiesce(report.clients.iter().map(|c| c.end).max().unwrap_or(0));
    assert_tpcb_partitions_consistent(&engine, clients, end);
}

/// High-iteration storm smoke for CI: honours `NOFTL_THREADS` for the
/// client count (so the matrix legs exercise 1 and 8 clients) and
/// `NOFTL_FAULTS` for the fault leg, like the chaos smoke.
#[test]
fn concurrent_storm_smoke() {
    let clients = std::env::var("NOFTL_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(2);
    let faults = std::env::var("NOFTL_FAULTS").is_ok_and(|v| !v.is_empty() && v != "0");
    storm(0xD1E5, clients, false, 8, faults);
    storm(0xD1E5, clients, true, 8, faults);
}
