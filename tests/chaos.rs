//! Chaos harness (PR 6): TPC-B / TPC-C storms against the full NoFTL stack
//! under seeded fault plans — program failures, erase failures and read
//! errors injected by the device while the DBMS recovers above them.
//!
//! Every case asserts the two promises of the recovery machinery:
//!
//! * **Zero committed-data loss** — after the storm the workload's own
//!   consistency conditions hold (TPC-B: branch/teller/account balance sums
//!   equal the history deltas; TPC-C: warehouse/district YTD sums equal the
//!   payment history), every loaded row is still present, and — on the
//!   crash-at-boundary legs — the durable log recovered from the medium
//!   alone replays every record since the last checkpoint.
//! * **Truthful statistics** — every device-reported failure is accounted
//!   for by exactly one DBMS-side recovery action (block retirement, read
//!   retry), and the grown-bad-block census matches the retirement count.
//!
//! The storms run both the synchronous model (depth 1) and the asynchronous
//! per-die queues at depth 8.  `fault_storm_smoke` honours the
//! `NOFTL_FAULTS` knob (any seed given there drives the plan) so CI can pin
//! a seed; the proptest storms draw their own seeds deterministically.

use proptest::prelude::*;

use noftl::nand_flash::fault::{FaultPlan, DEFAULT_FAULT_SEED};
use noftl::nand_flash::{DeviceConfig, FlashError, FlashGeometry, NandDevice};
use noftl::noftl_core::{NoFtl, NoFtlConfig, RedundancyPolicy};
use noftl::sim_utils::time::SimInstant;
use noftl::storage_engine::backend::NoFtlBackend;
use noftl::storage_engine::{
    EngineConfig, FlusherConfig, LogRecord, StorageEngine, WalManager,
};
use noftl::workloads::{
    BenchmarkDriver, DriverConfig, TpcB, TpcBConfig, TpcC, TpcCConfig, Workload,
};

/// Log segment size used by every chaos engine (must match the crash leg's
/// recovery scan).
const LOG_PAGES: u64 = 64;

/// Chaos fault mix: every failure mode is orders of magnitude more likely
/// than on the default plan, so a short storm actually exercises recovery,
/// but rates stay low enough that the spare-block pool survives the run.
fn chaos_plan(seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::seeded(seed);
    plan.program_fail_base = 2e-3;
    plan.program_fail_wear_scale = 0.0;
    plan.erase_fail_knee = 0.0;
    plan.erase_fail_prob = 0.25;
    plan.read_error_base = 2e-3;
    plan.read_error_wear_scale = 1.0;
    plan.read_error_retention_scale = 0.0;
    plan.read_error_disturb_scale = 1e-6;
    plan.uncorrectable_fraction = 0.1;
    plan
}

/// Full NoFTL stack with fault injection: device (with `plan`) → NoFTL →
/// backend → engine, at the given asynchronous submission depth.  The depth
/// is set explicitly on every layer so the chaos runs are independent of the
/// `NOFTL_ASYNC` environment leg they happen to execute under.
fn chaos_engine(plan: FaultPlan, depth: usize, endurance: Option<u64>) -> StorageEngine {
    chaos_engine_on(FlashGeometry::small(), plan, depth, endurance, None)
}

/// [`chaos_engine`] on an explicit geometry — the targeted legs use a much
/// smaller device (and a higher over-provisioning ratio, giving GC spare
/// room to survive retirements) so GC — and with it the erase-failure model
/// — demonstrably runs within a short storm.
fn chaos_engine_on(
    geometry: FlashGeometry,
    plan: FaultPlan,
    depth: usize,
    endurance: Option<u64>,
    op_ratio: Option<f64>,
) -> StorageEngine {
    chaos_engine_with_frames(geometry, plan, depth, endurance, op_ratio, 48)
}

/// [`chaos_engine_on`] with an explicit buffer-pool size: the targeted legs
/// shrink the pool below the working set so foreground reads demonstrably
/// miss to the device — and through its read-error model — during the storm.
fn chaos_engine_with_frames(
    geometry: FlashGeometry,
    plan: FaultPlan,
    depth: usize,
    endurance: Option<u64>,
    op_ratio: Option<f64>,
    buffer_frames: usize,
) -> StorageEngine {
    let mut cfg = NoFtlConfig::new(geometry);
    cfg.async_queue_depth = depth;
    cfg.endurance_override = endurance;
    if let Some(op) = op_ratio {
        cfg.op_ratio = op;
    }
    let mut dev_cfg = DeviceConfig::new(geometry);
    dev_cfg.store_data = cfg.store_data;
    dev_cfg.endurance_override = cfg.endurance_override;
    dev_cfg.faults = Some(plan);
    let noftl = NoFtl::with_device(NandDevice::new(dev_cfg), cfg);
    let mut backend = NoFtlBackend::new(noftl);
    backend.noftl_mut().set_async_depth(depth);

    let mut ecfg = EngineConfig::new();
    // A pool far smaller than the database, so reads genuinely hit the
    // device (and its read-error model) instead of staying cached.
    ecfg.buffer_frames = buffer_frames;
    ecfg.log_pages = LOG_PAGES;
    let mut flushers = FlusherConfig::die_wise(2);
    flushers.async_depth = depth;
    ecfg.flushers = flushers;
    ecfg.readahead_window = 16;
    StorageEngine::new(Box::new(backend), ecfg)
}

/// The embedded NoFTL of a chaos engine (via the backend downcast hook).
fn noftl_of(engine: &StorageEngine) -> &NoFtl {
    engine
        .backend()
        .as_any()
        .and_then(|a| a.downcast_ref::<NoFtlBackend>())
        .expect("chaos engines run on the NoFTL backend")
        .noftl()
}

/// Scan a table, retrying the whole pass on an uncorrectable read: every
/// retry redraws the read-error model (the ladder of a real controller), so
/// a transient uncorrectable never fails verification.  Any other error is a
/// genuine bug and panics the case.
fn scan_rows(
    engine: &mut StorageEngine,
    table: &str,
    now: SimInstant,
) -> (Vec<Vec<u8>>, SimInstant) {
    let mut last = None;
    for _ in 0..8 {
        let mut rows = Vec::new();
        match engine.scan(table, now, |_, r| rows.push(r.to_vec())) {
            Ok((_, t)) => return (rows, t),
            Err(e @ FlashError::UncorrectableEcc(_)) => last = Some(e),
            Err(e) => panic!("scan of {table} failed with a non-read fault: {e}"),
        }
    }
    panic!("table {table} unreadable after 8 scan attempts: {last:?}");
}

fn le_i64(bytes: &[u8]) -> i64 {
    i64::from_le_bytes(bytes.try_into().expect("8-byte field"))
}

/// Every device-reported failure must be accounted for by the DBMS-side
/// recovery statistics — injected faults never vanish silently.
fn assert_truthful_stats(engine: &StorageEngine) {
    let n = noftl_of(engine);
    let flash = n.flash_stats();
    let stats = n.stats();
    assert_eq!(
        stats.program_fail_retirements, flash.program_failures,
        "every device program failure must be recovered by exactly one retirement"
    );
    assert_eq!(
        stats.erase_fail_retirements, flash.erase_failures,
        "every device erase failure must be recovered by exactly one retirement"
    );
    if flash.uncorrectable_reads > 0 {
        assert!(
            stats.read_retries > 0,
            "uncorrectable reads were reported but nothing retried them"
        );
    }
    assert!(
        stats.read_retry_successes <= stats.read_retries,
        "retry successes cannot exceed retries"
    );
    assert!(
        stats.retired_blocks >= stats.program_fail_retirements + stats.erase_fail_retirements,
        "the retirement census must cover every fault-driven retirement"
    );
    assert_eq!(
        n.bad_blocks().grown_count() as u64,
        stats.retired_blocks,
        "grown-bad census must match the retirement count"
    );
}

/// Crash-at-boundary leg: checkpoint, run a few more transactions, then
/// rebuild the log from the *medium alone* and demand every record since the
/// checkpoint — in particular every Commit — is durable, fault storm and
/// retired log blocks notwithstanding.
fn assert_committed_log_durable(
    engine: &mut StorageEngine,
    workload: &mut dyn Workload,
    now: SimInstant,
    extra_txns: usize,
) {
    let mut t = engine.checkpoint(now).expect("checkpoint under faults");
    for _ in 0..extra_txns {
        let (t2, _) = workload
            .run_transaction(engine, 0, t)
            .expect("post-checkpoint transaction");
        t = t2;
    }
    let t = engine.quiesce(t);

    let ckpt_lsn = engine.wal().checkpoint_lsn();
    let start_seq = engine.wal().recovery_start_seq();
    let expected: Vec<LogRecord> = engine
        .wal()
        .records()
        .iter()
        .filter(|(lsn, _)| *lsn >= ckpt_lsn)
        .map(|(_, r)| r.clone())
        .collect();
    let page_size = engine.page_size();
    let log_start = engine.backend().num_pages() - LOG_PAGES;
    let recovered: Vec<LogRecord> =
        WalManager::recover_records_from(engine.backend_mut(), log_start, LOG_PAGES, page_size, start_seq, t)
            .into_iter()
            .map(|(_, r)| r)
            .collect();
    assert_eq!(
        recovered, expected,
        "a crash at the run boundary must find every record since the checkpoint durable"
    );
    let commits = recovered
        .iter()
        .filter(|r| matches!(r, LogRecord::Commit { .. }))
        .count();
    assert_eq!(commits, extra_txns, "every committed transaction must be in the durable log");
}

// ---------------------------------------------------------------------------
// TPC-B storm
// ---------------------------------------------------------------------------

fn tpcb_storm(seed: u64, depth: usize, crash_check: bool) {
    let mut engine = chaos_engine(chaos_plan(seed), depth, Some(64));
    let mut w = TpcB::new(TpcBConfig {
        scale_factor: 1,
        tellers_per_branch: 10,
        accounts_per_branch: 400,
        seed,
    });
    let start = w.setup(&mut engine, 0).expect("TPC-B load under faults");
    let driver = BenchmarkDriver::new(DriverConfig::new(3, 44));
    driver
        .run(&mut engine, &mut w, start)
        .expect("TPC-B storm under faults");
    let end = engine.quiesce(0);

    // Zero committed-data loss: every loaded row survives and the TPC-B
    // consistency condition holds — the balance sums of all three levels
    // equal the sum of the history deltas (all transactions committed).
    let (accounts, end) = scan_rows(&mut engine, "account", end);
    assert_eq!(accounts.len(), 400, "account rows lost");
    let (tellers, end) = scan_rows(&mut engine, "teller", end);
    assert_eq!(tellers.len(), 10, "teller rows lost");
    let (branches, end) = scan_rows(&mut engine, "branch", end);
    assert_eq!(branches.len(), 1, "branch rows lost");
    let (history, end) = scan_rows(&mut engine, "history", end);
    // 44 measured + 4 warm-up transactions, one history append each.
    assert_eq!(history.len(), 48, "history rows lost");

    let history_total: i64 = history.iter().map(|r| le_i64(&r[24..32])).sum();
    let account_total: i64 = accounts.iter().map(|r| le_i64(&r[16..24])).sum();
    let teller_total: i64 = tellers.iter().map(|r| le_i64(&r[16..24])).sum();
    let branch_total: i64 = branches.iter().map(|r| le_i64(&r[8..16])).sum();
    assert_eq!(account_total, history_total, "account balances diverged from history");
    assert_eq!(teller_total, history_total, "teller balances diverged from history");
    assert_eq!(branch_total, history_total, "branch balances diverged from history");

    assert_truthful_stats(&engine);
    if crash_check {
        assert_committed_log_durable(&mut engine, &mut w, end, 6);
        assert_truthful_stats(&engine);
    }
}

// ---------------------------------------------------------------------------
// TPC-C storm
// ---------------------------------------------------------------------------

fn tpcc_storm(seed: u64, depth: usize, crash_check: bool) {
    let mut engine = chaos_engine(chaos_plan(seed), depth, Some(64));
    let mut w = TpcC::new(TpcCConfig {
        warehouses: 1,
        districts_per_warehouse: 4,
        customers_per_district: 40,
        items: 200,
        seed,
    });
    let start = w.setup(&mut engine, 0).expect("TPC-C load under faults");
    let driver = BenchmarkDriver::new(DriverConfig::new(3, 40));
    driver
        .run(&mut engine, &mut w, start)
        .expect("TPC-C storm under faults");
    let end = engine.quiesce(0);

    // Zero committed-data loss: loaded rows intact, inserted orders present,
    // and the money-flow consistency condition — warehouse YTD, district YTD
    // and the payment history all account for the same total.
    let (warehouses, end) = scan_rows(&mut engine, "warehouse", end);
    assert_eq!(warehouses.len(), 1, "warehouse rows lost");
    let (districts, end) = scan_rows(&mut engine, "district", end);
    assert_eq!(districts.len(), 4, "district rows lost");
    let (customers, end) = scan_rows(&mut engine, "customer", end);
    assert_eq!(customers.len(), 160, "customer rows lost");
    let (stock, end) = scan_rows(&mut engine, "stock", end);
    assert_eq!(stock.len(), 200, "stock rows lost");
    let (orders, end) = scan_rows(&mut engine, "orders", end);
    assert_eq!(
        orders.len() as u64, w.mix_counts[0],
        "every committed New-Order must have its order row"
    );
    let (order_lines, end) = scan_rows(&mut engine, "order_line", end);
    assert!(
        order_lines.len() >= orders.len() * 5,
        "order lines lost: {} lines for {} orders",
        order_lines.len(),
        orders.len()
    );
    let (history, end) = scan_rows(&mut engine, "history", end);
    assert_eq!(
        history.len() as u64, w.mix_counts[1],
        "every committed Payment must have its history row"
    );

    let paid: i64 = history.iter().map(|r| le_i64(&r[8..16])).sum();
    let warehouse_ytd: i64 = warehouses.iter().map(|r| le_i64(&r[8..16])).sum();
    let district_ytd: i64 = districts.iter().map(|r| le_i64(&r[16..24])).sum();
    assert_eq!(warehouse_ytd, paid, "warehouse YTD diverged from the payment history");
    assert_eq!(district_ytd, paid, "district YTD diverged from the payment history");

    assert_truthful_stats(&engine);
    if crash_check {
        assert_committed_log_durable(&mut engine, &mut w, end, 4);
        assert_truthful_stats(&engine);
    }
}

// ---------------------------------------------------------------------------
// The storms: 104 seeded fault-plan runs (26 cases × {TPC-B, TPC-C} ×
// {sync, async depth 8}), crash-at-boundary on roughly half of them.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(26))]

    #[test]
    fn tpcb_storms_survive_fault_plans_sync(seed in any::<u64>(), crash in any::<bool>()) {
        tpcb_storm(seed, 1, crash);
    }

    #[test]
    fn tpcb_storms_survive_fault_plans_async_depth8(seed in any::<u64>(), crash in any::<bool>()) {
        tpcb_storm(seed, 8, crash);
    }

    #[test]
    fn tpcc_storms_survive_fault_plans_sync(seed in any::<u64>(), crash in any::<bool>()) {
        tpcc_storm(seed, 1, crash);
    }

    #[test]
    fn tpcc_storms_survive_fault_plans_async_depth8(seed in any::<u64>(), crash in any::<bool>()) {
        tpcc_storm(seed, 8, crash);
    }
}

// ---------------------------------------------------------------------------
// Targeted legs
// ---------------------------------------------------------------------------

/// One run with every failure mode cranked high enough that all three fault
/// classes demonstrably fire — and are all recovered — in a single storm.
#[test]
fn storm_injects_and_recovers_every_fault_class() {
    let mut plan = chaos_plan(0xC4A05);
    plan.program_fail_base = 0.004;
    plan.erase_fail_prob = 0.4;
    plan.read_error_base = 0.02;
    // Endurance 4: erase failures ramp with wear from the very first P/E
    // cycle.  A deliberately tiny device (2 dies x 16 blocks x 8 pages) with
    // 40% over-provisioning keeps GC running throughout the storm — so
    // erases, and their failure draws, actually happen — while the small
    // blocks leave enough spares to absorb the retirements the cranked
    // rates cause.
    let geometry = FlashGeometry::with_dies(2, 32, 8, 4096);
    let mut engine = chaos_engine_with_frames(geometry, plan, 8, Some(32), Some(0.5), 12);
    let mut w = TpcB::new(TpcBConfig {
        scale_factor: 1,
        tellers_per_branch: 10,
        accounts_per_branch: 400,
        seed: 0xC4A05,
    });
    let start = w.setup(&mut engine, 0).expect("load");
    let driver = BenchmarkDriver::new(DriverConfig::new(3, 250));
    if let Err(e) = driver.run(&mut engine, &mut w, start) {
        let n = noftl_of(&engine);
        let flash = n.flash_stats();
        panic!(
            "storm: {e} (programs={} erases={} pf={} ef={} retired={} wearout={:?})",
            flash.programs, flash.erases, flash.program_failures,
            flash.erase_failures, n.stats().retired_blocks, n.bad_blocks().grown_count()
        );
    }
    let end = engine.quiesce(0);

    let (history, end) = scan_rows(&mut engine, "history", end);
    assert_eq!(history.len(), 275); // 250 measured + 25 warm-up
    let (branches, _end) = scan_rows(&mut engine, "branch", end);
    let history_total: i64 = history.iter().map(|r| le_i64(&r[24..32])).sum();
    let branch_total: i64 = branches.iter().map(|r| le_i64(&r[8..16])).sum();
    assert_eq!(branch_total, history_total);

    assert_truthful_stats(&engine);
    let n = noftl_of(&engine);
    let flash = n.flash_stats();
    assert!(flash.program_failures > 0, "storm must inject program failures");
    assert!(flash.erase_failures > 0, "storm must inject erase failures");
    assert!(flash.corrected_reads > 0, "storm must inject correctable read errors");
    assert!(n.stats().retired_blocks > 0, "recovery must have retired blocks");
}

// ---------------------------------------------------------------------------
// Die-failure storms (PR 10): a whole die dies mid-workload while every
// region runs a redundancy policy.  The workload must complete, no committed
// data may be lost, reads of lost pages must come back bit-identical through
// reconstruction, and the redundancy / rebuild counters must be truthful.
// ---------------------------------------------------------------------------

/// A fault plan with every probabilistic failure mode zeroed: nothing fires
/// until a deterministic die kill is armed.
fn quiet_plan() -> FaultPlan {
    let mut plan = FaultPlan::seeded(7);
    plan.program_fail_base = 0.0;
    plan.erase_fail_prob = 0.0;
    plan.read_error_base = 0.0;
    plan
}

/// [`quiet_plan`] plus a deterministic kill of `die_flat`, fired by the next
/// device command after the plan is armed.
fn kill_plan(die_flat: u32) -> FaultPlan {
    quiet_plan().with_die_kill(0, die_flat)
}

/// Full stack with `policy` on every region and no probabilistic faults.
/// Over-provisioning is generous (0.60): parity overhead, stale-stripe
/// parity pinning and the eventual loss of a quarter of the physical pool
/// all eat spare blocks.  `slo_scheduling` is on so the online rebuild rides
/// the background hook in [`StorageEngine::maybe_flush`].
fn redundant_engine(policy: RedundancyPolicy, depth: usize) -> StorageEngine {
    redundant_engine_with_frames(policy, depth, 48)
}

/// [`redundant_engine`] with an explicit buffer-pool size: the targeted
/// degraded-read legs shrink the pool below the working set so reads
/// demonstrably reach the device — and its dead die — instead of the cache.
fn redundant_engine_with_frames(
    policy: RedundancyPolicy,
    depth: usize,
    buffer_frames: usize,
) -> StorageEngine {
    let geometry = FlashGeometry::small();
    let mut cfg = NoFtlConfig::new(geometry);
    cfg.async_queue_depth = depth;
    cfg.op_ratio = 0.60;
    let mut dev_cfg = DeviceConfig::new(geometry);
    dev_cfg.store_data = cfg.store_data;
    // An explicit (inert) plan, so the storms are independent of the
    // `NOFTL_FAULTS` environment leg they happen to execute under.
    dev_cfg.faults = Some(quiet_plan());
    let mut noftl = NoFtl::with_device(NandDevice::new(dev_cfg), cfg);
    noftl.set_redundancy_all(policy);
    let mut backend = NoFtlBackend::new(noftl);
    backend.noftl_mut().set_async_depth(depth);

    let mut ecfg = EngineConfig::new();
    ecfg.buffer_frames = buffer_frames;
    ecfg.log_pages = LOG_PAGES;
    let mut flushers = FlusherConfig::die_wise(2);
    flushers.async_depth = depth;
    ecfg.flushers = flushers;
    ecfg.readahead_window = 16;
    ecfg.slo_scheduling = true;
    StorageEngine::new(Box::new(backend), ecfg)
}

/// Mutable access to the embedded NoFTL (via the backend downcast hook), for
/// arming the kill plan mid-run and draining the rebuild.
fn noftl_mut_of(engine: &mut StorageEngine) -> &mut NoFtl {
    engine
        .backend_mut()
        .as_any_mut()
        .and_then(|a| a.downcast_mut::<NoFtlBackend>())
        .expect("chaos engines run on the NoFTL backend")
        .noftl_mut()
}

/// Run the online rebuild to completion and return the finish time.
fn drain_rebuild(engine: &mut StorageEngine, now: SimInstant) -> SimInstant {
    let n = noftl_mut_of(engine);
    let mut t = now;
    while let Some(end) = n.schedule_rebuild(t).expect("rebuild step") {
        t = end.max(t);
    }
    t
}

/// The redundancy and rebuild counters must tell the truth about a
/// single-die failure on a fully protected device.
fn assert_redundancy_truthful(engine: &StorageEngine, policy: RedundancyPolicy) {
    let n = noftl_of(engine);
    let rs = n.redundancy_stats();
    let rb = n.rebuild_stats();
    match policy {
        RedundancyPolicy::Parity(_) => {
            assert!(rs.stripes_sealed > 0, "a parity storm must seal stripes");
            assert!(
                rs.parity_pages_written >= rs.stripes_sealed,
                "every sealed stripe has a parity page"
            );
            assert!(
                rs.stripes_sealed_degraded <= rs.stripes_sealed,
                "degraded seals are a subset of all seals"
            );
            assert_eq!(
                rs.stripes_abandoned, 0,
                "a storm with free space must never abandon a stripe unsealed"
            );
        }
        RedundancyPolicy::Mirror => {
            assert!(rs.mirror_pages_written > 0, "a mirror storm must write copies");
            assert_eq!(
                rs.mirror_skipped_no_space, 0,
                "a storm with free space must never skip a mirror copy"
            );
        }
        RedundancyPolicy::None => {}
    }
    assert!(n.any_die_dead(), "the kill must actually have fired");
    assert_eq!(rb.die_failures_detected, 1, "exactly one die failed");
    assert_eq!(
        rb.pages_lost, 0,
        "no committed page may be lost on a protected region"
    );
    assert!(rb.pages_rebuilt > 0, "the dead die held mapped pages to re-home");
    assert!(rb.accounted(), "the rebuild walker must account for every page");
    assert!(
        rs.reconstructed_pages >= rb.pages_rebuilt,
        "every rebuilt page was reconstructed from redundancy"
    );
}

/// One die-failure storm: TPC-B on a fully `policy`-protected stack, a die
/// killed halfway through, the storm finishing across the failure, the
/// online rebuild drained, and zero committed-data loss demanded.
fn die_kill_storm(policy: RedundancyPolicy, seed: u64, depth: usize, crash_check: bool) {
    let mut engine = redundant_engine(policy, depth);
    let mut w = TpcB::new(TpcBConfig {
        scale_factor: 1,
        tellers_per_branch: 10,
        accounts_per_branch: 400,
        seed,
    });
    let mut now = w.setup(&mut engine, 0).expect("TPC-B load on the redundant stack");
    // First half of the storm on a healthy device.
    for _ in 0..22 {
        let (t, _) = w
            .run_transaction(&mut engine, 0, now)
            .expect("transaction before the die failure");
        now = engine.maybe_flush(t).expect("flush").max(t);
    }
    // Arm the kill: the very next device command fires it, mid-storm, on a
    // die whose blocks by now hold committed rows, WAL pages and parity or
    // mirror copies.
    let dead_die = (seed % 4) as u32;
    noftl_mut_of(&mut engine).set_fault_plan(Some(kill_plan(dead_die)));
    for _ in 0..22 {
        let (t, _) = w
            .run_transaction(&mut engine, 0, now)
            .expect("transaction across the die failure");
        now = engine.maybe_flush(t).expect("flush").max(t);
    }
    let end = engine.quiesce(now);
    // Finish whatever the background hook has not yet rebuilt.
    let end = drain_rebuild(&mut engine, end);

    // Zero committed-data loss: every loaded row survives the die loss and
    // the TPC-B consistency condition holds across all three levels.
    let (accounts, end) = scan_rows(&mut engine, "account", end);
    assert_eq!(accounts.len(), 400, "account rows lost to the die failure");
    let (tellers, end) = scan_rows(&mut engine, "teller", end);
    assert_eq!(tellers.len(), 10, "teller rows lost to the die failure");
    let (branches, end) = scan_rows(&mut engine, "branch", end);
    assert_eq!(branches.len(), 1, "branch rows lost to the die failure");
    let (history, end) = scan_rows(&mut engine, "history", end);
    assert_eq!(history.len(), 44, "history rows lost to the die failure");

    let history_total: i64 = history.iter().map(|r| le_i64(&r[24..32])).sum();
    let account_total: i64 = accounts.iter().map(|r| le_i64(&r[16..24])).sum();
    let teller_total: i64 = tellers.iter().map(|r| le_i64(&r[16..24])).sum();
    let branch_total: i64 = branches.iter().map(|r| le_i64(&r[8..16])).sum();
    assert_eq!(account_total, history_total, "account balances diverged from history");
    assert_eq!(teller_total, history_total, "teller balances diverged from history");
    assert_eq!(branch_total, history_total, "branch balances diverged from history");

    assert_redundancy_truthful(&engine, policy);
    if crash_check {
        assert_committed_log_durable(&mut engine, &mut w, end, 6);
        assert_redundancy_truthful(&engine, policy);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn die_kill_storms_parity_sync(seed in any::<u64>(), crash in any::<bool>()) {
        die_kill_storm(RedundancyPolicy::Parity(3), seed, 1, crash);
    }

    #[test]
    fn die_kill_storms_parity_async_depth8(seed in any::<u64>(), crash in any::<bool>()) {
        die_kill_storm(RedundancyPolicy::Parity(3), seed, 8, crash);
    }

    #[test]
    fn die_kill_storms_mirror_sync(seed in any::<u64>(), crash in any::<bool>()) {
        die_kill_storm(RedundancyPolicy::Mirror, seed, 1, crash);
    }

    #[test]
    fn die_kill_storms_mirror_async_depth8(seed in any::<u64>(), crash in any::<bool>()) {
        die_kill_storm(RedundancyPolicy::Mirror, seed, 8, crash);
    }
}

/// Before any rebuild runs, reads of pages lost to a dead die must be served
/// **bit-identical** through reconstruction: a degraded leg (die killed
/// after the storm, no rebuild) scans the same rows as a healthy leg of the
/// identical seeded run — and scans them again, still identical, after the
/// rebuild re-homes them.
#[test]
fn degraded_reads_after_die_loss_are_bit_identical() {
    let run = |kill: bool| -> Vec<Vec<Vec<u8>>> {
        let mut engine = redundant_engine_with_frames(RedundancyPolicy::Parity(3), 1, 6);
        let mut w = TpcB::new(TpcBConfig {
            scale_factor: 1,
            tellers_per_branch: 10,
            accounts_per_branch: 400,
            seed: 0xD1E,
        });
        let mut now = w.setup(&mut engine, 0).expect("load");
        for _ in 0..20 {
            let (t, _) = w.run_transaction(&mut engine, 0, now).expect("txn");
            now = engine.maybe_flush(t).expect("flush").max(t);
        }
        let mut end = engine.quiesce(now);
        if kill {
            noftl_mut_of(&mut engine).set_fault_plan(Some(kill_plan(2)));
        }
        let mut tables = Vec::new();
        for table in ["account", "teller", "branch", "history"] {
            let (rows, t) = scan_rows(&mut engine, table, end);
            tables.push(rows);
            end = t;
        }
        if kill {
            // The scans above ran degraded — the buffer pool is far smaller
            // than the database, so they demonstrably hit the dead die.
            let n = noftl_of(&engine);
            assert!(n.any_die_dead(), "the scan must have fired the kill");
            assert!(
                n.redundancy_stats().degraded_reads > 0,
                "scans of a quarter-dead device must serve degraded reads"
            );
            assert_eq!(n.rebuild_stats().pages_lost, 0);
            // After the rebuild every row must still read back identical.
            let end = drain_rebuild(&mut engine, end);
            assert!(noftl_of(&engine).rebuild_stats().pages_rebuilt > 0);
            let mut t = end;
            for (i, table) in ["account", "teller", "branch", "history"].into_iter().enumerate() {
                let (rows, t2) = scan_rows(&mut engine, table, t);
                assert_eq!(rows, tables[i], "{table} changed across the rebuild");
                t = t2;
            }
        }
        tables
    };
    let healthy = run(false);
    let degraded = run(true);
    assert_eq!(
        healthy, degraded,
        "degraded reads must be bit-identical to the healthy leg"
    );
}

/// Without redundancy a die failure *is* data loss — and the stack must say
/// so: typed read failures on lost pages, truthful loss counters, and no
/// phantom reconstructions.
#[test]
fn die_loss_without_redundancy_fails_typed_and_counts_losses() {
    let mut engine = redundant_engine(RedundancyPolicy::None, 1);
    let mut w = TpcB::new(TpcBConfig {
        scale_factor: 1,
        tellers_per_branch: 10,
        accounts_per_branch: 400,
        seed: 0xDEAD,
    });
    let mut now = w.setup(&mut engine, 0).expect("load");
    for _ in 0..20 {
        let (t, _) = w.run_transaction(&mut engine, 0, now).expect("txn");
        now = engine.maybe_flush(t).expect("flush").max(t);
    }
    let end = engine.quiesce(now);
    noftl_mut_of(&mut engine).set_fault_plan(Some(kill_plan(1)));
    // One device read fires the armed kill (on whichever die it targets).
    {
        let n = noftl_mut_of(&mut engine);
        let mut buf = vec![0u8; 4096];
        let _ = n.read(end, 0, &mut buf);
        assert!(n.any_die_dead(), "the kill must fire on the first command");
    }
    let end = drain_rebuild(&mut engine, end);
    let rb = noftl_of(&engine).rebuild_stats();
    assert_eq!(rb.die_failures_detected, 1);
    assert_eq!(rb.pages_rebuilt, 0, "nothing to rebuild from without redundancy");
    assert!(rb.pages_lost > 0, "losses must be counted, not hidden");
    assert!(rb.accounted());
    assert_eq!(noftl_of(&engine).redundancy_stats().reconstructed_pages, 0);
    // Every lost page fails typed — the WAL-replay layer above can take
    // over — and the loss counter matches the typed failures one for one.
    let pages = engine.backend().num_pages();
    let page_size = engine.page_size();
    let n = noftl_mut_of(&mut engine);
    let mut typed = 0u64;
    let mut buf = vec![0u8; page_size];
    for lpn in 0..pages {
        match n.read(end, lpn, &mut buf) {
            Ok(_) => {}
            Err(FlashError::DieFailed(_)) => typed += 1,
            // Logical pages the workload never wrote have no mapping.
            Err(FlashError::ReadOfUnwrittenPage(_)) => {}
            Err(e) => panic!("read of lpn {lpn}: expected DieFailed, got {e}"),
        }
    }
    assert!(typed > 0, "a quarter of the mapped pages died with the die");
    assert_eq!(
        typed,
        n.rebuild_stats().pages_lost,
        "the loss counter must match the typed read failures exactly"
    );
}

/// CI smoke: one die-kill rebuild storm whose policy honours the
/// `NOFTL_REDUNDANCY` knob (`NOFTL_REDUNDANCY=parity` pins `Parity(3)`,
/// `parity:k` and `mirror` pin theirs); with the knob off or unset the
/// default parity policy is used, so the smoke always exercises a
/// mid-workload die failure, the online rebuild and the loss accounting.
#[test]
fn redundancy_rebuild_smoke() {
    let policy = noftl::storage_engine::backend::redundancy_from_env()
        .unwrap_or(RedundancyPolicy::Parity(
            noftl::storage_engine::backend::DEFAULT_PARITY_K,
        ));
    die_kill_storm(policy, 0xD1E5EED, 8, true);
    die_kill_storm(policy, 0xD1E5EED, 1, false);
}

/// CI smoke: one TPC-B storm with a crash-at-boundary leg.  The plan's seed
/// honours the `NOFTL_FAULTS` knob (`NOFTL_FAULTS=12345` pins seed 12345);
/// with the knob off or unset the default fault seed is used, so the smoke
/// always exercises the recovery machinery.
#[test]
fn fault_storm_smoke() {
    let seed = noftl::storage_engine::backend::fault_plan_from_env()
        .unwrap_or_else(|| FaultPlan::seeded(DEFAULT_FAULT_SEED))
        .seed;
    tpcb_storm(seed, 8, true);
    tpcb_storm(seed, 1, false);
}
