//! Chaos harness (PR 6): TPC-B / TPC-C storms against the full NoFTL stack
//! under seeded fault plans — program failures, erase failures and read
//! errors injected by the device while the DBMS recovers above them.
//!
//! Every case asserts the two promises of the recovery machinery:
//!
//! * **Zero committed-data loss** — after the storm the workload's own
//!   consistency conditions hold (TPC-B: branch/teller/account balance sums
//!   equal the history deltas; TPC-C: warehouse/district YTD sums equal the
//!   payment history), every loaded row is still present, and — on the
//!   crash-at-boundary legs — the durable log recovered from the medium
//!   alone replays every record since the last checkpoint.
//! * **Truthful statistics** — every device-reported failure is accounted
//!   for by exactly one DBMS-side recovery action (block retirement, read
//!   retry), and the grown-bad-block census matches the retirement count.
//!
//! The storms run both the synchronous model (depth 1) and the asynchronous
//! per-die queues at depth 8.  `fault_storm_smoke` honours the
//! `NOFTL_FAULTS` knob (any seed given there drives the plan) so CI can pin
//! a seed; the proptest storms draw their own seeds deterministically.

use proptest::prelude::*;

use noftl::nand_flash::fault::{FaultPlan, DEFAULT_FAULT_SEED};
use noftl::nand_flash::{DeviceConfig, FlashError, FlashGeometry, NandDevice};
use noftl::noftl_core::{NoFtl, NoFtlConfig};
use noftl::sim_utils::time::SimInstant;
use noftl::storage_engine::backend::NoFtlBackend;
use noftl::storage_engine::{
    EngineConfig, FlusherConfig, LogRecord, StorageEngine, WalManager,
};
use noftl::workloads::{
    BenchmarkDriver, DriverConfig, TpcB, TpcBConfig, TpcC, TpcCConfig, Workload,
};

/// Log segment size used by every chaos engine (must match the crash leg's
/// recovery scan).
const LOG_PAGES: u64 = 64;

/// Chaos fault mix: every failure mode is orders of magnitude more likely
/// than on the default plan, so a short storm actually exercises recovery,
/// but rates stay low enough that the spare-block pool survives the run.
fn chaos_plan(seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::seeded(seed);
    plan.program_fail_base = 2e-3;
    plan.program_fail_wear_scale = 0.0;
    plan.erase_fail_knee = 0.0;
    plan.erase_fail_prob = 0.25;
    plan.read_error_base = 2e-3;
    plan.read_error_wear_scale = 1.0;
    plan.read_error_retention_scale = 0.0;
    plan.read_error_disturb_scale = 1e-6;
    plan.uncorrectable_fraction = 0.1;
    plan
}

/// Full NoFTL stack with fault injection: device (with `plan`) → NoFTL →
/// backend → engine, at the given asynchronous submission depth.  The depth
/// is set explicitly on every layer so the chaos runs are independent of the
/// `NOFTL_ASYNC` environment leg they happen to execute under.
fn chaos_engine(plan: FaultPlan, depth: usize, endurance: Option<u64>) -> StorageEngine {
    chaos_engine_on(FlashGeometry::small(), plan, depth, endurance, None)
}

/// [`chaos_engine`] on an explicit geometry — the targeted legs use a much
/// smaller device (and a higher over-provisioning ratio, giving GC spare
/// room to survive retirements) so GC — and with it the erase-failure model
/// — demonstrably runs within a short storm.
fn chaos_engine_on(
    geometry: FlashGeometry,
    plan: FaultPlan,
    depth: usize,
    endurance: Option<u64>,
    op_ratio: Option<f64>,
) -> StorageEngine {
    chaos_engine_with_frames(geometry, plan, depth, endurance, op_ratio, 48)
}

/// [`chaos_engine_on`] with an explicit buffer-pool size: the targeted legs
/// shrink the pool below the working set so foreground reads demonstrably
/// miss to the device — and through its read-error model — during the storm.
fn chaos_engine_with_frames(
    geometry: FlashGeometry,
    plan: FaultPlan,
    depth: usize,
    endurance: Option<u64>,
    op_ratio: Option<f64>,
    buffer_frames: usize,
) -> StorageEngine {
    let mut cfg = NoFtlConfig::new(geometry);
    cfg.async_queue_depth = depth;
    cfg.endurance_override = endurance;
    if let Some(op) = op_ratio {
        cfg.op_ratio = op;
    }
    let mut dev_cfg = DeviceConfig::new(geometry);
    dev_cfg.store_data = cfg.store_data;
    dev_cfg.endurance_override = cfg.endurance_override;
    dev_cfg.faults = Some(plan);
    let noftl = NoFtl::with_device(NandDevice::new(dev_cfg), cfg);
    let mut backend = NoFtlBackend::new(noftl);
    backend.noftl_mut().set_async_depth(depth);

    let mut ecfg = EngineConfig::new();
    // A pool far smaller than the database, so reads genuinely hit the
    // device (and its read-error model) instead of staying cached.
    ecfg.buffer_frames = buffer_frames;
    ecfg.log_pages = LOG_PAGES;
    let mut flushers = FlusherConfig::die_wise(2);
    flushers.async_depth = depth;
    ecfg.flushers = flushers;
    ecfg.readahead_window = 16;
    StorageEngine::new(Box::new(backend), ecfg)
}

/// The embedded NoFTL of a chaos engine (via the backend downcast hook).
fn noftl_of(engine: &StorageEngine) -> &NoFtl {
    engine
        .backend()
        .as_any()
        .and_then(|a| a.downcast_ref::<NoFtlBackend>())
        .expect("chaos engines run on the NoFTL backend")
        .noftl()
}

/// Scan a table, retrying the whole pass on an uncorrectable read: every
/// retry redraws the read-error model (the ladder of a real controller), so
/// a transient uncorrectable never fails verification.  Any other error is a
/// genuine bug and panics the case.
fn scan_rows(
    engine: &mut StorageEngine,
    table: &str,
    now: SimInstant,
) -> (Vec<Vec<u8>>, SimInstant) {
    let mut last = None;
    for _ in 0..8 {
        let mut rows = Vec::new();
        match engine.scan(table, now, |_, r| rows.push(r.to_vec())) {
            Ok((_, t)) => return (rows, t),
            Err(e @ FlashError::UncorrectableEcc(_)) => last = Some(e),
            Err(e) => panic!("scan of {table} failed with a non-read fault: {e}"),
        }
    }
    panic!("table {table} unreadable after 8 scan attempts: {last:?}");
}

fn le_i64(bytes: &[u8]) -> i64 {
    i64::from_le_bytes(bytes.try_into().expect("8-byte field"))
}

/// Every device-reported failure must be accounted for by the DBMS-side
/// recovery statistics — injected faults never vanish silently.
fn assert_truthful_stats(engine: &StorageEngine) {
    let n = noftl_of(engine);
    let flash = n.flash_stats();
    let stats = n.stats();
    assert_eq!(
        stats.program_fail_retirements, flash.program_failures,
        "every device program failure must be recovered by exactly one retirement"
    );
    assert_eq!(
        stats.erase_fail_retirements, flash.erase_failures,
        "every device erase failure must be recovered by exactly one retirement"
    );
    if flash.uncorrectable_reads > 0 {
        assert!(
            stats.read_retries > 0,
            "uncorrectable reads were reported but nothing retried them"
        );
    }
    assert!(
        stats.read_retry_successes <= stats.read_retries,
        "retry successes cannot exceed retries"
    );
    assert!(
        stats.retired_blocks >= stats.program_fail_retirements + stats.erase_fail_retirements,
        "the retirement census must cover every fault-driven retirement"
    );
    assert_eq!(
        n.bad_blocks().grown_count() as u64,
        stats.retired_blocks,
        "grown-bad census must match the retirement count"
    );
}

/// Crash-at-boundary leg: checkpoint, run a few more transactions, then
/// rebuild the log from the *medium alone* and demand every record since the
/// checkpoint — in particular every Commit — is durable, fault storm and
/// retired log blocks notwithstanding.
fn assert_committed_log_durable(
    engine: &mut StorageEngine,
    workload: &mut dyn Workload,
    now: SimInstant,
    extra_txns: usize,
) {
    let mut t = engine.checkpoint(now).expect("checkpoint under faults");
    for _ in 0..extra_txns {
        let (t2, _) = workload
            .run_transaction(engine, 0, t)
            .expect("post-checkpoint transaction");
        t = t2;
    }
    let t = engine.quiesce(t);

    let ckpt_lsn = engine.wal().checkpoint_lsn();
    let start_seq = engine.wal().recovery_start_seq();
    let expected: Vec<LogRecord> = engine
        .wal()
        .records()
        .iter()
        .filter(|(lsn, _)| *lsn >= ckpt_lsn)
        .map(|(_, r)| r.clone())
        .collect();
    let page_size = engine.page_size();
    let log_start = engine.backend().num_pages() - LOG_PAGES;
    let recovered: Vec<LogRecord> =
        WalManager::recover_records_from(engine.backend_mut(), log_start, LOG_PAGES, page_size, start_seq, t)
            .into_iter()
            .map(|(_, r)| r)
            .collect();
    assert_eq!(
        recovered, expected,
        "a crash at the run boundary must find every record since the checkpoint durable"
    );
    let commits = recovered
        .iter()
        .filter(|r| matches!(r, LogRecord::Commit { .. }))
        .count();
    assert_eq!(commits, extra_txns, "every committed transaction must be in the durable log");
}

// ---------------------------------------------------------------------------
// TPC-B storm
// ---------------------------------------------------------------------------

fn tpcb_storm(seed: u64, depth: usize, crash_check: bool) {
    let mut engine = chaos_engine(chaos_plan(seed), depth, Some(64));
    let mut w = TpcB::new(TpcBConfig {
        scale_factor: 1,
        tellers_per_branch: 10,
        accounts_per_branch: 400,
        seed,
    });
    let start = w.setup(&mut engine, 0).expect("TPC-B load under faults");
    let driver = BenchmarkDriver::new(DriverConfig::new(3, 44));
    driver
        .run(&mut engine, &mut w, start)
        .expect("TPC-B storm under faults");
    let end = engine.quiesce(0);

    // Zero committed-data loss: every loaded row survives and the TPC-B
    // consistency condition holds — the balance sums of all three levels
    // equal the sum of the history deltas (all transactions committed).
    let (accounts, end) = scan_rows(&mut engine, "account", end);
    assert_eq!(accounts.len(), 400, "account rows lost");
    let (tellers, end) = scan_rows(&mut engine, "teller", end);
    assert_eq!(tellers.len(), 10, "teller rows lost");
    let (branches, end) = scan_rows(&mut engine, "branch", end);
    assert_eq!(branches.len(), 1, "branch rows lost");
    let (history, end) = scan_rows(&mut engine, "history", end);
    // 44 measured + 4 warm-up transactions, one history append each.
    assert_eq!(history.len(), 48, "history rows lost");

    let history_total: i64 = history.iter().map(|r| le_i64(&r[24..32])).sum();
    let account_total: i64 = accounts.iter().map(|r| le_i64(&r[16..24])).sum();
    let teller_total: i64 = tellers.iter().map(|r| le_i64(&r[16..24])).sum();
    let branch_total: i64 = branches.iter().map(|r| le_i64(&r[8..16])).sum();
    assert_eq!(account_total, history_total, "account balances diverged from history");
    assert_eq!(teller_total, history_total, "teller balances diverged from history");
    assert_eq!(branch_total, history_total, "branch balances diverged from history");

    assert_truthful_stats(&engine);
    if crash_check {
        assert_committed_log_durable(&mut engine, &mut w, end, 6);
        assert_truthful_stats(&engine);
    }
}

// ---------------------------------------------------------------------------
// TPC-C storm
// ---------------------------------------------------------------------------

fn tpcc_storm(seed: u64, depth: usize, crash_check: bool) {
    let mut engine = chaos_engine(chaos_plan(seed), depth, Some(64));
    let mut w = TpcC::new(TpcCConfig {
        warehouses: 1,
        districts_per_warehouse: 4,
        customers_per_district: 40,
        items: 200,
        seed,
    });
    let start = w.setup(&mut engine, 0).expect("TPC-C load under faults");
    let driver = BenchmarkDriver::new(DriverConfig::new(3, 40));
    driver
        .run(&mut engine, &mut w, start)
        .expect("TPC-C storm under faults");
    let end = engine.quiesce(0);

    // Zero committed-data loss: loaded rows intact, inserted orders present,
    // and the money-flow consistency condition — warehouse YTD, district YTD
    // and the payment history all account for the same total.
    let (warehouses, end) = scan_rows(&mut engine, "warehouse", end);
    assert_eq!(warehouses.len(), 1, "warehouse rows lost");
    let (districts, end) = scan_rows(&mut engine, "district", end);
    assert_eq!(districts.len(), 4, "district rows lost");
    let (customers, end) = scan_rows(&mut engine, "customer", end);
    assert_eq!(customers.len(), 160, "customer rows lost");
    let (stock, end) = scan_rows(&mut engine, "stock", end);
    assert_eq!(stock.len(), 200, "stock rows lost");
    let (orders, end) = scan_rows(&mut engine, "orders", end);
    assert_eq!(
        orders.len() as u64, w.mix_counts[0],
        "every committed New-Order must have its order row"
    );
    let (order_lines, end) = scan_rows(&mut engine, "order_line", end);
    assert!(
        order_lines.len() >= orders.len() * 5,
        "order lines lost: {} lines for {} orders",
        order_lines.len(),
        orders.len()
    );
    let (history, end) = scan_rows(&mut engine, "history", end);
    assert_eq!(
        history.len() as u64, w.mix_counts[1],
        "every committed Payment must have its history row"
    );

    let paid: i64 = history.iter().map(|r| le_i64(&r[8..16])).sum();
    let warehouse_ytd: i64 = warehouses.iter().map(|r| le_i64(&r[8..16])).sum();
    let district_ytd: i64 = districts.iter().map(|r| le_i64(&r[16..24])).sum();
    assert_eq!(warehouse_ytd, paid, "warehouse YTD diverged from the payment history");
    assert_eq!(district_ytd, paid, "district YTD diverged from the payment history");

    assert_truthful_stats(&engine);
    if crash_check {
        assert_committed_log_durable(&mut engine, &mut w, end, 4);
        assert_truthful_stats(&engine);
    }
}

// ---------------------------------------------------------------------------
// The storms: 104 seeded fault-plan runs (26 cases × {TPC-B, TPC-C} ×
// {sync, async depth 8}), crash-at-boundary on roughly half of them.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(26))]

    #[test]
    fn tpcb_storms_survive_fault_plans_sync(seed in any::<u64>(), crash in any::<bool>()) {
        tpcb_storm(seed, 1, crash);
    }

    #[test]
    fn tpcb_storms_survive_fault_plans_async_depth8(seed in any::<u64>(), crash in any::<bool>()) {
        tpcb_storm(seed, 8, crash);
    }

    #[test]
    fn tpcc_storms_survive_fault_plans_sync(seed in any::<u64>(), crash in any::<bool>()) {
        tpcc_storm(seed, 1, crash);
    }

    #[test]
    fn tpcc_storms_survive_fault_plans_async_depth8(seed in any::<u64>(), crash in any::<bool>()) {
        tpcc_storm(seed, 8, crash);
    }
}

// ---------------------------------------------------------------------------
// Targeted legs
// ---------------------------------------------------------------------------

/// One run with every failure mode cranked high enough that all three fault
/// classes demonstrably fire — and are all recovered — in a single storm.
#[test]
fn storm_injects_and_recovers_every_fault_class() {
    let mut plan = chaos_plan(0xC4A05);
    plan.program_fail_base = 0.004;
    plan.erase_fail_prob = 0.4;
    plan.read_error_base = 0.02;
    // Endurance 4: erase failures ramp with wear from the very first P/E
    // cycle.  A deliberately tiny device (2 dies x 16 blocks x 8 pages) with
    // 40% over-provisioning keeps GC running throughout the storm — so
    // erases, and their failure draws, actually happen — while the small
    // blocks leave enough spares to absorb the retirements the cranked
    // rates cause.
    let geometry = FlashGeometry::with_dies(2, 32, 8, 4096);
    let mut engine = chaos_engine_with_frames(geometry, plan, 8, Some(32), Some(0.5), 12);
    let mut w = TpcB::new(TpcBConfig {
        scale_factor: 1,
        tellers_per_branch: 10,
        accounts_per_branch: 400,
        seed: 0xC4A05,
    });
    let start = w.setup(&mut engine, 0).expect("load");
    let driver = BenchmarkDriver::new(DriverConfig::new(3, 250));
    if let Err(e) = driver.run(&mut engine, &mut w, start) {
        let n = noftl_of(&engine);
        let flash = n.flash_stats();
        panic!(
            "storm: {e} (programs={} erases={} pf={} ef={} retired={} wearout={:?})",
            flash.programs, flash.erases, flash.program_failures,
            flash.erase_failures, n.stats().retired_blocks, n.bad_blocks().grown_count()
        );
    }
    let end = engine.quiesce(0);

    let (history, end) = scan_rows(&mut engine, "history", end);
    assert_eq!(history.len(), 275); // 250 measured + 25 warm-up
    let (branches, _end) = scan_rows(&mut engine, "branch", end);
    let history_total: i64 = history.iter().map(|r| le_i64(&r[24..32])).sum();
    let branch_total: i64 = branches.iter().map(|r| le_i64(&r[8..16])).sum();
    assert_eq!(branch_total, history_total);

    assert_truthful_stats(&engine);
    let n = noftl_of(&engine);
    let flash = n.flash_stats();
    assert!(flash.program_failures > 0, "storm must inject program failures");
    assert!(flash.erase_failures > 0, "storm must inject erase failures");
    assert!(flash.corrected_reads > 0, "storm must inject correctable read errors");
    assert!(n.stats().retired_blocks > 0, "recovery must have retired blocks");
}

/// CI smoke: one TPC-B storm with a crash-at-boundary leg.  The plan's seed
/// honours the `NOFTL_FAULTS` knob (`NOFTL_FAULTS=12345` pins seed 12345);
/// with the knob off or unset the default fault seed is used, so the smoke
/// always exercises the recovery machinery.
#[test]
fn fault_storm_smoke() {
    let seed = noftl::storage_engine::backend::fault_plan_from_env()
        .unwrap_or_else(|| FaultPlan::seeded(DEFAULT_FAULT_SEED))
        .seed;
    tpcb_storm(seed, 8, true);
    tpcb_storm(seed, 1, false);
}
