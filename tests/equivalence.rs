//! Golden-trace equivalence of the batched multi-page write path.
//!
//! The batch write protocol promises that batching **off** (`NOFTL_BATCH=off`,
//! legacy one-`write_page`-per-page everywhere) and batching **on with batch
//! size 1** (every write routed through the `write_pages` API as a degenerate
//! single-page run) are indistinguishable: same Figure 3 / Figure 4 outputs,
//! same emulator command traces, same timing.  Larger batch sizes may change
//! *timing* (that is the point) but never page *contents*.
//!
//! These tests run the same library entry points the `fig3_gc_overhead` and
//! `fig4_dbwriters` bins print.

use std::sync::Mutex;

use noftl::nand_flash::{DeviceConfig, FlashGeometry, NandDevice};
use noftl::noftl_core::{FlusherAssignment, NoFtl, NoFtlConfig};
use noftl::storage_engine::backend::NoFtlBackend;
use noftl::storage_engine::flusher::{FlusherConfig, FlusherPool};
use noftl::storage_engine::BufferPool;
use noftl_bench::dbwriters::{render_table as render_fig4, run_dbwriter_scaling};
use noftl_bench::gc_overhead::{render_table as render_fig3, run_gc_overhead};
use noftl_bench::setup::{Benchmark, Scale};

/// Serialises the tests that flip the process-global `NOFTL_BATCH` knob.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_batch_env<R>(value: &str, f: impl FnOnce() -> R) -> R {
    std::env::set_var("NOFTL_BATCH", value);
    let r = f();
    std::env::remove_var("NOFTL_BATCH");
    r
}

#[test]
fn fig3_output_identical_with_batching_off_vs_batch_size_one() {
    let _guard = ENV_LOCK.lock().unwrap();
    let off = with_batch_env("off", || render_fig3(&run_gc_overhead(Scale::Quick)));
    let one = with_batch_env("1", || render_fig3(&run_gc_overhead(Scale::Quick)));
    assert!(off.contains("TPC-C") && off.contains("TPC-B") && off.contains("TPC-E"));
    assert_eq!(
        off, one,
        "Figure 3 output must be bit-identical with batching off vs batch size 1"
    );
}

#[test]
fn fig4_output_identical_with_batching_off_vs_batch_size_one() {
    let _guard = ENV_LOCK.lock().unwrap();
    let dies = [1u32, 2, 4, 8];
    let off = with_batch_env("off", || {
        render_fig4(&run_dbwriter_scaling(Benchmark::TpcB, Scale::Quick, &dies))
    });
    let one = with_batch_env("1", || {
        render_fig4(&run_dbwriter_scaling(Benchmark::TpcB, Scale::Quick, &dies))
    });
    assert!(off.contains("TPC-B"));
    assert_eq!(
        off, one,
        "Figure 4 output must be bit-identical with batching off vs batch size 1"
    );
}

/// Run one die-wise flush cycle over a traced device and return
/// (command trace, per-page readback, cycle end).
fn traced_flush_cycle(batch_pages: usize) -> (Vec<String>, Vec<Vec<u8>>, u64) {
    let geometry = FlashGeometry::with_dies(4, 256, 32, 4096);
    let mut dev_cfg = DeviceConfig::new(geometry);
    dev_cfg.trace_capacity = 4096;
    let device = NandDevice::new(dev_cfg);
    let noftl = NoFtl::with_device(device, NoFtlConfig::new(geometry));
    let mut backend = NoFtlBackend::new(noftl);

    let mut pool = BufferPool::new(128, 4096);
    for p in 0..48u64 {
        pool.new_page(&mut backend, 0, p, |d| {
            d[0] = p as u8;
            d[4095] = !(p as u8);
        })
        .unwrap();
    }
    let mut flushers = FlusherPool::new(FlusherConfig {
        writers: 2,
        assignment: FlusherAssignment::DieWise,
        dirty_high_watermark: 0.1,
        dirty_low_watermark: 0.0,
        batch_pages,
    });
    let end = flushers.run_cycle(&mut pool, &mut backend, 0).unwrap();

    let trace: Vec<String> = backend
        .noftl()
        .device()
        .tracer()
        .entries()
        .iter()
        .map(|e| format!("{e:?}"))
        .collect();
    let mut contents = Vec::new();
    let mut buf = vec![0u8; 4096];
    for p in 0..48u64 {
        backend.noftl_mut().read(end, p, &mut buf).unwrap();
        contents.push(buf.clone());
    }
    (trace, contents, end)
}

#[test]
fn emulator_command_traces_identical_for_off_vs_batch_size_one() {
    let (trace_off, contents_off, end_off) = traced_flush_cycle(0);
    let (trace_one, contents_one, end_one) = traced_flush_cycle(1);
    assert!(!trace_off.is_empty());
    assert_eq!(
        trace_off, trace_one,
        "device command traces must be identical (commands, addresses, timing)"
    );
    assert_eq!(contents_off, contents_one);
    assert_eq!(end_off, end_one);
}

#[test]
fn page_contents_identical_for_all_batch_sizes() {
    let (_, reference, _) = traced_flush_cycle(0);
    for batch_pages in [1usize, 2, 3, 8, 64] {
        let (_, contents, _) = traced_flush_cycle(batch_pages);
        assert_eq!(
            contents, reference,
            "batch size {batch_pages} changed page contents"
        );
    }
}

#[test]
fn wal_log_contents_identical_for_all_batch_sizes() {
    use noftl::storage_engine::backend::MemBackend;
    use noftl::storage_engine::{LogRecord, WalManager};

    let reference: Option<Vec<(u64, LogRecord)>> = None;
    let mut reference = reference;
    for batch in [0usize, 1, 2, 4, 64] {
        let mut backend = MemBackend::new(512, 512);
        let mut wal = WalManager::new(32, 128, 512);
        wal.set_batch_pages(batch);
        for txn in 0..24u64 {
            wal.append(LogRecord::Begin { txn });
            wal.append(LogRecord::Update {
                txn,
                page: txn * 3,
                slot: 1,
                bytes: vec![txn as u8; 150],
            });
            wal.append(LogRecord::Commit { txn });
            if txn % 3 == 2 {
                wal.flush(&mut backend, 0).unwrap();
            }
        }
        wal.flush(&mut backend, 0).unwrap();
        let recovered = WalManager::recover_records(&mut backend, 32, 128, 512, 0);
        assert_eq!(recovered.len(), 72);
        match &reference {
            None => reference = Some(recovered),
            Some(r) => assert_eq!(&recovered, r, "batch {batch} changed the durable log"),
        }
    }
}
