//! Golden-trace equivalence of the batched multi-page write path and the
//! asynchronous per-die command queues.
//!
//! The batch write protocol promises that batching **off** (`NOFTL_BATCH=off`,
//! legacy one-`write_page`-per-page everywhere) and batching **on with batch
//! size 1** (every write routed through the `write_pages` API as a degenerate
//! single-page run) are indistinguishable: same Figure 3 / Figure 4 outputs,
//! same emulator command traces, same timing.  Larger batch sizes may change
//! *timing* (that is the point) but never page *contents*.
//!
//! The asynchronous submission protocol (PR 3) makes the same promise for
//! `NOFTL_ASYNC`: depth 1 — every submission waits for its predecessor — is
//! bit- and cycle-identical to the synchronous dispatch (`NOFTL_ASYNC`
//! unset/`off`); deeper windows may change timing but never contents, and a
//! crash with commands still in flight recovers exactly the durable prefix.
//!
//! These tests run the same library entry points the `fig3_gc_overhead` and
//! `fig4_dbwriters` bins print.

use std::sync::Mutex;

use noftl::nand_flash::{DeviceConfig, FlashGeometry, NandDevice};
use noftl::noftl_core::{FlusherAssignment, NoFtl, NoFtlConfig};
use noftl::storage_engine::backend::{NoFtlBackend, StorageBackend};
use noftl::storage_engine::flusher::{FlusherConfig, FlusherPool};
use noftl::storage_engine::BufferPool;
use noftl_bench::dbwriters::{render_table as render_fig4, run_dbwriter_scaling};
use noftl_bench::gc_overhead::{render_table as render_fig3, run_gc_overhead};
use noftl_bench::setup::{Benchmark, Scale};

/// Serialises the tests that flip the process-global `NOFTL_BATCH` knob.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_batch_env<R>(value: &str, f: impl FnOnce() -> R) -> R {
    std::env::set_var("NOFTL_BATCH", value);
    let r = f();
    std::env::remove_var("NOFTL_BATCH");
    r
}

fn with_async_env<R>(value: Option<&str>, f: impl FnOnce() -> R) -> R {
    let saved = std::env::var("NOFTL_ASYNC").ok();
    match value {
        Some(v) => std::env::set_var("NOFTL_ASYNC", v),
        None => std::env::remove_var("NOFTL_ASYNC"),
    }
    let r = f();
    match saved {
        Some(v) => std::env::set_var("NOFTL_ASYNC", v),
        None => std::env::remove_var("NOFTL_ASYNC"),
    }
    r
}

fn with_faults_env<R>(value: Option<&str>, f: impl FnOnce() -> R) -> R {
    let saved = std::env::var("NOFTL_FAULTS").ok();
    match value {
        Some(v) => std::env::set_var("NOFTL_FAULTS", v),
        None => std::env::remove_var("NOFTL_FAULTS"),
    }
    let r = f();
    match saved {
        Some(v) => std::env::set_var("NOFTL_FAULTS", v),
        None => std::env::remove_var("NOFTL_FAULTS"),
    }
    r
}

fn with_slo_env<R>(value: Option<&str>, f: impl FnOnce() -> R) -> R {
    let saved = std::env::var("NOFTL_SLO").ok();
    match value {
        Some(v) => std::env::set_var("NOFTL_SLO", v),
        None => std::env::remove_var("NOFTL_SLO"),
    }
    let r = f();
    match saved {
        Some(v) => std::env::set_var("NOFTL_SLO", v),
        None => std::env::remove_var("NOFTL_SLO"),
    }
    r
}

#[test]
fn fig3_output_identical_with_batching_off_vs_batch_size_one() {
    let _guard = ENV_LOCK.lock().unwrap();
    let off = with_batch_env("off", || render_fig3(&run_gc_overhead(Scale::Quick)));
    let one = with_batch_env("1", || render_fig3(&run_gc_overhead(Scale::Quick)));
    assert!(off.contains("TPC-C") && off.contains("TPC-B") && off.contains("TPC-E"));
    assert_eq!(
        off, one,
        "Figure 3 output must be bit-identical with batching off vs batch size 1"
    );
}

#[test]
fn fig4_output_identical_with_batching_off_vs_batch_size_one() {
    let _guard = ENV_LOCK.lock().unwrap();
    let dies = [1u32, 2, 4, 8];
    let off = with_batch_env("off", || {
        render_fig4(&run_dbwriter_scaling(Benchmark::TpcB, Scale::Quick, &dies))
    });
    let one = with_batch_env("1", || {
        render_fig4(&run_dbwriter_scaling(Benchmark::TpcB, Scale::Quick, &dies))
    });
    assert!(off.contains("TPC-B"));
    assert_eq!(
        off, one,
        "Figure 4 output must be bit-identical with batching off vs batch size 1"
    );
}

/// Run two die-wise flush cycles over a traced device and return
/// (command trace, per-page readback, completion barrier).  `async_depth` 1
/// is the synchronous dispatch; deeper windows submit through the per-die
/// command queues.
fn traced_flush_cycles(batch_pages: usize, async_depth: usize) -> (Vec<String>, Vec<Vec<u8>>, u64) {
    let geometry = FlashGeometry::with_dies(4, 256, 32, 4096);
    let mut dev_cfg = DeviceConfig::new(geometry);
    dev_cfg.trace_capacity = 4096;
    let device = NandDevice::new(dev_cfg);
    let noftl = NoFtl::with_device(device, NoFtlConfig::new(geometry));
    let mut backend = NoFtlBackend::new(noftl);
    backend.set_async_depth(async_depth);

    let mut pool = BufferPool::new(128, 4096);
    for p in 0..48u64 {
        pool.new_page(&mut backend, 0, p, |d| {
            d[0] = p as u8;
            d[4095] = !(p as u8);
        })
        .unwrap();
    }
    let mut flushers = FlusherPool::new(FlusherConfig {
        writers: 2,
        assignment: FlusherAssignment::DieWise,
        dirty_high_watermark: 0.1,
        dirty_low_watermark: 0.0,
        batch_pages,
        batch_global: false,
        async_depth,
    });
    let t = flushers.run_cycle(&mut pool, &mut backend, 0).unwrap();
    // A second cycle over re-dirtied pages: under the asynchronous model its
    // submissions pipeline behind the first cycle's on the device queues.
    for p in 0..48u64 {
        pool.new_page(&mut backend, 0, p, |d| {
            d[0] = p as u8 ^ 0x80;
            d[4095] = !(p as u8) ^ 0x80;
        })
        .unwrap();
    }
    let t = flushers.run_cycle(&mut pool, &mut backend, t).unwrap();
    let end = backend.drain(flushers.drain(t));

    let trace: Vec<String> = backend
        .noftl()
        .device()
        .tracer()
        .entries()
        .iter()
        .map(|e| format!("{e:?}"))
        .collect();
    let mut contents = Vec::new();
    let mut buf = vec![0u8; 4096];
    for p in 0..48u64 {
        backend.noftl_mut().read(end, p, &mut buf).unwrap();
        contents.push(buf.clone());
    }
    (trace, contents, end)
}

/// The single-cycle fixture used by the PR 2 batch-equivalence legs.
fn traced_flush_cycle(batch_pages: usize) -> (Vec<String>, Vec<Vec<u8>>, u64) {
    traced_flush_cycles(batch_pages, 1)
}

#[test]
fn emulator_command_traces_identical_for_off_vs_batch_size_one() {
    let (trace_off, contents_off, end_off) = traced_flush_cycle(0);
    let (trace_one, contents_one, end_one) = traced_flush_cycle(1);
    assert!(!trace_off.is_empty());
    assert_eq!(
        trace_off, trace_one,
        "device command traces must be identical (commands, addresses, timing)"
    );
    assert_eq!(contents_off, contents_one);
    assert_eq!(end_off, end_one);
}

#[test]
fn page_contents_identical_for_all_batch_sizes() {
    let (_, reference, _) = traced_flush_cycle(0);
    for batch_pages in [1usize, 2, 3, 8, 64] {
        let (_, contents, _) = traced_flush_cycle(batch_pages);
        assert_eq!(
            contents, reference,
            "batch size {batch_pages} changed page contents"
        );
    }
}

#[test]
fn fig3_output_identical_with_async_off_vs_depth_one() {
    let _guard = ENV_LOCK.lock().unwrap();
    let off = with_async_env(None, || render_fig3(&run_gc_overhead(Scale::Quick)));
    let one = with_async_env(Some("1"), || render_fig3(&run_gc_overhead(Scale::Quick)));
    assert_eq!(
        off, one,
        "Figure 3 output must be bit-identical with NOFTL_ASYNC unset vs depth 1"
    );
}

#[test]
fn fig4_output_identical_with_async_off_vs_depth_one() {
    let _guard = ENV_LOCK.lock().unwrap();
    let dies = [1u32, 2, 4, 8];
    let off = with_async_env(None, || {
        render_fig4(&run_dbwriter_scaling(Benchmark::TpcB, Scale::Quick, &dies))
    });
    let one = with_async_env(Some("1"), || {
        render_fig4(&run_dbwriter_scaling(Benchmark::TpcB, Scale::Quick, &dies))
    });
    assert_eq!(
        off, one,
        "Figure 4 output must be bit-identical with NOFTL_ASYNC unset vs depth 1"
    );
}

#[test]
fn fig3_output_identical_with_faults_unset_vs_off() {
    // The fault-injection plumbing must be a strict no-op when disabled:
    // `NOFTL_FAULTS=off` has to produce the same figures as a build that never
    // heard of the knob.
    let _guard = ENV_LOCK.lock().unwrap();
    let unset = with_faults_env(None, || render_fig3(&run_gc_overhead(Scale::Quick)));
    let off = with_faults_env(Some("off"), || render_fig3(&run_gc_overhead(Scale::Quick)));
    assert_eq!(
        unset, off,
        "Figure 3 output must be bit-identical with NOFTL_FAULTS unset vs off"
    );
}

#[test]
fn emulator_command_traces_identical_with_faults_unset_vs_off() {
    // Stronger than figure identity: the device-level command stream — every
    // opcode, address, issue and completion stamp — must match cycle for
    // cycle with the fault knob explicitly off.
    let _guard = ENV_LOCK.lock().unwrap();
    let (trace_unset, contents_unset, end_unset) = with_faults_env(None, || traced_flush_cycles(64, 1));
    let (trace_off, contents_off, end_off) =
        with_faults_env(Some("off"), || traced_flush_cycles(64, 1));
    assert!(!trace_unset.is_empty());
    assert_eq!(trace_unset, trace_off);
    assert_eq!(contents_unset, contents_off);
    assert_eq!(end_unset, end_off);
}

#[test]
fn emulator_command_traces_identical_for_sync_vs_async_depth_one() {
    // Depth 1 must be cycle-identical to the synchronous dispatch: same
    // commands, same addresses, same issue and completion stamps — across
    // *two* flush cycles, where a deeper window would start pipelining.
    let (trace_sync, contents_sync, end_sync) = traced_flush_cycles(64, 1);
    let (trace_one, contents_one, end_one) =
        traced_flush_cycles(64, storage_engine_parse_async("1"));
    assert!(!trace_sync.is_empty());
    assert_eq!(trace_sync, trace_one);
    assert_eq!(contents_sync, contents_one);
    assert_eq!(end_sync, end_one);
}

/// `NOFTL_ASYNC=1` must parse to the synchronous depth.
fn storage_engine_parse_async(v: &str) -> usize {
    let depth = noftl::storage_engine::backend::parse_async_depth(v);
    assert_eq!(depth, 1, "NOFTL_ASYNC=1 must mean synchronous dispatch");
    depth
}

#[test]
fn page_contents_identical_for_all_async_depths() {
    // Deeper queues change timing (that is the point) but never contents.
    let (_, reference, end_sync) = traced_flush_cycles(64, 1);
    for depth in [2usize, 4, 8, 16] {
        let (_, contents, end) = traced_flush_cycles(64, depth);
        assert_eq!(contents, reference, "async depth {depth} changed page contents");
        assert!(
            end <= end_sync,
            "async depth {depth} must never be slower than sync ({end} vs {end_sync})"
        );
    }
    // And the second cycle genuinely pipelines: depth 8 beats sync.
    let (_, _, end_async) = traced_flush_cycles(64, 8);
    assert!(
        end_async < end_sync,
        "two async cycles must overlap on the device: {end_async} vs {end_sync}"
    );
}

/// Mixed read/write fixture with real GC pressure: a small over-provisioned
/// device, repeated skewed overwrite waves (which cross the GC watermarks and
/// force relocations) flushed by die-wise writers, interleaved with batched
/// miss-fill reads ([`BufferPool::prefetch`]) and point reads.  The driver is
/// poll-driven: reads return completion tickets that are collected, not
/// chained, and the final barrier is the quiesce over all windows and queues.
/// Returns (command trace, final per-lpn contents, completion barrier).
fn traced_mixed_read_write(async_depth: usize) -> (Vec<String>, Vec<Vec<u8>>, u64) {
    let geometry = FlashGeometry::with_dies(4, 16, 8, 2048);
    let mut dev_cfg = DeviceConfig::new(geometry);
    dev_cfg.trace_capacity = 1 << 16;
    let device = NandDevice::new(dev_cfg);
    let mut cfg = NoFtlConfig::new(geometry);
    cfg.op_ratio = 0.40;
    cfg.gc_low_watermark = 2;
    cfg.gc_high_watermark = 3;
    cfg.async_queue_depth = async_depth;
    let noftl = NoFtl::with_device(device, cfg);
    let mut backend = NoFtlBackend::new(noftl);

    let lpns = backend.num_pages();
    let page_size = backend.page_size();
    let mut pool = BufferPool::new(96, page_size);
    pool.set_async_depth(async_depth);
    let mut flushers = FlusherPool::new(FlusherConfig {
        writers: 2,
        assignment: FlusherAssignment::DieWise,
        dirty_high_watermark: 0.1,
        dirty_low_watermark: 0.0,
        batch_pages: 16,
        batch_global: false,
        async_depth,
    });

    let mut now = 0u64;
    let mut read_horizon = 0u64;
    for round in 0u8..6 {
        // Dirty this round's pages in waves and flush each wave.  Under async
        // the cycle returns its submission time, so successive waves pipeline
        // on the per-die queues; at depth 1 every wave waits (sync).
        let targets: Vec<u64> = (0..lpns)
            .filter(|l| round == 0 || l % 3 != 0)
            .collect();
        for wave in targets.chunks(64) {
            for &l in wave {
                pool.new_page(&mut backend, now, l, |d| {
                    d[0] = round ^ l as u8;
                    d[page_size - 1] = !(round ^ l as u8);
                })
                .unwrap();
            }
            now = flushers.run_cycle(&mut pool, &mut backend, now).unwrap();
        }
        // Batched miss fills of a rotating subset, submitted at the driver's
        // clock while this round's writes may still be in flight on the
        // queues; their completion tickets are collected, not chained.
        let subset: Vec<u64> = (0..lpns).filter(|l| l % 5 == (round as u64) % 5).collect();
        let done = pool.prefetch(&mut backend, now, &subset).unwrap();
        read_horizon = read_horizon.max(done);
        // A few point reads straight through the backend.
        let mut buf = vec![0u8; page_size];
        for l in (0..lpns).step_by(37) {
            let c = backend.read_page(now, l, &mut buf).unwrap();
            read_horizon = read_horizon.max(c.completed_at);
        }
    }
    // Quiesce: flusher windows, pool read window, device queues.
    let t = flushers.drain(now.max(read_horizon));
    let t = pool.drain_reads(t);
    let end = backend.drain(t);
    pool.flush_all(&mut backend, end).unwrap();
    let end = backend.drain(end);

    let trace: Vec<String> = backend
        .noftl()
        .device()
        .tracer()
        .entries()
        .iter()
        .map(|e| format!("{e:?}"))
        .collect();
    let mut contents = Vec::new();
    let mut buf = vec![0u8; page_size];
    for l in 0..lpns {
        backend.noftl_mut().read(end, l, &mut buf).unwrap();
        contents.push(buf.clone());
    }
    (trace, contents, end)
}

#[test]
fn read_command_traces_identical_for_sync_vs_async_depth_one() {
    // Depth 1 must be cycle-identical to the synchronous dispatch on a mixed
    // read/write workload with GC running: same commands, same addresses,
    // same stamps — for reads, programs, erases and relocations alike.
    let (trace_sync, contents_sync, end_sync) = traced_mixed_read_write(1);
    let (trace_one, contents_one, end_one) =
        traced_mixed_read_write(storage_engine_parse_async("1"));
    assert!(!trace_sync.is_empty());
    assert!(
        trace_sync.iter().any(|e| e.contains("Read")),
        "fixture must issue reads"
    );
    assert!(
        trace_sync.iter().any(|e| e.contains("Erase")),
        "fixture must trigger GC"
    );
    assert_eq!(trace_sync, trace_one);
    assert_eq!(contents_sync, contents_one);
    assert_eq!(end_sync, end_one);
}

#[test]
fn page_contents_identical_for_all_async_read_depths_with_concurrent_gc() {
    // Deeper queues change timing (that is the point) but never contents —
    // even with GC relocating pages between and under the reads.
    let (_, reference, end_sync) = traced_mixed_read_write(1);
    for depth in [2usize, 4, 8, 16] {
        let (_, contents, end) = traced_mixed_read_write(depth);
        assert_eq!(
            contents, reference,
            "async depth {depth} changed page contents under GC"
        );
        assert!(
            end <= end_sync,
            "async depth {depth} must never be slower than sync ({end} vs {end_sync})"
        );
    }
    let (_, _, end_async) = traced_mixed_read_write(8);
    assert!(
        end_async < end_sync,
        "the mixed workload must genuinely overlap under async: {end_async} vs {end_sync}"
    );
}

/// Heap-scan fixture over a traced NoFTL device: seeds a heap file of `pages`
/// slotted pages (several records each), checkpoints it to the backend, then
/// runs one full scan through a [`ScanPrefetcher`] with the given window cap
/// at the given async depth.  Returns (visit sequence, device command trace
/// of the scan, scan end time).
fn traced_heap_scan(
    window: usize,
    async_depth: usize,
) -> (Vec<(u64, u16, u8)>, Vec<String>, u64) {
    use noftl::storage_engine::free_space::FreeSpaceManager;
    use noftl::storage_engine::readahead::ScanPrefetcher;
    use noftl::storage_engine::{HeapFile, WalManager};

    let geometry = FlashGeometry::with_dies(4, 64, 32, 4096);
    let mut dev_cfg = DeviceConfig::new(geometry);
    dev_cfg.trace_capacity = 1 << 16;
    let device = NandDevice::new(dev_cfg);
    let mut cfg = NoFtlConfig::new(geometry);
    cfg.async_queue_depth = async_depth;
    let noftl = NoFtl::with_device(device, cfg);
    let mut backend = NoFtlBackend::new(noftl);

    let mut pool = BufferPool::new(24, 4096);
    pool.set_async_depth(async_depth);
    let mut fsm = FreeSpaceManager::new(0, 2000);
    let mut wal = WalManager::new(2000, 64, 4096);
    let mut heap = HeapFile::new("t");
    let mut now = 0u64;
    for i in 0..600u64 {
        let mut rec = vec![0u8; 800];
        rec[..8].copy_from_slice(&i.to_le_bytes());
        rec[8] = i as u8;
        let (_, t) = heap
            .insert(&mut pool, &mut backend, &mut fsm, &mut wal, 1, now, &rec)
            .unwrap();
        now = t;
    }
    now = pool.flush_all(&mut backend, now).unwrap();
    let t0 = backend.drain(pool.drain_reads(now));
    let trace_before = backend.noftl().device().tracer().entries().len();

    let mut ra = ScanPrefetcher::new(window, async_depth);
    let mut seen: Vec<(u64, u16, u8)> = Vec::new();
    let (count, end) = heap
        .scan_with_readahead(&mut pool, &mut backend, &mut ra, t0, |rid, r| {
            seen.push((rid.page, rid.slot, r[8]));
        })
        .unwrap();
    assert_eq!(count, 600);
    let end = backend.drain(pool.drain_reads(end));
    let trace: Vec<String> = backend
        .noftl()
        .device()
        .tracer()
        .entries()
        .iter()
        .skip(trace_before)
        .map(|e| format!("{e:?}"))
        .collect();
    (seen, trace, end - t0)
}

#[test]
fn heap_scan_readahead_off_and_depth_one_are_cycle_identical_to_frame_at_a_time() {
    // Window 0 (readahead off) and window > 0 at depth 1 must both be
    // command- and cycle-identical to the frame-at-a-time scan: same device
    // commands, same addresses, same stamps, same scan duration.
    let (seq_base, trace_base, dur_base) = traced_heap_scan(0, 1);
    assert!(!trace_base.is_empty(), "the scan must read from the device");
    for (window, depth, label) in [
        (64, 1, "window 64 / depth 1"),
        (0, 8, "window 0 / depth 8"),
    ] {
        let (seq, trace, dur) = traced_heap_scan(window, depth);
        assert_eq!(seq, seq_base, "{label} changed the visit sequence");
        if depth == 1 {
            assert_eq!(trace, trace_base, "{label} changed the device trace");
            assert_eq!(dur, dur_base, "{label} changed the scan duration");
        }
    }
    // Window 0 at depth 8 is the frame-at-a-time path of *that* depth: its
    // trace must equal a second run of itself (determinism) and its visit
    // sequence the baseline's.
    let (seq_a, trace_a, dur_a) = traced_heap_scan(0, 8);
    let (seq_b, trace_b, dur_b) = traced_heap_scan(0, 8);
    assert_eq!(seq_a, seq_b);
    assert_eq!(trace_a, trace_b);
    assert_eq!(dur_a, dur_b);
    assert_eq!(seq_a, seq_base);
}

#[test]
fn heap_scan_readahead_visits_identical_sequence_at_any_window_and_depth() {
    let (seq_base, _, dur_base) = traced_heap_scan(0, 1);
    for window in [4usize, 16, 64] {
        for depth in [2usize, 4, 8] {
            let (seq, _, dur) = traced_heap_scan(window, depth);
            assert_eq!(
                seq, seq_base,
                "window {window} depth {depth} changed the record sequence"
            );
            assert!(
                dur <= dur_base,
                "readahead must never slow a scan down (window {window} depth {depth}: {dur} vs {dur_base})"
            );
        }
    }
    // And the streaming pipeline genuinely overlaps: the widest window at
    // depth 8 strictly beats frame-at-a-time.
    let (_, _, dur_ra) = traced_heap_scan(64, 8);
    assert!(
        dur_ra < dur_base,
        "readahead at 4 dies depth 8 must beat frame-at-a-time: {dur_ra} vs {dur_base}"
    );
}

#[test]
fn btree_range_readahead_visits_identical_key_sequence() {
    use noftl::storage_engine::free_space::FreeSpaceManager;
    use noftl::storage_engine::readahead::ScanPrefetcher;
    use noftl::storage_engine::btree::BTree;

    let run = |window: usize, depth: usize| -> (Vec<(u64, u64)>, u64) {
        let geometry = FlashGeometry::with_dies(4, 64, 32, 4096);
        let mut cfg = NoFtlConfig::new(geometry);
        cfg.async_queue_depth = depth;
        let noftl = NoFtl::new(cfg);
        let mut backend = NoFtlBackend::new(noftl);
        let mut pool = BufferPool::new(8, 4096);
        pool.set_async_depth(depth);
        let mut fsm = FreeSpaceManager::new(0, 2000);
        let (mut tree, _) = BTree::create(&mut pool, &mut backend, &mut fsm, 0).unwrap();
        let mut now = 0u64;
        for k in 0..3000u64 {
            // Insert in a shuffled-ish order so leaves split realistically.
            let key = (k * 7919) % 3000;
            let (_, t) = tree
                .insert(&mut pool, &mut backend, &mut fsm, now, key, key * 13)
                .unwrap();
            now = t;
        }
        now = pool.flush_all(&mut backend, now).unwrap();
        let t0 = backend.drain(pool.drain_reads(now));
        let mut ra = ScanPrefetcher::new(window, depth);
        let mut seen = Vec::new();
        let (count, end) = tree
            .range_with_readahead(&mut pool, &mut backend, &mut ra, t0, 100, 2700, |k, v| {
                seen.push((k, v))
            })
            .unwrap();
        assert_eq!(count, 2601);
        let end = backend.drain(pool.drain_reads(end));
        (seen, end - t0)
    };
    let (seq_base, dur_base) = run(0, 1);
    assert_eq!(seq_base.len(), 2601);
    assert!(seq_base.windows(2).all(|w| w[0].0 < w[1].0), "keys in order");
    for (window, depth) in [(4, 2), (16, 8), (64, 8), (64, 1), (0, 8)] {
        let (seq, dur) = run(window, depth);
        assert_eq!(seq, seq_base, "window {window} depth {depth} changed the key sequence");
        assert!(dur <= dur_base, "window {window} depth {depth} slowed the range read");
    }
    let (_, dur_ra) = run(64, 8);
    assert!(
        dur_ra < dur_base,
        "leaf-chain readahead at depth 8 must beat frame-at-a-time: {dur_ra} vs {dur_base}"
    );
}

#[test]
fn readahead_never_evicts_pinned_pages_and_never_loses_dirty_data() {
    use noftl::storage_engine::free_space::FreeSpaceManager;
    use noftl::storage_engine::readahead::ScanPrefetcher;
    use noftl::storage_engine::{HeapFile, StorageBackend as _, WalManager};

    let geometry = FlashGeometry::with_dies(4, 64, 32, 4096);
    let mut cfg = NoFtlConfig::new(geometry);
    cfg.async_queue_depth = 8;
    let noftl = NoFtl::new(cfg);
    let mut backend = NoFtlBackend::new(noftl);
    let mut pool = BufferPool::new(12, 4096);
    pool.set_async_depth(8);
    let mut fsm = FreeSpaceManager::new(0, 2000);
    let mut wal = WalManager::new(2000, 64, 4096);
    let mut heap = HeapFile::new("t");
    let mut now = 0u64;
    for i in 0..400u64 {
        let mut rec = vec![0u8; 900];
        rec[..8].copy_from_slice(&i.to_le_bytes());
        let (_, t) = heap
            .insert(&mut pool, &mut backend, &mut fsm, &mut wal, 1, now, &rec)
            .unwrap();
        now = t;
    }
    now = pool.flush_all(&mut backend, now).unwrap();
    now = backend.drain(pool.drain_reads(now));
    // A page the "scan" (some other operator) holds pinned, plus a dirty
    // page awaiting flush, both resident while readahead floods the pool.
    let pinned_page = heap.pages()[0];
    let dirty_page = heap.pages()[1];
    let (_, t) = pool
        .with_page(&mut backend, now, pinned_page, |_| ())
        .unwrap();
    now = t;
    assert!(pool.pin(pinned_page));
    let (_, t) = pool
        .with_page_mut(&mut backend, now, dirty_page, |d| d[4000] = 0xEE)
        .unwrap();
    now = t;
    // Scan the whole table with an aggressive window through the tiny pool.
    let mut ra = ScanPrefetcher::new(64, 8);
    let (count, end) = heap
        .scan_with_readahead(&mut pool, &mut backend, &mut ra, now, |_, _| {})
        .unwrap();
    assert_eq!(count, 400);
    let end = backend.drain(pool.drain_reads(end));
    // The pinned page must have survived every prefetch batch.
    assert!(
        pool.contains(pinned_page),
        "readahead must never evict a pinned page"
    );
    pool.unpin(pinned_page);
    // The dirty page's update must not have been lost: either still resident
    // and dirty, or written back to the backend during a (legitimate)
    // dirty-victim eviction.
    let mut buf = vec![0u8; 4096];
    if pool.is_dirty(dirty_page) {
        let (seen, _) = pool
            .with_page(&mut backend, end, dirty_page, |d| d[4000])
            .unwrap();
        assert_eq!(seen, 0xEE, "dirty page content lost in the pool");
    } else {
        backend.read_page(end, dirty_page, &mut buf).unwrap();
        assert_eq!(buf[4000], 0xEE, "dirty page evicted without write-back");
    }
}

#[test]
fn async_crash_with_commands_in_flight_recovers_exact_durable_prefix() {
    // A WAL force submitted through the asynchronous path with commands still
    // in flight: killing the system at any instant must leave recovery with
    // exactly the contiguous durable prefix — every log page whose program
    // had completed by the kill, nothing from the in-flight tail.
    use noftl::nand_flash::OpKind;
    use noftl::storage_engine::backend::{MemBackend, StorageBackend};
    use noftl::storage_engine::{LogRecord, WalManager};
    use std::collections::HashMap;

    let geometry = FlashGeometry::with_dies(8, 1024, 32, 4096);
    let mut dev_cfg = DeviceConfig::new(geometry);
    dev_cfg.trace_capacity = 1 << 16;
    let device = NandDevice::new(dev_cfg);
    let noftl = NoFtl::with_device(device, NoFtlConfig::new(geometry));
    let mut backend = NoFtlBackend::new(noftl);
    backend.set_async_depth(4);

    let (log_start, log_pages, page_size) = (0u64, 64u64, 4096usize);
    let mut wal = WalManager::new(log_start, log_pages, page_size);
    // 3-page groups over 8 dies: consecutive groups hit rotating, partially
    // overlapping die sets, so program completions spread over many instants.
    wal.set_batch_pages(3);
    wal.set_async_depth(4);
    for txn in 0..16u64 {
        wal.append(LogRecord::Update {
            txn,
            page: txn,
            slot: 0,
            bytes: vec![txn as u8; 4000],
        });
    }
    let done = wal.flush(&mut backend, 0).unwrap();
    let done = backend.drain(wal.drain(done));

    // Per-log-page program completion times, from the device's command trace
    // (the OOB lpn of a NoFTL write is the page id).
    let mut page_done: HashMap<u64, u64> = HashMap::new();
    for e in backend.noftl().device().tracer().entries() {
        if e.kind == OpKind::Program {
            if let Some(lpn) = e.lpn {
                if lpn < log_start + log_pages {
                    let slot = page_done.entry(lpn).or_insert(0);
                    *slot = (*slot).max(e.completed_at);
                }
            }
        }
    }
    assert!(page_done.len() >= 16, "force must have written 16+ log pages");
    let all_records = wal.records().to_vec();
    let mut kills: Vec<u64> = page_done.values().copied().collect();
    kills.sort_unstable();
    kills.dedup();
    assert!(kills.len() > 2, "completions must spread over several instants");

    let mut prev_recovered = 0usize;
    let mut saw_partial = false;
    for &kill in std::iter::once(&0u64).chain(kills.iter()) {
        // Rebuild the surviving medium: only pages whose program completed by
        // the kill instant hold their content.
        let mut survived = MemBackend::new(page_size, log_start + log_pages);
        let mut buf = vec![0u8; page_size];
        for (&page_id, &completed) in &page_done {
            if completed <= kill {
                backend.read_page(done, page_id, &mut buf).unwrap();
                survived.write_page(0, page_id, &buf).unwrap();
            }
        }
        let recovered =
            WalManager::recover_records(&mut survived, log_start, log_pages, page_size, 0);
        // Exact prefix: same LSNs, same records, in order.
        assert_eq!(
            recovered.as_slice(),
            &all_records[..recovered.len()],
            "recovery at kill={kill} must replay an exact prefix"
        );
        assert!(
            recovered.len() >= prev_recovered,
            "a later kill can only recover more"
        );
        prev_recovered = recovered.len();
        if !recovered.is_empty() && recovered.len() < all_records.len() {
            saw_partial = true;
        }
    }
    assert!(
        saw_partial,
        "some kill instant must catch commands genuinely in flight"
    );
    assert_eq!(
        prev_recovered,
        all_records.len(),
        "killing after the last completion recovers everything"
    );
}

#[test]
fn wal_log_contents_identical_for_all_batch_sizes() {
    use noftl::storage_engine::backend::MemBackend;
    use noftl::storage_engine::{LogRecord, WalManager};

    let reference: Option<Vec<(u64, LogRecord)>> = None;
    let mut reference = reference;
    for batch in [0usize, 1, 2, 4, 64] {
        let mut backend = MemBackend::new(512, 512);
        let mut wal = WalManager::new(32, 128, 512);
        wal.set_batch_pages(batch);
        for txn in 0..24u64 {
            wal.append(LogRecord::Begin { txn });
            wal.append(LogRecord::Update {
                txn,
                page: txn * 3,
                slot: 1,
                bytes: vec![txn as u8; 150],
            });
            wal.append(LogRecord::Commit { txn });
            if txn % 3 == 2 {
                wal.flush(&mut backend, 0).unwrap();
            }
        }
        wal.flush(&mut backend, 0).unwrap();
        let recovered = WalManager::recover_records(&mut backend, 32, 128, 512, 0);
        assert_eq!(recovered.len(), 72);
        match &reference {
            None => reference = Some(recovered),
            Some(r) => assert_eq!(&recovered, r, "batch {batch} changed the durable log"),
        }
    }
}

// ---------------------------------------------------------------------------
// NOFTL_THREADS: single-client leg of the concurrent engine (PR 7)
// ---------------------------------------------------------------------------

fn with_threads_env<R>(value: Option<&str>, f: impl FnOnce() -> R) -> R {
    let saved = std::env::var("NOFTL_THREADS").ok();
    match value {
        Some(v) => std::env::set_var("NOFTL_THREADS", v),
        None => std::env::remove_var("NOFTL_THREADS"),
    }
    let r = f();
    match saved {
        Some(v) => std::env::set_var("NOFTL_THREADS", v),
        None => std::env::remove_var("NOFTL_THREADS"),
    }
    r
}

/// `NOFTL_THREADS=1` and every "off" spelling must mean the single-threaded
/// path (the figure pipelines run the plain [`StorageEngine`] there).
#[test]
fn threads_knob_single_client_spellings() {
    use noftl::storage_engine::backend::parse_threads;
    for v in ["1", "off", "false", "0", ""] {
        assert_eq!(parse_threads(v), 1, "NOFTL_THREADS={v:?} must mean one client");
    }
}

#[test]
fn fig3_output_identical_with_threads_unset_vs_one() {
    let _guard = ENV_LOCK.lock().unwrap();
    let unset = with_threads_env(None, || render_fig3(&run_gc_overhead(Scale::Quick)));
    let one = with_threads_env(Some("1"), || render_fig3(&run_gc_overhead(Scale::Quick)));
    assert!(unset.contains("TPC-B"));
    assert_eq!(
        unset, one,
        "Figure 3 output must be bit-identical with NOFTL_THREADS unset vs 1"
    );
}

#[test]
fn fig4_output_identical_with_threads_unset_vs_one() {
    let _guard = ENV_LOCK.lock().unwrap();
    let dies = [1u32, 2, 4, 8];
    let unset = with_threads_env(None, || {
        render_fig4(&run_dbwriter_scaling(Benchmark::TpcB, Scale::Quick, &dies))
    });
    let one = with_threads_env(Some("1"), || {
        render_fig4(&run_dbwriter_scaling(Benchmark::TpcB, Scale::Quick, &dies))
    });
    assert_eq!(
        unset, one,
        "Figure 4 output must be bit-identical with NOFTL_THREADS unset vs 1"
    );
}

/// The structural pin behind the knob: one client driving the concurrent
/// engine at one shard must be **bit- and cycle-identical** to the plain
/// single-threaded engine — same device command trace, same durable WAL
/// records, same commit count, same WAL forces, same buffer-pool counters,
/// same end-to-end virtual time.
mod threads_single_client_identity {
    use noftl::nand_flash::{DeviceConfig, FlashGeometry, NandDevice};
    use noftl::noftl_core::{NoFtl, NoFtlConfig};
    use noftl::sim_utils::time::SimInstant;
    use noftl::storage_engine::backend::NoFtlBackend;
    use noftl::storage_engine::{
        ConcurrentEngine, EngineConfig, EngineOps, FlusherConfig, LogRecord, Lsn,
        StorageEngine,
    };
    use noftl::workloads::{TpcB, TpcBConfig, Workload};

    /// What a run leaves behind; every field must match across the legs.
    #[derive(Debug, PartialEq)]
    struct RunImage {
        trace: Vec<String>,
        wal: Vec<(Lsn, LogRecord)>,
        end: SimInstant,
        committed: u64,
        forces: u64,
        buffer: noftl::storage_engine::buffer::BufferStats,
    }

    fn traced_backend(depth: usize) -> NoFtlBackend {
        let geometry = FlashGeometry::with_dies(4, 256, 32, 4096);
        let mut cfg = NoFtlConfig::new(geometry);
        cfg.async_queue_depth = depth;
        let mut dev_cfg = DeviceConfig::new(geometry);
        dev_cfg.store_data = cfg.store_data;
        dev_cfg.trace_capacity = 1 << 16;
        let noftl = NoFtl::with_device(NandDevice::new(dev_cfg), cfg);
        let mut backend = NoFtlBackend::new(noftl);
        backend.noftl_mut().set_async_depth(depth);
        backend
    }

    fn engine_config(depth: usize) -> EngineConfig {
        let mut ecfg = EngineConfig::new();
        ecfg.buffer_frames = 96;
        ecfg.log_pages = 64;
        let mut flushers = FlusherConfig::die_wise(2);
        flushers.async_depth = depth;
        ecfg.flushers = flushers;
        ecfg.readahead_window = 16;
        ecfg
    }

    /// Identical TPC-B work through the [`EngineOps`] surface — the same
    /// generic code path drives both legs, so any divergence comes from the
    /// engines, not the driver.
    fn drive<E: EngineOps>(engine: &mut E) -> SimInstant {
        let mut w = TpcB::new(TpcBConfig {
            scale_factor: 1,
            tellers_per_branch: 4,
            accounts_per_branch: 80,
            seed: 42,
        });
        let mut now = w.setup(engine, 0).expect("setup");
        for _ in 0..30 {
            let (end, _) = w.run_transaction(engine, 0, now).expect("transaction");
            now = engine.maybe_flush(end).expect("flush").max(end);
        }
        let t = engine.checkpoint(now).expect("checkpoint");
        engine.quiesce(t)
    }

    fn single_image(depth: usize) -> RunImage {
        let mut engine = StorageEngine::new(Box::new(traced_backend(depth)), engine_config(depth));
        let end = drive(&mut engine);
        RunImage {
            trace: engine
                .backend()
                .as_any()
                .and_then(|a| a.downcast_ref::<NoFtlBackend>())
                .expect("NoFTL backend")
                .noftl()
                .device()
                .tracer()
                .entries()
                .iter()
                .map(|e| format!("{e:?}"))
                .collect(),
            wal: engine.wal().records().to_vec(),
            end,
            committed: engine.committed(),
            forces: engine.wal().forces(),
            buffer: engine.buffer_stats(),
        }
    }

    fn concurrent_image(depth: usize) -> RunImage {
        let engine = ConcurrentEngine::new(Box::new(traced_backend(depth)), engine_config(depth), 1);
        let mut session = engine.session();
        let end = drive(&mut session);
        drop(session);
        RunImage {
            trace: engine.with_backend(|b| {
                b.as_any()
                    .and_then(|a| a.downcast_ref::<NoFtlBackend>())
                    .expect("NoFTL backend")
                    .noftl()
                    .device()
                    .tracer()
                    .entries()
                    .iter()
                    .map(|e| format!("{e:?}"))
                    .collect()
            }),
            wal: engine.with_wal(|w| w.records().to_vec()),
            end,
            committed: engine.committed(),
            forces: engine.log_forces(),
            buffer: engine.buffer_stats(),
        }
    }

    #[test]
    fn one_shard_one_client_is_trace_identical_to_single_threaded_sync() {
        let single = single_image(1);
        let concurrent = concurrent_image(1);
        assert_eq!(
            single, concurrent,
            "one client over the 1-shard concurrent engine must be bit- and \
             cycle-identical to the single-threaded engine (sync dispatch)"
        );
    }

    #[test]
    fn one_shard_one_client_is_trace_identical_to_single_threaded_async() {
        let single = single_image(8);
        let concurrent = concurrent_image(8);
        assert_eq!(
            single, concurrent,
            "one client over the 1-shard concurrent engine must be bit- and \
             cycle-identical to the single-threaded engine (async depth 8)"
        );
    }
}

fn with_redundancy_env<R>(value: Option<&str>, f: impl FnOnce() -> R) -> R {
    let saved = std::env::var("NOFTL_REDUNDANCY").ok();
    match value {
        Some(v) => std::env::set_var("NOFTL_REDUNDANCY", v),
        None => std::env::remove_var("NOFTL_REDUNDANCY"),
    }
    let r = f();
    match saved {
        Some(v) => std::env::set_var("NOFTL_REDUNDANCY", v),
        None => std::env::remove_var("NOFTL_REDUNDANCY"),
    }
    r
}

#[test]
fn fig3_output_identical_with_redundancy_unset_vs_off() {
    // The redundancy plumbing (parity stripes, mirror copies, degraded
    // reads, online rebuild) must be a strict no-op when disabled:
    // `NOFTL_REDUNDANCY=off` has to produce the same figures as a build that
    // never heard of the knob.
    let _guard = ENV_LOCK.lock().unwrap();
    let unset = with_redundancy_env(None, || render_fig3(&run_gc_overhead(Scale::Quick)));
    let off = with_redundancy_env(Some("off"), || render_fig3(&run_gc_overhead(Scale::Quick)));
    assert_eq!(
        unset, off,
        "Figure 3 output must be bit-identical with NOFTL_REDUNDANCY unset vs off"
    );
}

#[test]
fn fig4_output_identical_with_redundancy_unset_vs_off() {
    let _guard = ENV_LOCK.lock().unwrap();
    let dies = [1u32, 2, 4, 8];
    let unset = with_redundancy_env(None, || {
        render_fig4(&run_dbwriter_scaling(Benchmark::TpcB, Scale::Quick, &dies))
    });
    let off = with_redundancy_env(Some("off"), || {
        render_fig4(&run_dbwriter_scaling(Benchmark::TpcB, Scale::Quick, &dies))
    });
    assert_eq!(
        unset, off,
        "Figure 4 output must be bit-identical with NOFTL_REDUNDANCY unset vs off"
    );
}

#[test]
fn emulator_command_traces_identical_with_redundancy_unset_vs_off() {
    // Stronger than figure identity: the device-level command stream — every
    // opcode, address, issue and completion stamp — must match cycle for
    // cycle across two flush cycles with the redundancy knob explicitly off.
    let _guard = ENV_LOCK.lock().unwrap();
    let (trace_unset, contents_unset, end_unset) =
        with_redundancy_env(None, || traced_flush_cycles(64, 1));
    let (trace_off, contents_off, end_off) =
        with_redundancy_env(Some("off"), || traced_flush_cycles(64, 1));
    assert!(!trace_unset.is_empty());
    assert_eq!(trace_unset, trace_off);
    assert_eq!(contents_unset, contents_off);
    assert_eq!(end_unset, end_off);
}

#[test]
fn fig3_output_identical_with_slo_unset_vs_off() {
    // The SLO plumbing (admission control, throttled waves, proactive GC)
    // must be a strict no-op when disabled: `NOFTL_SLO=off` has to produce
    // the same figures as a build that never heard of the knob.
    let _guard = ENV_LOCK.lock().unwrap();
    let unset = with_slo_env(None, || render_fig3(&run_gc_overhead(Scale::Quick)));
    let off = with_slo_env(Some("off"), || render_fig3(&run_gc_overhead(Scale::Quick)));
    assert_eq!(
        unset, off,
        "Figure 3 output must be bit-identical with NOFTL_SLO unset vs off"
    );
}

/// The structural pin behind `NOFTL_SLO`: with the knob unset or `off`, an
/// engine built from the env-derived defaults must be **bit- and
/// cycle-identical** to the pre-SLO engine — same device command trace, same
/// durable WAL records, same commit count, same forces, same end time — for
/// a workload driven through the admission-aware `begin_admitted` surface.
mod slo_off_identity {
    use super::{with_slo_env, ENV_LOCK};
    use noftl::nand_flash::{DeviceConfig, FlashGeometry, NandDevice};
    use noftl::noftl_core::{NoFtl, NoFtlConfig};
    use noftl::sim_utils::time::SimInstant;
    use noftl::storage_engine::backend::NoFtlBackend;
    use noftl::storage_engine::{EngineConfig, EngineOps, FlusherConfig, StorageEngine};
    use noftl::workloads::{Arrivals, OpenLoopConfig, OpenLoopDriver};

    /// What a run leaves behind; every field must match across the legs.
    #[derive(Debug, PartialEq)]
    struct SloImage {
        trace: Vec<String>,
        end: SimInstant,
        committed: u64,
        forces: u64,
        completed: u64,
        shed: u64,
        observed: (u64, u64, u64),
        percentiles: (u64, u64, u64),
    }

    /// Build everything from the env-derived defaults *inside* the env
    /// closure, so `EngineConfig::new()` and `NoFtlBackend::new()` read the
    /// leg's `NOFTL_SLO` value.
    fn open_loop_image() -> SloImage {
        let geometry = FlashGeometry::with_dies(4, 256, 32, 4096);
        let ncfg = NoFtlConfig::new(geometry);
        let mut dev_cfg = DeviceConfig::new(geometry);
        dev_cfg.store_data = ncfg.store_data;
        dev_cfg.trace_capacity = 1 << 16;
        let noftl = NoFtl::with_device(NandDevice::new(dev_cfg), ncfg);
        let backend = NoFtlBackend::new(noftl);
        let mut ecfg = EngineConfig::new();
        ecfg.buffer_frames = 96;
        ecfg.log_pages = 64;
        let mut flushers = FlusherConfig::die_wise(2);
        flushers.async_depth = 1;
        ecfg.flushers = flushers;
        let mut engine = StorageEngine::new(Box::new(backend), ecfg);

        let mut olcfg = OpenLoopConfig::new(120, Arrivals::Fixed { interval_ns: 5_000 });
        olcfg.rows = 200;
        olcfg.row_bytes = 64;
        let driver = OpenLoopDriver::new(olcfg);
        let t0 = driver.setup(&mut engine, 0).expect("setup");
        let mut slots: [&mut dyn EngineOps; 1] = [&mut engine];
        let report = driver.run(&mut slots, t0).expect("run");
        SloImage {
            trace: engine
                .backend()
                .as_any()
                .and_then(|a| a.downcast_ref::<NoFtlBackend>())
                .expect("NoFTL backend")
                .noftl()
                .device()
                .tracer()
                .entries()
                .iter()
                .map(|e| format!("{e:?}"))
                .collect(),
            end: report.duration_ns,
            committed: engine.committed(),
            forces: engine.log_forces(),
            completed: report.completed,
            shed: report.shed,
            observed: report.observed,
            percentiles: report.latency_percentiles(),
        }
    }

    #[test]
    fn open_loop_run_identical_with_slo_unset_vs_off() {
        let _guard = ENV_LOCK.lock().unwrap();
        let unset = with_slo_env(None, open_loop_image);
        let off = with_slo_env(Some("off"), open_loop_image);
        assert!(!unset.trace.is_empty());
        assert_eq!(unset.shed, 0, "no admission window without the knob");
        assert_eq!(
            unset, off,
            "an open-loop run must be bit- and cycle-identical with \
             NOFTL_SLO unset vs off"
        );
    }

    #[test]
    fn slo_on_leg_runs_the_same_workload_with_truthful_stats() {
        // Not an identity leg — `on` may change timing (that is the point) —
        // but the env-derived on leg must stay consistent: every begin is
        // either admitted or shed, and the engine's counters say which.
        let _guard = ENV_LOCK.lock().unwrap();
        let on = with_slo_env(Some("on"), open_loop_image);
        assert_eq!(
            on.observed.0 + on.observed.2,
            132,
            "every offered request (warmup included) is admitted or shed"
        );
    }
}
