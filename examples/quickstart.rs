//! Quickstart: build a NoFTL-backed storage engine on emulated native Flash,
//! create a table and an index, run a few transactions and inspect the Flash
//! statistics the DBMS now has first-hand access to.
//!
//! Run with: `cargo run --release --example quickstart`

use noftl::nand_flash::FlashGeometry;
use noftl::noftl_core::{NoFtl, NoFtlConfig};
use noftl::storage_engine::{backend::NoFtlBackend, EngineConfig, FlusherConfig, StorageEngine};

fn main() {
    // 1. Describe the Flash device (what IDENTIFY would report on real
    //    hardware) and build the DBMS-integrated Flash management on top.
    let geometry = FlashGeometry::openssd_like();
    println!(
        "device: {} channels x {} dies, {} pages of {} bytes ({} MiB)",
        geometry.channels,
        geometry.dies_per_channel,
        geometry.total_pages(),
        geometry.page_size,
        geometry.capacity_bytes() >> 20
    );
    let noftl = NoFtl::new(NoFtlConfig::new(geometry));
    println!(
        "noftl: {} logical pages over {} regions (die-wise striping)",
        noftl.logical_pages(),
        noftl.regions()
    );

    // 2. Put the Shore-MT-like storage engine on top, with Flash-aware
    //    db-writers (one per region).
    let mut engine_cfg = EngineConfig::new();
    engine_cfg.buffer_frames = 1024;
    engine_cfg.flushers = FlusherConfig::die_wise(8);
    let mut engine = StorageEngine::new(Box::new(NoFtlBackend::new(noftl)), engine_cfg);

    // 3. Create a table + index and run a few transactions.
    engine.create_table("accounts");
    engine.create_index("accounts_pk", 0).unwrap();
    let mut now = 0;
    for account in 0..1_000u64 {
        let txn = engine.begin();
        let row = format!("account-{account}:balance=1000");
        let (rid, t) = engine.insert("accounts", txn, now, row.as_bytes()).unwrap();
        let (_, t) = engine
            .index_insert("accounts_pk", t, account, (rid.page << 16) | rid.slot as u64)
            .unwrap();
        now = engine.commit(txn, t).unwrap();
        now = engine.maybe_flush(now).unwrap();
    }
    println!(
        "loaded 1000 accounts in {:.2} virtual ms ({} committed transactions)",
        now as f64 / 1e6,
        engine.committed()
    );

    // 4. Read a few accounts back through the index.
    for account in [0u64, 500, 999] {
        let (packed, t) = engine.index_get("accounts_pk", now, account).unwrap();
        let packed = packed.expect("account indexed");
        let rid = noftl::storage_engine::heap::Rid {
            page: packed >> 16,
            slot: (packed & 0xFFFF) as u16,
        };
        let (row, t2) = engine.read("accounts", t, rid).unwrap();
        now = t2;
        println!(
            "account {account}: {}",
            String::from_utf8_lossy(&row.expect("row present"))
        );
    }

    // 5. The DBMS can see exactly what the Flash did — no black box.
    let counters = engine.backend_counters();
    println!(
        "flash activity: {} host reads, {} host writes, {} GC copies, {} erases",
        counters.host_reads, counters.host_writes, counters.internal_copies, counters.erases
    );
}
