//! Wear and lifetime: replay the same skewed write stream against FASTer and
//! NoFTL and compare erase counts and wear distribution — the basis of the
//! paper's claim that the reduced erase count under NoFTL "effectively
//! doubles the lifetime of the Flash storage" (§5).
//!
//! Run with: `cargo run --release --example wear_lifetime`

use noftl::ftl::faster::{FasterConfig, FasterFtl};
use noftl::ftl::Ftl;
use noftl::nand_flash::FlashGeometry;
use noftl::noftl_core::{NoFtl, NoFtlConfig};
use noftl::sim_utils::dist::Zipf;
use noftl::sim_utils::rng::SimRng;

fn main() {
    let geometry = FlashGeometry::small();
    let endurance = geometry.nand_type.endurance();
    let pages = 6_000u64;
    let overwrites = 20_000u64;
    let page = vec![0u8; geometry.page_size as usize];

    // Identical skewed write streams for both schemes.
    let make_stream = || {
        let mut rng = SimRng::new(0x11FE);
        let zipf = Zipf::new(pages, 0.8);
        let mut ops: Vec<u64> = (0..pages).collect();
        ops.extend((0..overwrites).map(|_| zipf.sample(&mut rng)));
        ops
    };

    // FASTer.
    let mut faster = FasterFtl::new(FasterConfig::new(geometry));
    let mut t = 0;
    for lpn in make_stream() {
        t = faster.write(t, lpn, &page).unwrap().completed_at;
    }
    let faster_erases = faster.flash_stats().erases;
    let faster_max_wear = faster.device().max_erase_count();
    let faster_mean_wear = faster.device().mean_erase_count();

    // NoFTL.
    let mut noftl = NoFtl::new(NoFtlConfig::new(geometry));
    let mut t = 0;
    for lpn in make_stream() {
        t = noftl.write(t, lpn, &page).unwrap().completed_at;
    }
    let noftl_erases = noftl.flash_stats().erases;
    let noftl_max_wear = noftl.device().max_erase_count();
    let noftl_mean_wear = noftl.device().mean_erase_count();

    println!("identical workload: {pages} pages filled + {overwrites} skewed overwrites\n");
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>22}",
        "scheme", "erases", "max wear", "mean wear", "est. lifetime (full-drive writes)"
    );
    for (name, erases, max_wear, mean_wear) in [
        ("faster", faster_erases, faster_max_wear, faster_mean_wear),
        ("noftl", noftl_erases, noftl_max_wear, noftl_mean_wear),
    ] {
        // Lifetime estimate: how many times the drive could absorb this
        // workload before the most-worn block reaches its endurance.
        let lifetime = if max_wear == 0 { f64::INFINITY } else { endurance as f64 / max_wear as f64 };
        println!(
            "{:<10} {:>10} {:>12} {:>12.2} {:>22.0}",
            name, erases, max_wear, mean_wear, lifetime
        );
    }
    println!(
        "\nerase ratio faster/noftl = {:.2}x -> NoFTL extends device lifetime by roughly that factor (§5)",
        faster_erases as f64 / noftl_erases.max(1) as f64
    );
}
