//! Run a short TPC-C comparison between the conventional storage stack
//! (FASTer FTL behind a SATA2 block interface) and NoFTL on native Flash —
//! a miniature version of the paper's headline experiment.
//!
//! Run with: `cargo run --release --example tpcc_noftl_vs_faster`

use noftl::flash_emulator::{EmulatedSsd, HostLink};
use noftl::ftl::faster::{FasterConfig, FasterFtl};
use noftl::nand_flash::FlashGeometry;
use noftl::noftl_core::{NoFtl, NoFtlConfig};
use noftl::storage_engine::{
    backend::{BlockDeviceBackend, NoFtlBackend},
    EngineConfig, FlusherConfig, StorageEngine,
};
use noftl::workloads::{BenchmarkDriver, DriverConfig, TpcC, TpcCConfig, Workload};

fn engine_config() -> EngineConfig {
    let mut cfg = EngineConfig::new();
    cfg.buffer_frames = 512;
    let mut flushers = FlusherConfig::die_wise(8);
    flushers.dirty_high_watermark = 0.3;
    flushers.dirty_low_watermark = 0.05;
    cfg.flushers = flushers;
    cfg
}

fn run(name: &str, mut engine: StorageEngine) -> f64 {
    let mut workload = TpcC::new(TpcCConfig {
        warehouses: 2,
        districts_per_warehouse: 10,
        customers_per_district: 200,
        items: 1_000,
        seed: 0xCC,
    });
    let start = workload.setup(&mut engine, 0).expect("setup");
    let driver = BenchmarkDriver::new(DriverConfig::write_pressure(16, 2_000));
    let report = driver.run(&mut engine, &mut workload, start).expect("run");
    println!(
        "{name:<12} {:>10.1} TPS   mean response {:>7.3} ms   p99 {:>7.3} ms",
        report.tps,
        report.mean_response_ms(),
        report.response_time.percentile(0.99) as f64 / 1e6,
    );
    report.tps
}

fn main() {
    let geometry = FlashGeometry::with_dies(8, 2048, 64, 4096);
    println!(
        "TPC-C (2 warehouses) on a {} MiB, 8-die emulated Flash device\n",
        geometry.capacity_bytes() >> 20
    );

    // Conventional stack: FASTer FTL inside an emulated SATA2 SSD.
    let faster = FasterFtl::new(FasterConfig::new(geometry));
    let ssd = EmulatedSsd::new(faster, HostLink::sata2());
    let conventional = StorageEngine::new(
        Box::new(BlockDeviceBackend::new(ssd, "ftl-faster")),
        engine_config(),
    );
    let faster_tps = run("ftl-faster", conventional);

    // NoFTL stack: DBMS-integrated Flash management on native Flash.
    let noftl = NoFtl::new(NoFtlConfig::new(geometry));
    let native = StorageEngine::new(Box::new(NoFtlBackend::new(noftl)), engine_config());
    let noftl_tps = run("noftl", native);

    println!(
        "\nNoFTL speedup: {:.2}x (paper reports >= 2.4x for TPC-C on real hardware)",
        noftl_tps / faster_tps
    );
}
