//! Demonstrates the Flash-aware db-writer assignment of §3.2 / Figure 4:
//! the same TPC-B workload with the db-writers either picking dirty pages
//! globally or each owning one NAND die (region).
//!
//! Run with: `cargo run --release --example flash_aware_flushers`

use noftl::nand_flash::FlashGeometry;
use noftl::noftl_core::{FlusherAssignment, NoFtl, NoFtlConfig};
use noftl::storage_engine::{backend::NoFtlBackend, EngineConfig, FlusherConfig, StorageEngine};
use noftl::workloads::{BenchmarkDriver, DriverConfig, TpcB, TpcBConfig, Workload};

fn run(dies: u32, assignment: FlusherAssignment) -> f64 {
    let geometry = FlashGeometry::with_dies(dies, 2048, 64, 4096);
    let noftl = NoFtl::new(NoFtlConfig::new(geometry));
    let mut cfg = EngineConfig::new();
    cfg.buffer_frames = 512;
    let mut flushers = match assignment {
        FlusherAssignment::Global => FlusherConfig::global(dies as usize),
        FlusherAssignment::DieWise => FlusherConfig::die_wise(dies as usize),
    };
    flushers.dirty_high_watermark = 0.3;
    flushers.dirty_low_watermark = 0.02;
    cfg.flushers = flushers;
    let mut engine = StorageEngine::new(Box::new(NoFtlBackend::new(noftl)), cfg);

    let mut workload = TpcB::new(TpcBConfig {
        scale_factor: 8,
        tellers_per_branch: 10,
        accounts_per_branch: 2_000,
        seed: 7,
    });
    let start = workload.setup(&mut engine, 0).expect("setup");
    let driver = BenchmarkDriver::new(DriverConfig::write_pressure(16, 1_500));
    let report = driver.run(&mut engine, &mut workload, start).expect("run");
    report.tps
}

fn main() {
    println!("TPC-B throughput: global vs die-wise db-writer association (16 clients)\n");
    println!("{:>6} {:>14} {:>14} {:>10}", "dies", "global TPS", "die-wise TPS", "speedup");
    for dies in [1u32, 2, 4, 8] {
        let global = run(dies, FlusherAssignment::Global);
        let die_wise = run(dies, FlusherAssignment::DieWise);
        println!(
            "{:>6} {:>14.1} {:>14.1} {:>9.2}x",
            dies,
            global,
            die_wise,
            die_wise / global
        );
    }
    println!("\n(the gap grows with the number of dies — Figure 4 of the paper)");
}
