//! Stress the Flash emulator with FIO-style synthetic jobs on different
//! device profiles — Demo Scenario 1 of the paper (emulator accuracy and
//! reconfigurability, utilisation of Flash parallelism).
//!
//! Run with: `cargo run --release --example emulator_fio`

use noftl::flash_emulator::{run_fio, DeviceProfile, EmulatedSsd, FioJob};
use noftl::ftl::page_ftl::{PageFtl, PageFtlConfig};

fn run_profile(profile: &DeviceProfile, job: &FioJob) {
    let mut cfg = PageFtlConfig::new(profile.geometry);
    cfg.op_ratio = 0.10;
    let mut ssd = EmulatedSsd::new(PageFtl::new(cfg), profile.host_link);
    let report = run_fio(&mut ssd, job, 0);
    println!(
        "{:<22} {:<18} QD{:<3} {:>10.0} IOPS {:>9.2} MiB/s   mean {:>8.1} µs   p99 {:>8.1} µs",
        profile.name,
        report.job,
        job.queue_depth,
        report.iops,
        report.throughput_mib_s,
        report.mean_latency_ns() / 1e3,
        report
            .write_latency
            .percentile(0.99)
            .max(report.read_latency.percentile(0.99)) as f64
            / 1e3,
    );
}

fn main() {
    println!("FIO-style synthetic jobs on emulated Flash devices\n");
    let mut write_job = FioJob::random_write(4_000);
    write_job.working_set = 0.4;
    write_job.prefill = false;
    let mut read_job = FioJob::random_read(4_000);
    read_job.working_set = 0.2;
    let mut mixed = FioJob::oltp_mix(4_000, 16);
    mixed.working_set = 0.2;

    for profile in [
        DeviceProfile::openssd(),
        DeviceProfile::openssd_native(),
        DeviceProfile::commodity_mlc(),
        DeviceProfile::commodity_tlc(),
    ] {
        run_profile(&profile, &write_job);
        run_profile(&profile, &read_job);
        run_profile(&profile, &mixed);
        println!();
    }

    println!("parallelism: the same random-write job with growing queue depth (SLC, 8 dies)");
    for qd in [1u32, 2, 4, 8, 16, 32] {
        let mut job = write_job.clone();
        job.queue_depth = qd;
        run_profile(&DeviceProfile::openssd_native(), &job);
    }
}
