//! # NoFTL — databases on native Flash storage
//!
//! Umbrella crate re-exporting the full NoFTL reproduction stack.
//!
//! This workspace reproduces the system described in *"NoFTL for Real:
//! Databases on Real Native Flash Storage"* (EDBT 2015): a DBMS storage engine
//! that operates directly on native NAND Flash, integrating address
//! translation, out-of-place updates, garbage collection, wear leveling and
//! bad-block management into the database itself, instead of hiding them
//! behind an on-device Flash Translation Layer (FTL).
//!
//! The individual crates:
//!
//! * [`nand_flash`] — NAND Flash device model (geometry, native command set,
//!   timing, wear, bad blocks).
//! * [`flash_emulator`] — real-time (virtual-clock) Flash emulator with
//!   channel/die parallelism, block-device and native front-ends.
//! * [`ftl`] — on-device FTL baselines: pure page mapping, DFTL, FASTer.
//! * [`noftl_core`] — the paper's contribution: DBMS-integrated Flash
//!   management (host-side mapping, GC, WL, bad blocks, regions).
//! * [`storage_engine`] — Shore-MT-like storage manager: buffer pool,
//!   db-writers, WAL, transactions, heap files and B+-trees.
//! * [`workloads`] — TPC-B/C/E/H drivers, benchmark driver and traces.
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

pub use flash_emulator;
pub use ftl;
pub use nand_flash;
pub use noftl_core;
pub use sim_utils;
pub use storage_engine;
pub use workloads;

/// Crate version of the umbrella package.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_nonempty() {
        assert!(!super::VERSION.is_empty());
    }
}
